#include "nosql/wal.hpp"

#include <cstring>
#include <stdexcept>

#include "util/fault.hpp"

namespace graphulo::nosql {

namespace {

constexpr std::uint32_t kRecordMagic = 0x57414c32;  // "WAL2" (WAL1 + seq)

void put_string(std::string& buf, const std::string& s) {
  const auto len = static_cast<std::uint32_t>(s.size());
  buf.append(reinterpret_cast<const char*>(&len), sizeof(len));
  buf.append(s);
}

void put_u64(std::string& buf, std::uint64_t v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool get_string(const std::string& buf, std::size_t& pos, std::string& s) {
  if (pos + sizeof(std::uint32_t) > buf.size()) return false;
  std::uint32_t len = 0;
  std::memcpy(&len, buf.data() + pos, sizeof(len));
  pos += sizeof(len);
  if (pos + len > buf.size()) return false;
  s.assign(buf, pos, len);
  pos += len;
  return true;
}

bool get_u64(const std::string& buf, std::size_t& pos, std::uint64_t& v) {
  if (pos + sizeof(v) > buf.size()) return false;
  std::memcpy(&v, buf.data() + pos, sizeof(v));
  pos += sizeof(v);
  return true;
}

/// Serializes a record body (everything after the magic + length).
std::string encode_body(const WalRecord& record) {
  std::string body;
  put_u64(body, record.seq);
  body.push_back(static_cast<char>(record.kind));
  put_string(body, record.table);
  switch (record.kind) {
    case WalRecord::Kind::kCreateTable:
    case WalRecord::Kind::kDeleteTable:
      break;
    case WalRecord::Kind::kCloneTable:
      put_string(body, record.aux);
      break;
    case WalRecord::Kind::kAddSplits:
      put_u64(body, record.splits.size());
      for (const auto& s : record.splits) put_string(body, s);
      break;
    case WalRecord::Kind::kMutation: {
      put_u64(body, static_cast<std::uint64_t>(record.assigned_ts));
      put_string(body, record.mutation.row());
      put_u64(body, record.mutation.updates().size());
      for (const auto& u : record.mutation.updates()) {
        put_string(body, u.family);
        put_string(body, u.qualifier);
        put_string(body, u.visibility);
        put_u64(body, static_cast<std::uint64_t>(u.ts));
        body.push_back(u.has_ts ? 1 : 0);
        body.push_back(u.deleted ? 1 : 0);
        put_string(body, u.value);
      }
      break;
    }
  }
  return body;
}

/// Parses a record body; false on any truncation/corruption.
bool decode_body(const std::string& body, WalRecord& record) {
  std::size_t pos = 0;
  if (!get_u64(body, pos, record.seq)) return false;
  if (pos >= body.size()) return false;
  const auto kind = static_cast<std::uint8_t>(body[pos++]);
  if (kind < 1 || kind > 5) return false;
  record.kind = static_cast<WalRecord::Kind>(kind);
  if (!get_string(body, pos, record.table)) return false;
  switch (record.kind) {
    case WalRecord::Kind::kCreateTable:
    case WalRecord::Kind::kDeleteTable:
      return pos == body.size();
    case WalRecord::Kind::kCloneTable:
      if (!get_string(body, pos, record.aux)) return false;
      return pos == body.size();
    case WalRecord::Kind::kAddSplits: {
      std::uint64_t count = 0;
      if (!get_u64(body, pos, count)) return false;
      record.splits.clear();
      for (std::uint64_t i = 0; i < count; ++i) {
        std::string s;
        if (!get_string(body, pos, s)) return false;
        record.splits.push_back(std::move(s));
      }
      return pos == body.size();
    }
    case WalRecord::Kind::kMutation:
      break;
  }

  std::uint64_t ts = 0;
  std::string row;
  std::uint64_t update_count = 0;
  if (!get_u64(body, pos, ts) || !get_string(body, pos, row) ||
      !get_u64(body, pos, update_count)) {
    return false;
  }
  record.assigned_ts = static_cast<Timestamp>(ts);
  Mutation mutation(row);
  for (std::uint64_t i = 0; i < update_count; ++i) {
    std::string family, qualifier, visibility, value;
    std::uint64_t uts = 0;
    if (!get_string(body, pos, family) || !get_string(body, pos, qualifier) ||
        !get_string(body, pos, visibility) || !get_u64(body, pos, uts)) {
      return false;
    }
    if (pos + 2 > body.size()) return false;
    const bool has_ts = body[pos++] != 0;
    const bool deleted = body[pos++] != 0;
    if (!get_string(body, pos, value)) return false;
    if (deleted) {
      mutation.put_delete(std::move(family), std::move(qualifier));
    } else if (has_ts) {
      mutation.put(std::move(family), std::move(qualifier),
                   std::move(visibility), static_cast<Timestamp>(uts),
                   std::move(value));
    } else {
      mutation.put(std::move(family), std::move(qualifier), std::move(value));
    }
  }
  record.mutation = std::move(mutation);
  return pos == body.size();
}

/// Scans an existing log for the sequence number after its last intact
/// record (1 for a missing/empty/garbage file).
std::uint64_t scan_next_seq(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 1;
  std::uint64_t next = 1;
  while (true) {
    std::uint32_t magic = 0, len = 0;
    if (!in.read(reinterpret_cast<char*>(&magic), sizeof(magic))) break;
    if (magic != kRecordMagic) break;
    if (!in.read(reinterpret_cast<char*>(&len), sizeof(len))) break;
    if (len < sizeof(std::uint64_t)) break;
    std::uint64_t seq = 0;
    if (!in.read(reinterpret_cast<char*>(&seq), sizeof(seq))) break;
    if (!in.seekg(static_cast<std::streamoff>(len - sizeof(seq)),
                  std::ios::cur)) {
      break;
    }
    // A torn record after this point invalidates this seq too, but the
    // successor estimate only has to be PAST every replayable record,
    // which "last header seq + 1" always is.
    next = seq + 1;
  }
  return next;
}

}  // namespace

WriteAheadLog::WriteAheadLog(const std::string& path)
    : path_(path),
      out_(path, std::ios::binary | std::ios::app),
      next_seq_(scan_next_seq(path)) {
  if (!out_) throw std::runtime_error("WriteAheadLog: cannot open " + path);
}

void WriteAheadLog::write_record(WalRecord record) {
  // Injection site sits BEFORE any byte is written (and before the
  // sequence number is consumed): a transient append failure leaves the
  // log untouched, so the caller's retry appends the record exactly
  // once.
  util::fault::point(util::fault::sites::kWalAppend);
  std::lock_guard lock(mutex_);
  record.seq = next_seq_;
  const std::string body = encode_body(record);
  const auto len = static_cast<std::uint32_t>(body.size());
  out_.write(reinterpret_cast<const char*>(&kRecordMagic),
             sizeof(kRecordMagic));
  out_.write(reinterpret_cast<const char*>(&len), sizeof(len));
  out_.write(body.data(), static_cast<std::streamsize>(body.size()));
  if (!out_) {
    out_.clear();
    throw util::FatalError("WriteAheadLog: append I/O failure on " + path_);
  }
  ++next_seq_;
}

void WriteAheadLog::log_create_table(const std::string& table) {
  WalRecord r;
  r.kind = WalRecord::Kind::kCreateTable;
  r.table = table;
  write_record(std::move(r));
}

void WriteAheadLog::log_delete_table(const std::string& table) {
  WalRecord r;
  r.kind = WalRecord::Kind::kDeleteTable;
  r.table = table;
  write_record(std::move(r));
}

void WriteAheadLog::log_clone_table(const std::string& source,
                                    const std::string& target) {
  WalRecord r;
  r.kind = WalRecord::Kind::kCloneTable;
  r.table = source;
  r.aux = target;
  write_record(std::move(r));
}

void WriteAheadLog::log_add_splits(const std::string& table,
                                   const std::vector<std::string>& splits) {
  WalRecord r;
  r.kind = WalRecord::Kind::kAddSplits;
  r.table = table;
  r.splits = splits;
  write_record(std::move(r));
}

void WriteAheadLog::log_mutation(const std::string& table,
                                 const Mutation& mutation,
                                 Timestamp assigned_ts) {
  WalRecord r;
  r.kind = WalRecord::Kind::kMutation;
  r.table = table;
  r.assigned_ts = assigned_ts;
  r.mutation = mutation;
  write_record(std::move(r));
}

void WriteAheadLog::sync() {
  util::fault::point(util::fault::sites::kWalSync);
  std::lock_guard lock(mutex_);
  out_.flush();
}

void WriteAheadLog::rotate() {
  std::lock_guard lock(mutex_);
  out_.close();
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("WriteAheadLog: cannot rotate " + path_);
  }
  // next_seq_ keeps counting: post-rotation records sort after the
  // checkpoint's covered sequence.
}

std::uint64_t WriteAheadLog::next_seq() const {
  std::lock_guard lock(mutex_);
  return next_seq_;
}

std::size_t replay_wal(const std::string& path,
                       const std::function<void(const WalRecord&)>& apply,
                       std::uint64_t min_seq) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::size_t delivered = 0;
  while (true) {
    std::uint32_t magic = 0, len = 0;
    if (!in.read(reinterpret_cast<char*>(&magic), sizeof(magic))) break;
    if (magic != kRecordMagic) break;  // corruption: stop cleanly
    if (!in.read(reinterpret_cast<char*>(&len), sizeof(len))) break;
    std::string body(len, '\0');
    if (!in.read(body.data(), static_cast<std::streamsize>(len))) break;
    WalRecord record;
    if (!decode_body(body, record)) break;
    if (record.seq >= min_seq) {
      apply(record);
      ++delivered;
    }
  }
  return delivered;
}

}  // namespace graphulo::nosql
