#include "nosql/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"

namespace graphulo::nosql {

namespace {

// Registry handles resolved once; the hot path only touches atomics.
obs::Counter& wal_appends() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "wal.appends.total", "WAL records appended (acknowledged)");
  return c;
}
obs::Counter& wal_commit_batches() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "wal.commit.batches.total", "WAL commit batches written to disk");
  return c;
}
obs::Counter& wal_commit_records() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "wal.commit.records.total", "WAL records written inside commit batches");
  return c;
}
obs::Counter& wal_commit_bytes() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "wal.commit.bytes.total", "Framed WAL bytes written to disk");
  return c;
}

constexpr std::uint32_t kRecordMagic = 0x57414c32;  // "WAL2" (WAL1 + seq)

/// Retry budget for the commit path's injection site. Generous on
/// purpose: the mass fault-injection test arms wal.commit with bursts
/// of scheduled fires, and a batch whose records are already buffered
/// (and acknowledged, in interval mode) must not be lost to a burst a
/// few retries would outlast.
const util::RetryPolicy& commit_retry_policy() {
  static const util::RetryPolicy kPolicy{
      /*max_attempts=*/25, std::chrono::microseconds(50), 2.0,
      std::chrono::microseconds(2000)};
  return kPolicy;
}

void put_string(std::string& buf, const std::string& s) {
  const auto len = static_cast<std::uint32_t>(s.size());
  buf.append(reinterpret_cast<const char*>(&len), sizeof(len));
  buf.append(s);
}

void put_u64(std::string& buf, std::uint64_t v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool get_string(const std::string& buf, std::size_t& pos, std::string& s) {
  if (pos + sizeof(std::uint32_t) > buf.size()) return false;
  std::uint32_t len = 0;
  std::memcpy(&len, buf.data() + pos, sizeof(len));
  pos += sizeof(len);
  if (pos + len > buf.size()) return false;
  s.assign(buf, pos, len);
  pos += len;
  return true;
}

bool get_u64(const std::string& buf, std::size_t& pos, std::uint64_t& v) {
  if (pos + sizeof(v) > buf.size()) return false;
  std::memcpy(&v, buf.data() + pos, sizeof(v));
  pos += sizeof(v);
  return true;
}

/// Serializes a record body (everything after the magic + length).
std::string encode_body(const WalRecord& record) {
  std::string body;
  put_u64(body, record.seq);
  body.push_back(static_cast<char>(record.kind));
  put_string(body, record.table);
  switch (record.kind) {
    case WalRecord::Kind::kCreateTable:
    case WalRecord::Kind::kDeleteTable:
      break;
    case WalRecord::Kind::kCloneTable:
      put_string(body, record.aux);
      break;
    case WalRecord::Kind::kAddSplits:
      put_u64(body, record.splits.size());
      for (const auto& s : record.splits) put_string(body, s);
      break;
    case WalRecord::Kind::kMutation: {
      put_u64(body, static_cast<std::uint64_t>(record.assigned_ts));
      put_string(body, record.mutation.row());
      put_u64(body, record.mutation.updates().size());
      for (const auto& u : record.mutation.updates()) {
        put_string(body, u.family);
        put_string(body, u.qualifier);
        put_string(body, u.visibility);
        put_u64(body, static_cast<std::uint64_t>(u.ts));
        body.push_back(u.has_ts ? 1 : 0);
        body.push_back(u.deleted ? 1 : 0);
        put_string(body, u.value);
      }
      break;
    }
  }
  return body;
}

/// Wraps an encoded body in the on-disk frame: magic, length, body.
std::string frame_body(const std::string& body) {
  std::string framed;
  framed.reserve(sizeof(kRecordMagic) + sizeof(std::uint32_t) + body.size());
  framed.append(reinterpret_cast<const char*>(&kRecordMagic),
                sizeof(kRecordMagic));
  const auto len = static_cast<std::uint32_t>(body.size());
  framed.append(reinterpret_cast<const char*>(&len), sizeof(len));
  framed.append(body);
  return framed;
}

/// Parses a record body; false on any truncation/corruption.
bool decode_body(const std::string& body, WalRecord& record) {
  std::size_t pos = 0;
  if (!get_u64(body, pos, record.seq)) return false;
  if (pos >= body.size()) return false;
  const auto kind = static_cast<std::uint8_t>(body[pos++]);
  if (kind < 1 || kind > 5) return false;
  record.kind = static_cast<WalRecord::Kind>(kind);
  if (!get_string(body, pos, record.table)) return false;
  switch (record.kind) {
    case WalRecord::Kind::kCreateTable:
    case WalRecord::Kind::kDeleteTable:
      return pos == body.size();
    case WalRecord::Kind::kCloneTable:
      if (!get_string(body, pos, record.aux)) return false;
      return pos == body.size();
    case WalRecord::Kind::kAddSplits: {
      std::uint64_t count = 0;
      if (!get_u64(body, pos, count)) return false;
      record.splits.clear();
      for (std::uint64_t i = 0; i < count; ++i) {
        std::string s;
        if (!get_string(body, pos, s)) return false;
        record.splits.push_back(std::move(s));
      }
      return pos == body.size();
    }
    case WalRecord::Kind::kMutation:
      break;
  }

  std::uint64_t ts = 0;
  std::string row;
  std::uint64_t update_count = 0;
  if (!get_u64(body, pos, ts) || !get_string(body, pos, row) ||
      !get_u64(body, pos, update_count)) {
    return false;
  }
  record.assigned_ts = static_cast<Timestamp>(ts);
  Mutation mutation(row);
  for (std::uint64_t i = 0; i < update_count; ++i) {
    std::string family, qualifier, visibility, value;
    std::uint64_t uts = 0;
    if (!get_string(body, pos, family) || !get_string(body, pos, qualifier) ||
        !get_string(body, pos, visibility) || !get_u64(body, pos, uts)) {
      return false;
    }
    if (pos + 2 > body.size()) return false;
    const bool has_ts = body[pos++] != 0;
    const bool deleted = body[pos++] != 0;
    if (!get_string(body, pos, value)) return false;
    if (deleted) {
      mutation.put_delete(std::move(family), std::move(qualifier));
    } else if (has_ts) {
      mutation.put(std::move(family), std::move(qualifier),
                   std::move(visibility), static_cast<Timestamp>(uts),
                   std::move(value));
    } else {
      mutation.put(std::move(family), std::move(qualifier), std::move(value));
    }
  }
  record.mutation = std::move(mutation);
  return pos == body.size();
}

/// Scans an existing log for the sequence number after its last intact
/// record (1 for a missing/empty/garbage file).
std::uint64_t scan_next_seq(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 1;
  std::uint64_t next = 1;
  while (true) {
    std::uint32_t magic = 0, len = 0;
    if (!in.read(reinterpret_cast<char*>(&magic), sizeof(magic))) break;
    if (magic != kRecordMagic) break;
    if (!in.read(reinterpret_cast<char*>(&len), sizeof(len))) break;
    if (len < sizeof(std::uint64_t)) break;
    std::uint64_t seq = 0;
    if (!in.read(reinterpret_cast<char*>(&seq), sizeof(seq))) break;
    if (!in.seekg(static_cast<std::streamoff>(len - sizeof(seq)),
                  std::ios::cur)) {
      break;
    }
    // A torn record after this point invalidates this seq too, but the
    // successor estimate only has to be PAST every replayable record,
    // which "last header seq + 1" always is.
    next = seq + 1;
  }
  return next;
}

/// write(2) loop handling short writes. Throws FatalError on OS error:
/// bytes may already be on disk, so this is never retryable.
void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw util::FatalError("WriteAheadLog: write failure on " + path + ": " +
                             std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

void fsync_or_throw(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    throw util::FatalError("WriteAheadLog: fsync failure on " + path + ": " +
                           std::strerror(errno));
  }
}

}  // namespace

WriteAheadLog::WriteAheadLog(const std::string& path, WalOptions options)
    : path_(path), options_(options), next_seq_(scan_next_seq(path)) {
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("WriteAheadLog: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  durable_seq_ = next_seq_ - 1;  // everything already in the file
}

WriteAheadLog::~WriteAheadLog() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
    committer_cv_.notify_all();
  }
  if (committer_started_) committer_.join();
  std::unique_lock lock(mutex_);
  // Drain acknowledged-but-unwritten records (interval mode buffers
  // them). After a fatal commit failure the buffer is dropped instead:
  // those appends were never acknowledged, and the file keeps its
  // clean, seq-ordered prefix.
  if (!commit_error_ && !pending_.empty()) {
    commit_pending_locked(lock, /*do_fsync=*/false);
  }
  if (fd_ >= 0) ::close(fd_);
}

void WriteAheadLog::throw_if_failed_locked() const {
  if (commit_error_) std::rethrow_exception(commit_error_);
}

void WriteAheadLog::start_committer_locked() {
  if (committer_started_ || stop_) return;
  committer_started_ = true;
  committer_ = std::thread([this] { committer_loop(); });
}

void WriteAheadLog::committer_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    if (options_.sync_mode == WalSyncMode::kGroup) {
      // Group commit: write as soon as anything is pending. While one
      // batch's fsync is in flight, new appends accumulate and ride
      // the next batch together.
      committer_cv_.wait(lock, [&] {
        return stop_ || (!pending_.empty() && !committing_);
      });
    } else {
      // Interval: byte threshold wakes the committer early, otherwise
      // the latency deadline bounds how long a record stays buffered.
      committer_cv_.wait_for(lock, options_.max_batch_latency, [&] {
        return stop_ || pending_bytes_ >= options_.max_batch_bytes;
      });
    }
    if (stop_) return;  // the destructor drains what remains
    if (!pending_.empty()) {
      commit_pending_locked(lock,
                            options_.sync_mode == WalSyncMode::kGroup);
    }
  }
}

void WriteAheadLog::commit_pending_locked(std::unique_lock<std::mutex>& lock,
                                          bool do_fsync) {
  // Single-committer discipline: batches leave the buffer in seq order
  // and hit the file in seq order, so the log is always a seq-sorted
  // prefix of the append history.
  durable_cv_.wait(lock, [&] { return !committing_; });
  if (commit_error_) return;
  if (pending_.empty() && !do_fsync) return;

  std::vector<PendingRecord> batch;
  batch.swap(pending_);
  pending_bytes_ = 0;
  committing_ = true;
  lock.unlock();

  std::exception_ptr error;
  try {
    if (!batch.empty()) {
      TRACE_SPAN("wal.commit");
      // The injection site fires before any byte of the batch is
      // written; a retry re-attempts the whole batch exactly once.
      util::with_retries("wal.commit", commit_retry_policy(),
                         [] { util::fault::point(util::fault::sites::kWalCommit); });
      std::string buffer;
      std::size_t total = 0;
      for (const auto& r : batch) total += r.framed.size();
      buffer.reserve(total);
      for (const auto& r : batch) buffer.append(r.framed);
      write_all(fd_, buffer.data(), buffer.size(), path_);
      if (do_fsync) fsync_or_throw(fd_, path_);
      wal_commit_batches().inc();
      wal_commit_records().inc(batch.size());
      wal_commit_bytes().inc(buffer.size());
    } else if (do_fsync) {
      fsync_or_throw(fd_, path_);
    }
  } catch (const std::exception& e) {
    // Sticky: the batch is lost and every later append must fail too,
    // or the log would develop a seq gap. Surfaced as FatalError so
    // callers' retry loops do not re-append records that were already
    // buffered once.
    error = std::make_exception_ptr(util::FatalError(
        std::string("WriteAheadLog: commit failed permanently: ") + e.what()));
  }

  lock.lock();
  committing_ = false;
  if (error) {
    if (!commit_error_) commit_error_ = error;
  } else if (!batch.empty()) {
    durable_seq_ = batch.back().seq;
  }
  durable_cv_.notify_all();
}

void WriteAheadLog::write_record(WalRecord record) {
  // Injection site sits BEFORE any byte is written (and before the
  // sequence number is consumed): a transient append failure leaves the
  // log untouched, so the caller's retry appends the record exactly
  // once.
  util::fault::point(util::fault::sites::kWalAppend);
  // Append latency as seen by the caller: everything from here to the
  // acknowledgement, including any group-commit durability wait.
  TRACE_SPAN("wal.append");
  std::unique_lock lock(mutex_);
  throw_if_failed_locked();

  if (options_.sync_mode == WalSyncMode::kPerAppend) {
    // Serialize with any in-flight sync()/rotate() commit.
    durable_cv_.wait(lock, [&] { return !committing_; });
    throw_if_failed_locked();
    record.seq = next_seq_;
    const std::string framed = frame_body(encode_body(record));
    // One write + one fsync per record, appenders serialized on the
    // log mutex: the per-record durability cost this mode models. The
    // commit site fires before the write, so an escaping
    // TransientError leaves the sequence number unconsumed and the
    // caller's retry appends exactly once.
    {
      TRACE_SPAN("wal.commit");
      util::with_retries("wal.commit", commit_retry_policy(),
                         [] { util::fault::point(util::fault::sites::kWalCommit); });
      write_all(fd_, framed.data(), framed.size(), path_);
      fsync_or_throw(fd_, path_);
    }
    // Per-append mode commits a batch of one.
    wal_commit_batches().inc();
    wal_commit_records().inc();
    wal_commit_bytes().inc(framed.size());
    wal_appends().inc();
    ++next_seq_;
    durable_seq_ = record.seq;
    durable_cv_.notify_all();
    return;
  }

  record.seq = next_seq_++;
  PendingRecord pending;
  pending.seq = record.seq;
  pending.framed = frame_body(encode_body(record));
  pending_bytes_ += pending.framed.size();
  pending_.push_back(std::move(pending));
  start_committer_locked();

  if (options_.sync_mode == WalSyncMode::kGroup) {
    committer_cv_.notify_one();
    // Block until the committer has made this record durable (or the
    // log failed, or rotate() covered it via a checkpoint).
    durable_cv_.wait(lock, [&] {
      return durable_seq_ >= record.seq || commit_error_ != nullptr;
    });
    if (durable_seq_ < record.seq) throw_if_failed_locked();
    wal_appends().inc();
    return;
  }

  // Interval mode: fire-and-forget; wake the committer early once the
  // byte threshold is crossed.
  wal_appends().inc();
  if (pending_bytes_ >= options_.max_batch_bytes) committer_cv_.notify_one();
}

void WriteAheadLog::log_create_table(const std::string& table) {
  WalRecord r;
  r.kind = WalRecord::Kind::kCreateTable;
  r.table = table;
  write_record(std::move(r));
}

void WriteAheadLog::log_delete_table(const std::string& table) {
  WalRecord r;
  r.kind = WalRecord::Kind::kDeleteTable;
  r.table = table;
  write_record(std::move(r));
}

void WriteAheadLog::log_clone_table(const std::string& source,
                                    const std::string& target) {
  WalRecord r;
  r.kind = WalRecord::Kind::kCloneTable;
  r.table = source;
  r.aux = target;
  write_record(std::move(r));
}

void WriteAheadLog::log_add_splits(const std::string& table,
                                   const std::vector<std::string>& splits) {
  WalRecord r;
  r.kind = WalRecord::Kind::kAddSplits;
  r.table = table;
  r.splits = splits;
  write_record(std::move(r));
}

void WriteAheadLog::log_mutation(const std::string& table,
                                 const Mutation& mutation,
                                 Timestamp assigned_ts) {
  WalRecord r;
  r.kind = WalRecord::Kind::kMutation;
  r.table = table;
  r.assigned_ts = assigned_ts;
  r.mutation = mutation;
  write_record(std::move(r));
}

void WriteAheadLog::sync() {
  util::fault::point(util::fault::sites::kWalSync);
  std::unique_lock lock(mutex_);
  throw_if_failed_locked();
  const std::uint64_t target = next_seq_ - 1;
  // Commit + fsync until everything appended before this call is
  // durable. The loop re-runs if a concurrent committer stole records
  // without fsyncing (interval mode): the empty-batch pass still
  // fsyncs, covering them.
  do {
    commit_pending_locked(lock, /*do_fsync=*/true);
    throw_if_failed_locked();
  } while (durable_seq_ < target);
}

void WriteAheadLog::rotate() {
  std::unique_lock lock(mutex_);
  durable_cv_.wait(lock, [&] { return !committing_; });
  throw_if_failed_locked();
  // Buffered records are covered by the checkpoint that triggered the
  // rotation (its covers_seq is a snapshot of next_seq_, which is past
  // every buffered seq), so they are dropped, not written.
  pending_.clear();
  pending_bytes_ = 0;
  if (::ftruncate(fd_, 0) != 0) {
    throw std::runtime_error("WriteAheadLog: cannot rotate " + path_ + ": " +
                             std::strerror(errno));
  }
  // next_seq_ keeps counting: post-rotation records sort after the
  // checkpoint's covered sequence. Group-mode waiters for dropped
  // records are released as durable — the checkpoint has their data.
  durable_seq_ = next_seq_ - 1;
  durable_cv_.notify_all();
}

std::uint64_t WriteAheadLog::next_seq() const {
  std::lock_guard lock(mutex_);
  return next_seq_;
}

std::uint64_t WriteAheadLog::durable_seq() const {
  std::lock_guard lock(mutex_);
  return durable_seq_;
}

std::size_t replay_wal(const std::string& path,
                       const std::function<void(const WalRecord&)>& apply,
                       std::uint64_t min_seq) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::size_t delivered = 0;
  while (true) {
    std::uint32_t magic = 0, len = 0;
    if (!in.read(reinterpret_cast<char*>(&magic), sizeof(magic))) break;
    if (magic != kRecordMagic) break;  // corruption: stop cleanly
    if (!in.read(reinterpret_cast<char*>(&len), sizeof(len))) break;
    std::string body(len, '\0');
    if (!in.read(body.data(), static_cast<std::streamsize>(len))) break;
    WalRecord record;
    if (!decode_body(body, record)) break;
    if (record.seq >= min_seq) {
      apply(record);
      ++delivered;
    }
  }
  return delivered;
}

}  // namespace graphulo::nosql
