#include "nosql/visibility.hpp"

#include <cctype>

#include "nosql/filter_iterators.hpp"

namespace graphulo::nosql {

namespace {

/// Recursive-descent parser over the grammar
///   or_expr  := and_expr ('|' and_expr)*
///   and_expr := primary ('&' primary)*
///   primary  := label | '(' or_expr ')'
/// evaluating as it parses. Returns nullopt on syntax errors.
class VisibilityParser {
 public:
  VisibilityParser(const std::string& expr, const std::set<std::string>& auths)
      : expr_(expr), auths_(auths) {}

  std::optional<bool> parse() {
    skip_spaces();
    if (pos_ == expr_.size()) return true;  // empty = public
    const auto result = parse_or();
    if (!result) return std::nullopt;
    skip_spaces();
    if (pos_ != expr_.size()) return std::nullopt;  // trailing junk
    return result;
  }

 private:
  std::optional<bool> parse_or() {
    auto left = parse_and();
    if (!left) return std::nullopt;
    skip_spaces();
    while (pos_ < expr_.size() && expr_[pos_] == '|') {
      ++pos_;
      const auto right = parse_and();
      if (!right) return std::nullopt;
      left = *left || *right;
      skip_spaces();
    }
    return left;
  }

  std::optional<bool> parse_and() {
    auto left = parse_primary();
    if (!left) return std::nullopt;
    skip_spaces();
    while (pos_ < expr_.size() && expr_[pos_] == '&') {
      ++pos_;
      const auto right = parse_primary();
      if (!right) return std::nullopt;
      left = *left && *right;
      skip_spaces();
    }
    return left;
  }

  std::optional<bool> parse_primary() {
    skip_spaces();
    if (pos_ < expr_.size() && expr_[pos_] == '(') {
      ++pos_;
      const auto inner = parse_or();
      if (!inner) return std::nullopt;
      skip_spaces();
      if (pos_ >= expr_.size() || expr_[pos_] != ')') return std::nullopt;
      ++pos_;
      return inner;
    }
    // A label: [A-Za-z0-9_.:-]+
    const std::size_t start = pos_;
    while (pos_ < expr_.size() && is_label_char(expr_[pos_])) ++pos_;
    if (pos_ == start) return std::nullopt;
    return auths_.count(expr_.substr(start, pos_ - start)) > 0;
  }

  static bool is_label_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == ':' || c == '-';
  }

  void skip_spaces() {
    while (pos_ < expr_.size() &&
           std::isspace(static_cast<unsigned char>(expr_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& expr_;
  const std::set<std::string>& auths_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<bool> evaluate_visibility(const std::string& expression,
                                        const std::set<std::string>& auths) {
  return VisibilityParser(expression, auths).parse();
}

bool visibility_is_valid(const std::string& expression) {
  // Evaluation against the empty auth set exercises the full parse.
  return evaluate_visibility(expression, {}).has_value();
}

IterPtr make_visibility_filter(IterPtr source, std::set<std::string> auths) {
  return std::make_unique<FilterIterator>(
      std::move(source),
      [auths = std::move(auths)](const Key& k, const Value&) {
        const auto visible = evaluate_visibility(k.visibility, auths);
        return visible.value_or(false);  // malformed -> fail closed
      });
}

}  // namespace graphulo::nosql
