#include "nosql/iterator.hpp"

#include <algorithm>

namespace graphulo::nosql {

void VectorIterator::seek(const Range& range) {
  const auto& cells = *cells_;
  auto key_less = [](const Cell& c, const Key& k) { return c.key < k; };
  if (range.has_start) {
    auto it = std::lower_bound(cells.begin(), cells.end(), range.start, key_less);
    // lower_bound lands on the first key >= start; for an exclusive
    // start bound, skip keys equal to it.
    while (it != cells.end() && !range.start_inclusive &&
           it->key == range.start) {
      ++it;
    }
    pos_ = static_cast<std::size_t>(it - cells.begin());
  } else {
    pos_ = 0;
  }
  if (range.has_end) {
    auto it = std::lower_bound(cells.begin(), cells.end(), range.end, key_less);
    while (it != cells.end() && range.end_inclusive && it->key == range.end) {
      ++it;
    }
    limit_ = static_cast<std::size_t>(it - cells.begin());
  } else {
    limit_ = cells.size();
  }
  if (limit_ < pos_) limit_ = pos_;
}

std::vector<Cell> drain(SortedKVIterator& it, const Range& range) {
  std::vector<Cell> out;
  it.seek(range);
  while (it.has_top()) {
    out.push_back({it.top_key(), it.top_value()});
    it.next();
  }
  return out;
}

}  // namespace graphulo::nosql
