#include "nosql/iterator.hpp"

#include <algorithm>

namespace graphulo::nosql {

void VectorIterator::seek(const Range& range) {
  const auto& cells = *cells_;
  auto key_less = [](const Cell& c, const Key& k) { return c.key < k; };
  if (range.has_start) {
    auto it = std::lower_bound(cells.begin(), cells.end(), range.start, key_less);
    // lower_bound lands on the first key >= start; for an exclusive
    // start bound, skip keys equal to it.
    while (it != cells.end() && !range.start_inclusive &&
           it->key == range.start) {
      ++it;
    }
    pos_ = static_cast<std::size_t>(it - cells.begin());
  } else {
    pos_ = 0;
  }
  if (range.has_end) {
    auto it = std::lower_bound(cells.begin(), cells.end(), range.end, key_less);
    while (it != cells.end() && range.end_inclusive && it->key == range.end) {
      ++it;
    }
    limit_ = static_cast<std::size_t>(it - cells.begin());
  } else {
    limit_ = cells.size();
  }
  if (limit_ < pos_) limit_ = pos_;
}

std::size_t VectorIterator::next_block(CellBlock& out, std::size_t max) {
  const auto& cells = *cells_;
  const std::size_t n = std::min(max, limit_ - pos_);
  for (std::size_t i = 0; i < n; ++i) {
    const Cell& c = cells[pos_ + i];
    out.append(c.key, c.value);
  }
  pos_ += n;
  return n;
}

std::size_t VectorIterator::next_block_until(CellBlock& out, std::size_t max,
                                             const Key& bound,
                                             bool allow_equal) {
  const std::size_t cap = std::min(max, limit_ - pos_);
  const Cell* base = cells_->data() + pos_;
  // Keys ascend, so "within the bound" is a true-prefix predicate over
  // [pos_, pos_+cap): gallop for a bracket around the end of the run,
  // then binary-search inside it. A run of length r costs O(log r) key
  // comparisons regardless of how much of the file remains.
  auto within = [&](const Cell& c) {
    const auto cmp = c.key <=> bound;
    return cmp < 0 || (cmp == 0 && allow_equal);
  };
  if (cap == 0 || !within(base[0])) return 0;
  std::size_t lo = 1, hi = 1;
  while (hi < cap && within(base[hi])) {
    lo = hi + 1;
    hi *= 2;
  }
  if (hi > cap) hi = cap;
  const std::size_t n = static_cast<std::size_t>(
      std::partition_point(base + lo, base + hi, within) - base);
  for (std::size_t i = 0; i < n; ++i) out.append(base[i].key, base[i].value);
  pos_ += n;
  return n;
}

std::vector<Cell> drain(SortedKVIterator& it, const Range& range) {
  // Block-at-a-time: this is the consumption path of compactions
  // (Tablet::flush/major_compact drain their iterator stacks).
  constexpr std::size_t kDrainBlock = 1024;
  std::vector<Cell> out;
  it.seek(range);
  CellBlock block;
  while (it.has_top()) {
    block.clear();
    if (it.next_block(block, kDrainBlock) == 0) break;
    out.insert(out.end(), std::make_move_iterator(block.begin()),
               std::make_move_iterator(block.end()));
  }
  return out;
}

}  // namespace graphulo::nosql
