#pragma once
// Heap-merge of several sorted sources into one sorted stream — the
// bottom of every tablet scan stack (memtable snapshot + each immutable
// file) and of every compaction.

#include <vector>

#include "nosql/iterator.hpp"

namespace graphulo::nosql {

/// Merges child iterators by key order. Ties across children are broken
/// by child index, with LOWER indices first; callers place newer sources
/// (the memtable) at lower indices so the versioning iterator sees the
/// newest duplicate first.
class MergeIterator : public SortedKVIterator {
 public:
  explicit MergeIterator(std::vector<IterPtr> children);

  void seek(const Range& range) override;
  bool has_top() const override { return current_ != kNone; }
  const Key& top_key() const override { return children_[current_]->top_key(); }
  const Value& top_value() const override {
    return children_[current_]->top_value();
  }
  void next() override;

  /// Run-length fast path: while the winning child's keys stay below
  /// every other child's top (the "barrier"), the whole run is emitted
  /// with ONE key comparison per cell instead of a full re-election of
  /// the minimum across children.
  std::size_t next_block(CellBlock& out, std::size_t max) override;

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  void choose_current();

  std::vector<IterPtr> children_;
  std::size_t current_ = kNone;
};

}  // namespace graphulo::nosql
