#pragma once
// Heap-merge of several sorted sources into one sorted stream — the
// bottom of every tablet scan stack (memtable snapshot + each immutable
// file) and of every compaction — plus the level iterator that walks
// one sorted run of non-overlapping files as a single lazy source.

#include <atomic>
#include <memory>
#include <vector>

#include "nosql/iterator.hpp"
#include "nosql/manifest.hpp"

namespace graphulo::nosql {

class BlockCache;

/// Merges child iterators by key order. Ties across children are broken
/// by child index, with LOWER indices first; callers place newer sources
/// (the memtable) at lower indices so the versioning iterator sees the
/// newest duplicate first.
class MergeIterator : public SortedKVIterator {
 public:
  explicit MergeIterator(std::vector<IterPtr> children);

  void seek(const Range& range) override;
  bool has_top() const override { return current_ != kNone; }
  const Key& top_key() const override { return children_[current_]->top_key(); }
  const Value& top_value() const override {
    return children_[current_]->top_value();
  }
  void next() override;

  /// Run-length fast path: while the winning child's keys stay below
  /// every other child's top (the "barrier"), the whole run is emitted
  /// with ONE key comparison per cell instead of a full re-election of
  /// the minimum across children.
  std::size_t next_block(CellBlock& out, std::size_t max) override;

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  void choose_current();

  std::vector<IterPtr> children_;
  std::size_t current_ = kNone;
};

/// Iterates one sorted level — files with pairwise-disjoint key ranges,
/// in key order — as a single sorted source. seek() binary-searches the
/// file list and opens AT MOST the files the range actually touches, so
/// a point read through an N-file level costs one file open, not N;
/// this is what turns the leveled layout's O(levels) read bound into an
/// O(levels) cost in practice. Also used one-file-per-instance for L0,
/// so every consulted file is counted uniformly.
class LevelIterator : public SortedKVIterator {
 public:
  /// `files` must be in key order with disjoint ranges (L1+ levels) or
  /// a single file (L0 usage). `consulted`, when set, is incremented
  /// once per file actually opened during this iterator's lifetime —
  /// the read-amplification probe behind the scan.files_consulted
  /// histogram.
  LevelIterator(std::vector<FileMeta> files, BlockCache* cache,
                std::shared_ptr<std::atomic<std::uint64_t>> consulted);

  void seek(const Range& range) override;
  bool has_top() const override { return current_ && current_->has_top(); }
  const Key& top_key() const override { return current_->top_key(); }
  const Value& top_value() const override { return current_->top_value(); }
  void next() override;
  std::size_t next_block(CellBlock& out, std::size_t max) override;
  std::size_t next_block_until(CellBlock& out, std::size_t max,
                               const Key& bound, bool allow_equal) override;

 private:
  /// Opens the first file at or after `idx` with cells inside range_.
  void open_from(std::size_t idx);

  std::vector<FileMeta> files_;
  BlockCache* cache_;
  std::shared_ptr<std::atomic<std::uint64_t>> consulted_;
  Range range_;
  std::size_t index_ = 0;  ///< file backing current_ (files_.size() = done)
  IterPtr current_;
};

}  // namespace graphulo::nosql
