#include "nosql/combiner.hpp"

#include <algorithm>

#include "nosql/codec.hpp"

namespace graphulo::nosql {

CombinerIterator::CombinerIterator(IterPtr source, Reducer reduce,
                                   std::set<std::string> families)
    : source_(std::move(source)),
      reduce_(std::move(reduce)),
      families_(std::move(families)) {}

void CombinerIterator::seek(const Range& range) {
  buf_.clear();
  buf_pos_ = 0;
  source_->seek(range);
  load_group();
}

void CombinerIterator::next() { load_group(); }

std::size_t CombinerIterator::next_block(CellBlock& out, std::size_t max) {
  std::size_t appended = 0;
  while (appended < max && have_top_) {
    out.append(top_key_, top_value_);
    ++appended;
    load_group();
  }
  return appended;
}

const Cell* CombinerIterator::peek() {
  constexpr std::size_t kReadAhead = 256;
  if (buf_pos_ >= buf_.size()) {
    buf_.clear();
    buf_pos_ = 0;
    if (source_->has_top()) source_->next_block(buf_, kReadAhead);
  }
  return buf_pos_ < buf_.size() ? &buf_[buf_pos_] : nullptr;
}

void CombinerIterator::load_group() {
  const Cell* c = peek();
  if (!c) {
    have_top_ = false;
    return;
  }
  top_key_ = c->key;
  top_value_ = c->value;
  advance();
  const bool combinable =
      families_.empty() || families_.count(top_key_.family) > 0;
  if (!combinable) {
    have_top_ = true;
    return;
  }
  // Fold every remaining version of this cell (they are adjacent in key
  // order). The combined cell keeps the newest timestamp, which is the
  // first one seen.
  while ((c = peek()) != nullptr && c->key.same_cell(top_key_)) {
    top_value_ = reduce_(top_value_, c->value);
    advance();
  }
  have_top_ = true;
}

CombinerIterator::Reducer sum_double_reducer() {
  return [](const Value& a, const Value& b) {
    return encode_double(decode_double(a).value_or(0.0) +
                         decode_double(b).value_or(0.0));
  };
}

CombinerIterator::Reducer sum_int_reducer() {
  return [](const Value& a, const Value& b) {
    return encode_int(decode_int(a).value_or(0) + decode_int(b).value_or(0));
  };
}

CombinerIterator::Reducer min_double_reducer() {
  return [](const Value& a, const Value& b) {
    return encode_double(std::min(decode_double(a).value_or(0.0),
                                  decode_double(b).value_or(0.0)));
  };
}

CombinerIterator::Reducer max_double_reducer() {
  return [](const Value& a, const Value& b) {
    return encode_double(std::max(decode_double(a).value_or(0.0),
                                  decode_double(b).value_or(0.0)));
  };
}

}  // namespace graphulo::nosql
