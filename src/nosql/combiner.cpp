#include "nosql/combiner.hpp"

#include <algorithm>

#include "nosql/codec.hpp"

namespace graphulo::nosql {

CombinerIterator::CombinerIterator(IterPtr source, Reducer reduce,
                                   std::set<std::string> families)
    : source_(std::move(source)),
      reduce_(std::move(reduce)),
      families_(std::move(families)) {}

void CombinerIterator::seek(const Range& range) {
  source_->seek(range);
  load_group();
}

void CombinerIterator::next() { load_group(); }

void CombinerIterator::load_group() {
  if (!source_->has_top()) {
    have_top_ = false;
    return;
  }
  top_key_ = source_->top_key();
  top_value_ = source_->top_value();
  source_->next();
  const bool combinable =
      families_.empty() || families_.count(top_key_.family) > 0;
  if (!combinable) {
    have_top_ = true;
    return;
  }
  // Fold every remaining version of this cell (they are adjacent in key
  // order). The combined cell keeps the newest timestamp, which is the
  // first one seen.
  while (source_->has_top() && source_->top_key().same_cell(top_key_)) {
    top_value_ = reduce_(top_value_, source_->top_value());
    source_->next();
  }
  have_top_ = true;
}

CombinerIterator::Reducer sum_double_reducer() {
  return [](const Value& a, const Value& b) {
    return encode_double(decode_double(a).value_or(0.0) +
                         decode_double(b).value_or(0.0));
  };
}

CombinerIterator::Reducer sum_int_reducer() {
  return [](const Value& a, const Value& b) {
    return encode_int(decode_int(a).value_or(0) + decode_int(b).value_or(0));
  };
}

CombinerIterator::Reducer min_double_reducer() {
  return [](const Value& a, const Value& b) {
    return encode_double(std::min(decode_double(a).value_or(0.0),
                                  decode_double(b).value_or(0.0)));
  };
}

CombinerIterator::Reducer max_double_reducer() {
  return [](const Value& a, const Value& b) {
    return encode_double(std::max(decode_double(a).value_or(0.0),
                                  decode_double(b).value_or(0.0)));
  };
}

}  // namespace graphulo::nosql
