#pragma once
// A tablet: one contiguous row-range shard of a table, consisting of an
// in-memory write buffer (memtable), zero or more frozen (immutable)
// memtables awaiting flush, and a LEVELED set of immutable sorted files
// — the LevelDB arrangement grafted onto the Accumulo tablet model.
// All public methods are thread-safe.
//
// File layout (see version_set.hpp): L0 holds raw memtable flushes
// whose key ranges may overlap; L1+ hold files with disjoint key
// ranges, so a point read consults at most one file per sorted level.
// The file set is an immutable Version installed atomically through a
// VersionSet; scans snapshot the current version and are never blocked
// by an install. A compaction picker (level fullness: L0 file-count
// trigger, per-level byte budgets) selects a victim slice — all of L0
// plus its next-level overlap, or one over-budget file plus its
// overlap — and rewrites just that slice. Delete markers (and shadowed
// versions) drop only when the output is bottommost for its key range
// AND nothing is frozen, i.e. the key can no longer exist anywhere
// deeper; partial compactions keep them for scan-time resolution.
// Setting TableConfig::compaction.leveled = false restores the flat
// layout (everything in L0, full-merge majors at compaction_fanin) as
// a baseline.
//
// Two compaction execution modes:
//
//  - Inline (no CompactionScheduler attached, the default): threshold
//    flushes run synchronously inside apply(), then the picker loop
//    settles every over-budget level before the writer returns.
//
//  - Background (CompactionScheduler attached): a threshold crossing
//    freezes the active memtable (O(1) swap) and enqueues the flush on
//    the scheduler; writers continue into a fresh memtable. One picked
//    compaction runs off-thread at a time; a completed install
//    re-checks the picker so cascades (L0->L1 overflowing L1) drain.
//    Back-pressure: writers block when the file count reaches
//    TableConfig::max_tablet_files or too many frozen memtables pile
//    up, until background compactions catch up.
//
// Ordering: minor flushes install in data-seq order (oldest frozen
// first), so every live file is older than every pending frozen
// memtable and an L0 compaction that takes all current L0 files can
// never interleave with a landing flush.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "nosql/block_cache.hpp"
#include "nosql/compaction_scheduler.hpp"
#include "nosql/iterator.hpp"
#include "nosql/memtable.hpp"
#include "nosql/mutation.hpp"
#include "nosql/rfile.hpp"
#include "nosql/table_config.hpp"
#include "nosql/version_set.hpp"

namespace graphulo::nosql {

class TabletSnapshot;   // snapshot.hpp — a pinned MVCC cut of one tablet
struct PinnedSources;   // snapshot.hpp — the cut's immutable sources

/// The row interval a tablet covers: [start_row, end_row), where an
/// empty string means unbounded on that side.
struct TabletExtent {
  std::string start_row;  ///< inclusive; "" = -infinity
  std::string end_row;    ///< exclusive; "" = +infinity

  bool contains_row(const std::string& row) const noexcept {
    if (!start_row.empty() && row < start_row) return false;
    if (!end_row.empty() && row >= end_row) return false;
    return true;
  }
};

/// Point-in-time statistics for one tablet.
struct TabletStats {
  std::size_t memtable_entries = 0;
  std::size_t frozen_memtables = 0;  ///< immutable memtables awaiting flush
  std::size_t frozen_entries = 0;
  std::size_t file_count = 0;
  std::size_t file_entries = 0;
  /// Sum of RFile::total_block_bytes over this tablet's files: what a
  /// block cache would pay to hold every data block resident. With
  /// prefix encoding on, file_entries / file_block_bytes is the
  /// cells-per-cached-byte density the encoding buys.
  std::size_t file_block_bytes = 0;
  /// Per-level file counts and byte sizes (index = level); the
  /// space-amplification shape of the tablet.
  std::vector<std::size_t> level_files;
  std::vector<std::uint64_t> level_bytes;
  std::size_t minor_compactions = 0;
  std::size_t major_compactions = 0;
  /// Background-compaction accounting (0 unless a scheduler is
  /// attached).
  std::size_t compactions_queued = 0;
  std::size_t compactions_completed = 0;
  std::size_t compactions_in_flight = 0;
  /// Block-cache counters, from the table-level cache this tablet's
  /// scans read through (0 when caching is off).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  /// Blocks/bytes resident right now — drops when a compaction retires
  /// files and their blocks are proactively erased.
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = 0;
  /// MVCC snapshot registry state: handles currently pinning this
  /// tablet's compaction horizon, the oldest pinned seq among them
  /// (0 when none), and how many handles have ever been expired by the
  /// max-snapshot-age sweep.
  std::size_t live_snapshots = 0;
  std::uint64_t oldest_snapshot_seq = 0;
  std::size_t snapshots_expired = 0;
  /// Inline back-pressure reliefs (flush+compact under the write lock
  /// because nothing could be queued) and reliefs that failed even
  /// after bounded retries.
  std::size_t relief_runs = 0;
  std::size_t relief_failures = 0;
};

class Tablet : public std::enable_shared_from_this<Tablet> {
 public:
  /// `config` must outlive the tablet (owned by the Table), as must
  /// `cache` when non-null. Attaching a `scheduler` requires the
  /// tablet itself to be owned by a shared_ptr (background tasks keep
  /// it alive via shared_from_this). The scheduler pointer is
  /// NON-OWNING — the attacher (Instance, or a test) keeps it alive
  /// while attached. Tablets deliberately hold no strong reference:
  /// a finishing background task may drop the last tablet reference
  /// on a scheduler pool thread, and a tablet-owned scheduler ref
  /// would then run the scheduler's destructor on its own worker
  /// (self-join deadlock).
  Tablet(TabletExtent extent, const TableConfig* config,
         BlockCache* cache = nullptr,
         CompactionScheduler* scheduler = nullptr)
      : extent_(std::move(extent)),
        config_(config),
        cache_(cache),
        scheduler_(scheduler) {}

  /// Releases the tablet's contribution to the global frozen-memtable
  /// gauge (a tablet dropped with unflushed frozen memtables must not
  /// leave them counted forever).
  ~Tablet();

  const TabletExtent& extent() const noexcept { return extent_; }

  /// Attaches (or detaches, with nullptr) the background scheduler
  /// (non-owning; see the constructor note). The tablet must be
  /// shared_ptr-owned when attaching.
  void set_compaction_scheduler(CompactionScheduler* s);

  /// Applies a mutation whose row must be inside this extent.
  /// Triggers a minor compaction (flush) when the memtable exceeds the
  /// configured threshold, then whatever compactions the level picker
  /// is due — inline without a scheduler, enqueued in the background
  /// with one. A TRANSIENT failure of those threshold-triggered
  /// compactions is contained (warned, data kept in memory, retried by
  /// a later write); the mutation itself has already landed and
  /// apply() still succeeds. May block on back-pressure in background
  /// mode.
  void apply(const Mutation& mutation, Timestamp assigned_ts);

  /// Inserts one pre-formed cell (compaction/move path).
  void insert_cell(Cell cell);

  /// Flushes the memtable (and any frozen memtables) into immutable
  /// L0 files through the minc-scope iterator stack, synchronously: on
  /// return nothing is buffered in memory. Waits for an in-flight
  /// background flush rather than duplicating it. No-op when nothing
  /// is buffered; a flush whose minc stack drops every cell installs
  /// no file.
  void flush();

  /// Merges ALL files (flushing the memtable first) through the
  /// majc-scope iterator stack into a single file, synchronously.
  /// Delete markers are dropped (full-major compaction semantics)
  /// unless a live snapshot still observes them — then they ride along
  /// and a post-release compaction retires them. The output lands at
  /// the deepest level (L1 minimum when leveled). An empty merge
  /// result installs no file.
  void major_compact();

  /// Builds a scan stack over a consistent snapshot:
  /// merge(memtable, frozen memtables, L0 files, one LevelIterator per
  /// sorted level) -> deletes -> versioning -> scan-scope attached
  /// iterators. Sorted levels are seek-pruned, so a point read
  /// consults at most one file per level; files actually opened are
  /// counted into the scan.files_consulted histogram when the stack is
  /// destroyed. The caller may wrap further scan-time iterators around
  /// the returned stack.
  IterPtr scan_stack() const;

  /// Snapshot of the raw merged data WITHOUT versioning/scan iterators
  /// (diagnostics and split).
  IterPtr raw_stack() const;

  /// Opens an MVCC snapshot: pins the current cut (memtable contents,
  /// frozen memtables, file set) at the current data seq and registers
  /// it so compactions keep every cell and delete marker the cut can
  /// observe. Requires the tablet to be shared_ptr-owned (the handle
  /// keeps it alive). Handles deregister on destruction; ones older
  /// than TableConfig::admission.max_snapshot_age are expired instead
  /// of stalling compaction. See snapshot.hpp.
  std::shared_ptr<TabletSnapshot> open_snapshot();

  /// Snapshot of the current leveled file set (cheap, lock-free reads
  /// afterwards). Checkpointing walks this to persist file metadata.
  std::shared_ptr<const Version> version() const;

  /// Cells buffered in memory only (active + frozen memtables), merged
  /// newest-first — the unflushed remainder a checkpoint must persist
  /// as raw cells alongside the file set.
  std::vector<Cell> unflushed_cells() const;

  /// Installs recovered files as the tablet's file set (recovery
  /// path; the tablet must hold no files yet). Every FileMeta must
  /// carry a live RFile whose file_id matches. Passes through the
  /// `manifest.install` fault site — callers wrap in with_retries.
  void restore_files(std::vector<FileMeta> files);

  TabletStats stats() const;

  /// Total logical entries (memtable + frozen + files, before
  /// versioning).
  std::size_t entry_estimate() const;

  /// Up to `n` row keys sampled evenly from this tablet's data (sorted,
  /// deduplicated). Candidates for partition boundaries when a table has
  /// fewer tablets than a parallel scan wants workers.
  std::vector<std::string> sample_split_rows(std::size_t n) const;

 private:
  friend class TabletSnapshot;

  /// An immutable memtable snapshot awaiting flush, ordered by `seq`.
  struct FrozenMemtable {
    std::uint64_t seq = 0;
    std::shared_ptr<const std::vector<Cell>> cells;
  };

  /// Registry record for one open snapshot handle. `expired` is shared
  /// with the handle: the age sweep flips it and drops the record, so
  /// compaction unblocks while the (abandoned) handle learns it is
  /// dead on its next scan.
  struct LiveSnapshot {
    std::uint64_t id = 0;
    std::uint64_t seq = 0;
    std::chrono::steady_clock::time_point opened;
    std::shared_ptr<std::atomic<bool>> expired;
  };

  /// Captures the current cut's immutable sources (memtable snapshot,
  /// frozen list, current Version) — the open_snapshot payload and the
  /// basis of every scan stack.
  PinnedSources pinned_sources_locked() const;
  /// Merge of every live source, newest first: memtable, frozen + L0
  /// interleaved by seq, then one LevelIterator per sorted level.
  /// `consulted` (nullable) counts files actually opened.
  IterPtr merged_sources_locked(
      std::shared_ptr<std::atomic<std::uint64_t>> consulted) const;
  /// Threshold flush/compact: inline (failure-contained) without a
  /// scheduler, freeze + enqueue with one.
  void maybe_compact_locked();
  void flush_locked();
  void major_compact_locked();
  /// Runs the minc-scope stack over one frozen snapshot; fires the
  /// flush fault site. `settings` is passed in (copied under the lock
  /// by background callers) so no config read races a concurrent
  /// attach_iterator.
  std::vector<Cell> build_minor_cells(
      const std::shared_ptr<const std::vector<Cell>>& snapshot,
      const std::vector<IteratorSetting>& settings) const;
  /// Moves the active memtable into frozen_ (no-op when empty) and
  /// makes sure a background flush is queued. Requires scheduler_.
  void freeze_active_locked();
  void enqueue_minor_locked();
  /// Enqueues a background compaction when the picker has work.
  void maybe_enqueue_major_locked();
  /// Removes frozen entry `seq` and installs `file` (nullptr = the
  /// minc stack dropped everything) as an L0 file.
  void install_minor_locked(std::uint64_t seq,
                            const std::shared_ptr<RFile>& file);
  /// Installs `edit` through the VersionSet (fires manifest.install;
  /// may throw TransientError) and evicts retired files' blocks from
  /// the cache. False = a removed input vanished, edit rejected.
  bool apply_edit_locked(const VersionEdit& edit);
  /// Asks the picker for the next due compaction on the current
  /// version (considers leveled/flat mode and back-pressure).
  std::optional<CompactionPick> pick_locked() const;
  /// Executes one picked compaction synchronously under the lock
  /// (inline mode and back-pressure relief).
  void run_compaction_locked(const CompactionPick& pick);
  /// Blocks the writer while files/frozen memtables exceed their
  /// ceilings (background mode only), keeping compactions queued.
  void wait_for_capacity_locked(std::unique_lock<std::mutex>& lock);
  void run_background_minor();
  void run_background_major();
  /// Deregisters a snapshot handle (no-op when the age sweep already
  /// expired it).
  void release_snapshot(std::uint64_t id) noexcept;
  /// Expires registry records older than admission.max_snapshot_age.
  void expire_overdue_snapshots_locked();
  /// True when no live snapshot can observe cells from compaction
  /// inputs with max seq `max_input_seq` — i.e. delete markers may
  /// drop and versions may collapse. Sweeps overdue snapshots first,
  /// so an abandoned handle delays GC at most max_snapshot_age.
  bool horizon_allows_gc_locked(std::uint64_t max_input_seq);

  TabletExtent extent_;
  const TableConfig* config_;
  BlockCache* cache_ = nullptr;
  CompactionScheduler* scheduler_ = nullptr;  ///< non-owning
  mutable std::mutex mutex_;
  /// Signalled on every install/completion: back-pressure waits,
  /// flush()'s drain wait.
  mutable std::condition_variable state_cv_;
  Memtable memtable_;
  std::vector<FrozenMemtable> frozen_;  ///< sorted by seq, newest first
  VersionSet versions_;                 ///< the leveled file set
  std::uint64_t next_data_seq_ = 1;
  bool minor_inflight_ = false;
  bool major_inflight_ = false;
  std::size_t minor_compactions_ = 0;
  std::size_t major_compactions_ = 0;
  std::uint64_t bg_queued_ = 0;
  std::uint64_t bg_completed_ = 0;
  /// MVCC snapshot registry (sorted by id = open order).
  std::vector<LiveSnapshot> live_snapshots_;
  std::uint64_t next_snapshot_id_ = 1;
  std::uint64_t snapshots_expired_ = 0;
  std::size_t relief_runs_ = 0;
  std::size_t relief_failures_ = 0;
};

}  // namespace graphulo::nosql
