#pragma once
// A tablet: one contiguous row-range shard of a table, consisting of an
// in-memory write buffer (memtable) plus immutable sorted files, with
// minor/major compaction — the standard LSM structure Accumulo tablets
// use. All public methods are thread-safe.

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nosql/iterator.hpp"
#include "nosql/memtable.hpp"
#include "nosql/mutation.hpp"
#include "nosql/rfile.hpp"
#include "nosql/table_config.hpp"

namespace graphulo::nosql {

/// The row interval a tablet covers: [start_row, end_row), where an
/// empty string means unbounded on that side.
struct TabletExtent {
  std::string start_row;  ///< inclusive; "" = -infinity
  std::string end_row;    ///< exclusive; "" = +infinity

  bool contains_row(const std::string& row) const noexcept {
    if (!start_row.empty() && row < start_row) return false;
    if (!end_row.empty() && row >= end_row) return false;
    return true;
  }
};

/// Point-in-time statistics for one tablet.
struct TabletStats {
  std::size_t memtable_entries = 0;
  std::size_t file_count = 0;
  std::size_t file_entries = 0;
  std::size_t minor_compactions = 0;
  std::size_t major_compactions = 0;
};

class Tablet {
 public:
  /// `config` must outlive the tablet (owned by the Table).
  Tablet(TabletExtent extent, const TableConfig* config)
      : extent_(std::move(extent)), config_(config) {}

  const TabletExtent& extent() const noexcept { return extent_; }

  /// Applies a mutation whose row must be inside this extent.
  /// Triggers a minor compaction (flush) when the memtable exceeds the
  /// configured threshold, and a major compaction when the file count
  /// reaches the configured fan-in. A TRANSIENT failure of those
  /// threshold-triggered compactions is contained (warned, memtable
  /// kept, retried by a later write); the mutation itself has already
  /// landed and apply() still succeeds.
  void apply(const Mutation& mutation, Timestamp assigned_ts);

  /// Inserts one pre-formed cell (compaction/move path).
  void insert_cell(Cell cell);

  /// Flushes the memtable into a new immutable file through the
  /// minc-scope iterator stack. No-op when the memtable is empty.
  void flush();

  /// Merges all files (flushing the memtable first) through the
  /// majc-scope iterator stack into a single file. Delete markers are
  /// dropped (full-majority compaction semantics).
  void major_compact();

  /// Builds a scan stack over a consistent snapshot:
  /// merge(memtable, files) -> deletes -> versioning -> scan-scope
  /// attached iterators. The caller may wrap further scan-time
  /// iterators around the returned stack.
  IterPtr scan_stack() const;

  /// Snapshot of the raw merged data WITHOUT versioning/scan iterators
  /// (diagnostics and split).
  IterPtr raw_stack() const;

  TabletStats stats() const;

  /// Total logical entries (memtable + files, before versioning).
  std::size_t entry_estimate() const;

  /// Up to `n` row keys sampled evenly from this tablet's data (sorted,
  /// deduplicated). Candidates for partition boundaries when a table has
  /// fewer tablets than a parallel scan wants workers.
  std::vector<std::string> sample_split_rows(std::size_t n) const;

 private:
  IterPtr merged_sources_locked() const;  // requires mutex_ held
  void maybe_compact_locked();  ///< threshold flush/compact, failure-contained
  void flush_locked();
  void major_compact_locked();

  TabletExtent extent_;
  const TableConfig* config_;
  mutable std::mutex mutex_;
  Memtable memtable_;
  std::vector<std::shared_ptr<RFile>> files_;  // newest first
  std::size_t minor_compactions_ = 0;
  std::size_t major_compactions_ = 0;
};

}  // namespace graphulo::nosql
