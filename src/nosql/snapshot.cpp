#include "nosql/snapshot.hpp"

#include "nosql/block_cache.hpp"
#include "nosql/filter_iterators.hpp"
#include "nosql/merge_iterator.hpp"
#include "obs/metrics.hpp"

namespace graphulo::nosql {

namespace {

obs::Histogram& files_consulted_hist() {
  static obs::Histogram& h = obs::MetricsRegistry::global().histogram(
      "scan.files_consulted",
      "Immutable files opened per tablet scan stack (read amplification)",
      {0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128});
  return h;
}

}  // namespace

std::shared_ptr<std::atomic<std::uint64_t>> make_consulted_probe() {
  return std::shared_ptr<std::atomic<std::uint64_t>>(
      new std::atomic<std::uint64_t>(0),
      [](std::atomic<std::uint64_t>* c) {
        files_consulted_hist().observe(
            static_cast<double>(c->load(std::memory_order_relaxed)));
        delete c;
      });
}

IterPtr apply_scope_iterators(IterPtr source,
                              const std::vector<IteratorSetting>& settings,
                              unsigned scope) {
  for (const auto& setting : settings) {
    if (setting.scopes & scope) source = setting.factory(std::move(source));
  }
  return source;
}

IterPtr merge_pinned_sources(
    const PinnedSources& sources, BlockCache* cache,
    std::shared_ptr<std::atomic<std::uint64_t>> consulted) {
  const auto& v = sources.version;
  static const std::vector<FileMeta> kNoFiles;
  const auto& l0 = (!v || v->levels.empty()) ? kNoFiles : v->levels[0];
  std::vector<IterPtr> children;
  children.reserve(sources.frozen.size() + (v ? v->file_count() : 0) + 1);
  // Newest source first: at equal keys the merge prefers lower child
  // indices. The memtable cut is always newest; frozen memtables and L0
  // files interleave by data sequence number. Sorted levels follow,
  // shallowest (newest) first — everything in L(n+1) predates
  // everything in L(n) by construction.
  if (sources.memtable) {
    children.push_back(std::make_unique<VectorIterator>(sources.memtable));
  }
  auto fz = sources.frozen.begin();
  std::size_t fi = 0;
  while (fz != sources.frozen.end() || fi < l0.size()) {
    if (fi >= l0.size() ||
        (fz != sources.frozen.end() && fz->first > l0[fi].seq)) {
      children.push_back(std::make_unique<VectorIterator>(fz->second));
      ++fz;
    } else {
      // One LevelIterator per L0 file (ranges may overlap), so file
      // opens are counted — and seek-pruned — uniformly across levels.
      children.push_back(std::make_unique<LevelIterator>(
          std::vector<FileMeta>{l0[fi]}, cache, consulted));
      ++fi;
    }
  }
  if (v) {
    for (std::size_t l = 1; l < v->levels.size(); ++l) {
      if (v->levels[l].empty()) continue;
      children.push_back(
          std::make_unique<LevelIterator>(v->levels[l], cache, consulted));
    }
  }
  return std::make_unique<MergeIterator>(std::move(children));
}

TabletSnapshot::~TabletSnapshot() {
  if (tablet_) tablet_->release_snapshot(id_);
}

bool TabletSnapshot::expired() const {
  if (expired_flag_ && expired_flag_->load(std::memory_order_acquire)) {
    return true;
  }
  // Self-check against the captured age limit too: the tablet's sweep
  // only runs on compaction/open activity, but an overdue handle must
  // refuse reads regardless.
  return max_age_.count() > 0 &&
         std::chrono::steady_clock::now() - opened_ > max_age_;
}

IterPtr TabletSnapshot::scan_stack() const {
  if (expired()) {
    throw SnapshotExpired(
        "snapshot expired (older than admission.max_snapshot_age); "
        "pinned seq=" + std::to_string(seq_));
  }
  IterPtr stack = merge_pinned_sources(sources_, cache_,
                                       make_consulted_probe());
  stack = std::make_unique<DeletingIterator>(std::move(stack));
  if (versioning_) {
    stack = std::make_unique<VersioningIterator>(std::move(stack),
                                                 max_versions_);
  }
  return apply_scope_iterators(std::move(stack), iterators_, kScanScope);
}

IterPtr TabletSnapshot::raw_stack() const {
  return merge_pinned_sources(sources_, cache_, nullptr);
}

std::vector<std::shared_ptr<TabletSnapshot>> Snapshot::tablets_for_range(
    const Range& range) const {
  std::vector<std::shared_ptr<TabletSnapshot>> out;
  for (const auto& ts : tablets_) {
    if (range.may_intersect_rows(ts->extent().start_row,
                                 ts->extent().end_row)) {
      out.push_back(ts);
    }
  }
  return out;
}

bool Snapshot::expired() const {
  for (const auto& ts : tablets_) {
    if (ts->expired()) return true;
  }
  return false;
}

}  // namespace graphulo::nosql
