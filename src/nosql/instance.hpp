#pragma once
// The database instance: table catalog, split management, mutation
// routing, and the logical timestamp authority — the in-process stand-in
// for an Accumulo cluster (see DESIGN.md for what this substitution
// preserves).

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "nosql/admission.hpp"
#include "nosql/block_cache.hpp"
#include "nosql/compaction_scheduler.hpp"
#include "nosql/mutation.hpp"
#include "nosql/snapshot.hpp"
#include "nosql/table_config.hpp"
#include "nosql/tablet.hpp"
#include "nosql/tablet_server.hpp"
#include "nosql/wal.hpp"
#include "util/fault.hpp"

namespace graphulo::nosql {

/// One table: config + tablets sorted by extent, each assigned to a
/// tablet server round-robin. When the config asks for RFile block
/// caching (rfile.cache_bytes > 0) the table owns one shared
/// BlockCache that every tablet's file iterators read through.
class Table {
 public:
  Table(std::string name, TableConfig config)
      : name_(std::move(name)),
        config_(std::make_unique<TableConfig>(std::move(config))),
        admission_(
            std::make_unique<AdmissionController>(&config_->admission)) {
    if (config_->rfile.cache_bytes > 0) {
      cache_ = std::make_unique<BlockCache>(config_->rfile.cache_bytes);
    }
  }

  const std::string& name() const noexcept { return name_; }
  TableConfig& config() noexcept { return *config_; }
  const TableConfig& config() const noexcept { return *config_; }

  /// Tablets in extent order.
  const std::vector<std::shared_ptr<Tablet>>& tablets() const noexcept {
    return tablets_;
  }

  /// The table-wide RFile block cache; nullptr when caching is off.
  BlockCache* cache() const noexcept { return cache_.get(); }

  /// The table's admission gate (always present; a no-op with default
  /// AdmissionConfig knobs).
  AdmissionController& admission() const noexcept { return *admission_; }

 private:
  friend class Instance;

  std::string name_;
  std::unique_ptr<TableConfig> config_;  // stable address for tablets
  /// Stable address: Scanner/BatchWriter hold the pointer across calls.
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<BlockCache> cache_;    // stable address for tablets
  std::vector<std::shared_ptr<Tablet>> tablets_;
  std::vector<int> tablet_server_of_;  ///< parallel to tablets_
};

class Instance {
 public:
  /// Creates an instance with `num_tablet_servers` logical servers.
  explicit Instance(int num_tablet_servers = 1);

  // -- catalog ------------------------------------------------------------

  /// Creates a table with one tablet covering all rows. Throws if the
  /// name exists.
  void create_table(const std::string& name, TableConfig config = {});

  /// Drops a table. Throws if missing.
  void delete_table(const std::string& name);

  bool table_exists(const std::string& name) const;
  std::vector<std::string> table_names() const;

  /// Clones `source` into a new table `target`: same config, same
  /// splits, same data (versions and delete markers preserved). Like
  /// Accumulo's clone, the copy is independent afterwards. Journaled to
  /// the WAL (kCloneTable) when one is attached, so clones survive
  /// recovery; the clone's iterator settings, like every table's, are
  /// code-side and must be reattached after recovery.
  void clone_table(const std::string& source, const std::string& target);

  /// Mutable table config (attach iterators before/while writing).
  TableConfig& table_config(const std::string& name);

  // -- splits -------------------------------------------------------------

  /// Adds split points: each named row becomes a tablet boundary. Data
  /// already written is repartitioned. New tablets are balanced across
  /// tablet servers round-robin. Journaled to the WAL (kAddSplits) when
  /// one is attached, so recovered tables keep their tablet layout.
  void add_splits(const std::string& name, std::vector<std::string> split_rows);

  /// Current split points of a table.
  std::vector<std::string> list_splits(const std::string& name) const;

  /// Row keys that cut `name` into up to `target_partitions` contiguous
  /// row ranges for parallel scans: the tablet split points, refined with
  /// row keys sampled from tablet data when the table has fewer tablets
  /// than partitions wanted (e.g. a single-tablet table). Returns at most
  /// `target_partitions - 1` sorted distinct non-empty rows; fewer when
  /// the data does not contain enough distinct rows. Thread-safe, like
  /// all scan entry points.
  std::vector<std::string> partition_rows(const std::string& name,
                                          std::size_t target_partitions) const;

  // -- writes -------------------------------------------------------------

  /// Applies a mutation, routed to the owning tablet; assigns the next
  /// logical timestamp to updates without one. Logged to the WAL when
  /// one is attached. Transient failures (injected or real) of the WAL
  /// append are retried with bounded exponential backoff; the timestamp
  /// is assigned once, before the first attempt, so retries do not
  /// perturb the logical clock sequence.
  void apply(const std::string& name, const Mutation& mutation);

  /// Applies a mutation with a pre-assigned timestamp and NO WAL write —
  /// the replay path of crash recovery. Advances the logical clock past
  /// `assigned_ts`.
  void apply_replayed(const std::string& name, const Mutation& mutation,
                      Timestamp assigned_ts);

  /// Routes pre-formed cells straight into their tablets' memtables
  /// (exact keys preserved, no timestamp assignment, no WAL write) —
  /// the checkpoint-restore path for UNFLUSHED data.
  void restore_cells(const std::string& name, std::vector<Cell> cells);

  /// Installs recovered immutable files into the tablet whose extent
  /// starts at `extent_start` ("" = the first tablet) — the
  /// checkpoint-restore path for the leveled file set described by a
  /// replayed MANIFEST. Every FileMeta must carry a live RFile. Passes
  /// through the `manifest.install` fault site (callers retry).
  void restore_files(const std::string& name, const std::string& extent_start,
                     std::vector<FileMeta> files);

  // -- durability -----------------------------------------------------------

  /// Attaches a write-ahead log: from now on catalog events and
  /// mutations are appended to it before being applied.
  void attach_wal(std::shared_ptr<WriteAheadLog> wal) { wal_ = std::move(wal); }

  /// Flushes the attached WAL (no-op without one). Transient sync
  /// failures are retried with backoff.
  void sync_wal() {
    if (wal_) {
      util::with_retries("Instance::sync_wal", retry_policy_,
                         [this] { wal_->sync(); });
    }
  }

  /// The attached WAL (nullptr when none).
  const std::shared_ptr<WriteAheadLog>& wal() const noexcept { return wal_; }

  // -- background compactions ----------------------------------------------

  /// Attaches a background compaction scheduler: from now on (and for
  /// every existing tablet) threshold flushes and picker-selected
  /// leveled compactions run on the scheduler's thread pool instead of
  /// inline under the write.
  /// Pass nullptr to detach and return to inline compaction.
  void attach_compaction_scheduler(std::shared_ptr<CompactionScheduler> s);

  /// The attached scheduler (nullptr when compactions run inline).
  const std::shared_ptr<CompactionScheduler>& compaction_scheduler()
      const noexcept {
    return scheduler_;
  }

  /// Blocks until every queued/in-flight background compaction has
  /// finished (no-op without a scheduler). Call before checkpointing or
  /// any operation wanting a settled file set.
  void quiesce_compactions() {
    if (scheduler_) scheduler_->drain();
  }

  /// Retry policy for transient failures in apply/sync/flush/compact.
  void set_retry_policy(util::RetryPolicy policy) noexcept {
    retry_policy_ = policy;
  }
  const util::RetryPolicy& retry_policy() const noexcept {
    return retry_policy_;
  }

  /// Flushes every tablet's memtable (minor compaction). Transient
  /// per-tablet failures are retried with backoff.
  void flush(const std::string& name);

  /// Major-compacts every tablet. Transient per-tablet failures are
  /// retried with backoff.
  void compact(const std::string& name);

  // -- reads --------------------------------------------------------------

  /// The table's tablets whose extents may intersect `range`, in extent
  /// order, paired with their server ids. Used by Scanner/BatchScanner.
  std::vector<std::pair<std::shared_ptr<Tablet>, int>> tablets_for_range(
      const std::string& name, const Range& range) const;

  /// Opens an MVCC snapshot of a whole table: one pinned cut per
  /// tablet, captured in extent order. Scans through the handle (via
  /// Scanner::set_snapshot, BatchScanner::set_snapshot, or
  /// open_table_scan) see exactly this cut no matter how long they run
  /// or what writers/compactions do meanwhile. Throws if the table is
  /// missing.
  std::shared_ptr<const Snapshot> open_snapshot(const std::string& name) const;

  /// The table's admission gate; nullptr when the table is missing.
  AdmissionController* admission(const std::string& name) const;

  // -- introspection -------------------------------------------------------

  /// Refreshes the storage-amplification gauges from current tablet
  /// state: per-level file-count/byte gauges (labelled level="N") and
  /// the live-vs-total-bytes ratio (percent of file bytes residing in
  /// each tablet's deepest level — 100 means no space amplification).
  /// Called by metrics_report(); exporters on a pull cadence can call
  /// it directly before snapshotting.
  void update_storage_gauges() const;

  /// Human-readable report over the global metrics registry — the
  /// monitor-page view: per-server traffic, then every registry series
  /// (counters, gauges, span histograms with p50/p95/p99). Pure
  /// formatting; the data is the same snapshot the exporters serialize.
  /// Refreshes the storage gauges first.
  std::string metrics_report() const;

  int tablet_server_count() const noexcept {
    return static_cast<int>(servers_.size());
  }
  TabletServer& server(int id) { return *servers_[static_cast<std::size_t>(id)]; }

  /// Total logical entries stored in a table (pre-versioning estimate).
  std::size_t entry_estimate(const std::string& name) const;

  /// Next logical timestamp (also advances the clock).
  Timestamp next_timestamp() {
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// The most recently issued logical timestamp.
  Timestamp last_timestamp() const noexcept {
    return clock_.load(std::memory_order_relaxed);
  }

  /// Advances the clock to at least `ts` (replay/restore paths), so
  /// post-recovery writes sort newer than everything recovered.
  void advance_clock(Timestamp ts) {
    Timestamp current = clock_.load(std::memory_order_relaxed);
    while (current < ts && !clock_.compare_exchange_weak(current, ts)) {
    }
  }

 private:
  Table& get_table(const std::string& name);
  const Table& get_table(const std::string& name) const;
  std::shared_ptr<Tablet> route_locked(Table& table, const std::string& row,
                                       int* server_id) const;

  mutable std::shared_mutex catalog_mutex_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::unique_ptr<TabletServer>> servers_;
  std::atomic<Timestamp> clock_{0};
  int next_server_ = 0;  ///< round-robin assignment cursor
  std::shared_ptr<WriteAheadLog> wal_;
  std::shared_ptr<CompactionScheduler> scheduler_;
  util::RetryPolicy retry_policy_;
};

/// Supplies the TableConfig a table should be recreated with during
/// recovery. Iterator settings (combiners, filters) are code, not log
/// records, so recovery cannot reconstruct them from the WAL alone — a
/// provider lets the caller reattach them at creation time, BEFORE
/// replayed mutations flow through flush/compaction stacks. The default
/// provider returns TableConfig{}.
using TableConfigProvider = std::function<TableConfig(const std::string&)>;

/// Crash recovery: replays the WAL at `path` into `db` (normally a
/// fresh instance), honoring every journaled record kind (create,
/// delete, clone, splits, mutations). Tables are recreated with
/// `config_for` (default configs when omitted) — iterator settings
/// remain code-side. Only records with seq >= `min_seq` are applied
/// (checkpoint recovery passes the checkpoint's covered sequence).
/// Returns the number of records applied. The WAL is NOT attached to
/// `db`; attach it explicitly to continue logging.
std::size_t recover_from_wal(Instance& db, const std::string& path,
                             const TableConfigProvider& config_for = {},
                             std::uint64_t min_seq = 0);

}  // namespace graphulo::nosql
