#include "nosql/block_codec.hpp"

#include <algorithm>
#include <cstring>

namespace graphulo::nosql::blockcodec {

namespace {

/// Length of the longest common prefix of two strings.
std::size_t shared_prefix(const std::string& a, const std::string& b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(buf));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void encode_component(std::string& out, const std::string& prev,
                      const std::string& cur, bool restart) {
  const std::size_t shared = restart ? 0 : shared_prefix(prev, cur);
  put_varint(out, shared);
  put_varint(out, cur.size() - shared);
  out.append(cur, shared, cur.size() - shared);
}

/// Decodes one delta-coded component in place: `cur` is the previous
/// entry's value on entry and the decoded value on exit (prefix kept,
/// tail replaced — no allocation when capacity suffices).
bool decode_component(const char*& p, const char* end, std::string& cur) {
  std::uint64_t shared = 0, tail = 0;
  if (!get_varint(p, end, shared) || !get_varint(p, end, tail)) return false;
  if (shared > cur.size()) return false;
  if (static_cast<std::uint64_t>(end - p) < tail) return false;
  cur.resize(static_cast<std::size_t>(shared));
  cur.append(p, static_cast<std::size_t>(tail));
  p += tail;
  return true;
}

/// Decoded-key cursor over a raw block's entries (values skipped).
struct KeyCursor {
  Key key;

  /// Decodes the entry at `p`; `restart` resets the delta state.
  bool step(const char*& p, const char* end, bool restart) {
    if (restart) {
      key.row.clear();
      key.family.clear();
      key.qualifier.clear();
      key.visibility.clear();
      key.ts = 0;
    }
    if (!decode_component(p, end, key.row) ||
        !decode_component(p, end, key.family) ||
        !decode_component(p, end, key.qualifier) ||
        !decode_component(p, end, key.visibility)) {
      return false;
    }
    std::uint64_t ts_delta = 0, value_len = 0;
    if (!get_varint(p, end, ts_delta)) return false;
    key.ts += unzigzag(ts_delta);
    if (p == end) return false;
    key.deleted = (*p++ & 1) != 0;
    if (!get_varint(p, end, value_len)) return false;
    if (static_cast<std::uint64_t>(end - p) < value_len) return false;
    p += value_len;
    return true;
  }
};

/// Splits a raw block into its entry region and restart offsets.
/// Returns false when the trailer is malformed.
bool parse_trailer(std::string_view raw, const char*& entries_end,
                   const char*& restarts, std::size_t& num_restarts) {
  if (raw.size() < sizeof(std::uint32_t)) return false;
  num_restarts = get_u32(raw.data() + raw.size() - sizeof(std::uint32_t));
  const std::size_t trailer =
      (num_restarts + 1) * sizeof(std::uint32_t);
  if (num_restarts == 0 || trailer > raw.size()) return false;
  restarts = raw.data() + raw.size() - trailer;
  entries_end = restarts;
  return true;
}

}  // namespace

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

bool get_varint(const char*& p, const char* end, std::uint64_t& v) {
  v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (p == end) return false;
    const auto byte = static_cast<std::uint8_t>(*p++);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) return true;
  }
  return false;  // overlong
}

std::string encode_block(const Cell* cells, std::size_t n,
                         std::size_t restart_interval) {
  const std::size_t interval = std::max<std::size_t>(1, restart_interval);
  std::string out;
  std::vector<std::uint32_t> restarts;
  static const std::string kEmpty;
  for (std::size_t i = 0; i < n; ++i) {
    const bool restart = i % interval == 0;
    if (restart) restarts.push_back(static_cast<std::uint32_t>(out.size()));
    const Key& k = cells[i].key;
    const Key* prev = restart ? nullptr : &cells[i - 1].key;
    encode_component(out, prev ? prev->row : kEmpty, k.row, restart);
    encode_component(out, prev ? prev->family : kEmpty, k.family, restart);
    encode_component(out, prev ? prev->qualifier : kEmpty, k.qualifier,
                     restart);
    encode_component(out, prev ? prev->visibility : kEmpty, k.visibility,
                     restart);
    put_varint(out, zigzag(k.ts - (prev ? prev->ts : 0)));
    out.push_back(k.deleted ? 1 : 0);
    put_varint(out, cells[i].value.size());
    out.append(cells[i].value);
  }
  if (restarts.empty()) restarts.push_back(0);  // canonical empty block
  for (const auto r : restarts) put_u32(out, r);
  put_u32(out, static_cast<std::uint32_t>(restarts.size()));
  return out;
}

bool decode_block(std::string_view raw, std::size_t expected_count,
                  std::vector<Cell>& out) {
  const char* entries_end = nullptr;
  const char* restarts = nullptr;
  std::size_t num_restarts = 0;
  if (!parse_trailer(raw, entries_end, restarts, num_restarts)) return false;
  out.resize(expected_count);
  const char* p = raw.data();
  std::size_t next_restart = 0;  // index of the next unseen restart offset
  for (std::size_t i = 0; i < expected_count; ++i) {
    Cell& c = out[i];
    // Restart entries are recognized by offset: entry offsets strictly
    // increase and the restart array lists restart-entry offsets in
    // order, so a match is exact. Restarts reset the delta state (the
    // encoder stored absolute values there).
    const auto off = static_cast<std::uint32_t>(p - raw.data());
    const bool restart =
        next_restart < num_restarts &&
        get_u32(restarts + next_restart * sizeof(std::uint32_t)) == off;
    if (restart) ++next_restart;
    if (restart || i == 0) {
      if (i == 0 && !restart) return false;  // first entry must restart
      c.key.row.clear();
      c.key.family.clear();
      c.key.qualifier.clear();
      c.key.visibility.clear();
      c.key.ts = 0;
    } else {
      // Delta base: copy the previous entry's components in, keeping
      // this slot's heap buffers (assign reuses capacity).
      const Cell& prev = out[i - 1];
      c.key.row.assign(prev.key.row);
      c.key.family.assign(prev.key.family);
      c.key.qualifier.assign(prev.key.qualifier);
      c.key.visibility.assign(prev.key.visibility);
      c.key.ts = prev.key.ts;
    }
    if (!decode_component(p, entries_end, c.key.row) ||
        !decode_component(p, entries_end, c.key.family) ||
        !decode_component(p, entries_end, c.key.qualifier) ||
        !decode_component(p, entries_end, c.key.visibility)) {
      return false;
    }
    std::uint64_t ts_delta = 0, value_len = 0;
    if (!get_varint(p, entries_end, ts_delta)) return false;
    c.key.ts += unzigzag(ts_delta);
    if (p == entries_end) return false;
    c.key.deleted = (*p++ & 1) != 0;
    if (!get_varint(p, entries_end, value_len)) return false;
    if (static_cast<std::uint64_t>(entries_end - p) < value_len) return false;
    c.value.assign(p, static_cast<std::size_t>(value_len));
    p += value_len;
  }
  return p == entries_end;  // no trailing entry garbage
}

std::size_t block_lower_bound(std::string_view raw, std::size_t count,
                              std::size_t restart_interval, const Key& key) {
  if (count == 0) return 0;
  const std::size_t interval = std::max<std::size_t>(1, restart_interval);
  const char* entries_end = nullptr;
  const char* restarts = nullptr;
  std::size_t num_restarts = 0;
  if (!parse_trailer(raw, entries_end, restarts, num_restarts)) return count;
  // Binary search the restart array for the last restart whose key is
  // < `key` (restart entries decode standalone). Invariant: lo's key is
  // < key (virtual restart before the block), hi's is unknown-or->=.
  std::size_t lo = 0, hi = num_restarts;  // search in (lo, hi]
  bool lo_known_less = false;
  {
    std::size_t a = 0, b = num_restarts;  // candidate restarts [a, b)
    while (a < b) {
      const std::size_t mid = a + (b - a) / 2;
      const char* p = raw.data() + get_u32(restarts + mid * sizeof(std::uint32_t));
      KeyCursor cur;
      if (p >= entries_end || !cur.step(p, entries_end, /*restart=*/true)) {
        return count;  // malformed; CRC should have caught this
      }
      if (cur.key < key) {
        a = mid + 1;
        lo = mid;
        lo_known_less = true;
      } else {
        b = mid;
      }
    }
    hi = a;
  }
  if (!lo_known_less && hi == 0) {
    // Even the first restart (the block's first key) is >= key.
    return 0;
  }
  // Linear key-only decode from restart `lo` until an entry >= key.
  std::size_t index = lo * interval;
  const char* p = raw.data() + get_u32(restarts + lo * sizeof(std::uint32_t));
  KeyCursor cur;
  for (std::size_t i = index; i < count; ++i) {
    if (!cur.step(p, entries_end, /*restart=*/i % interval == 0)) {
      return count;
    }
    if (!(cur.key < key)) return i;
  }
  return count;
}

}  // namespace graphulo::nosql::blockcodec
