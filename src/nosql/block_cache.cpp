#include "nosql/block_cache.hpp"

#include "obs/metrics.hpp"

namespace graphulo::nosql {

namespace {

// Process-wide totals across every cache instance; per-cache numbers
// stay available through BlockCache::stats().
obs::Counter& cache_hits() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "cache.hits.total", "Block-cache hits");
  return c;
}
obs::Counter& cache_misses() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "cache.misses.total", "Block-cache misses");
  return c;
}
obs::Counter& cache_evictions() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "cache.evictions.total", "Block-cache evictions");
  return c;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t BlockCache::BlockKeyHash::operator()(
    const BlockKey& k) const noexcept {
  return static_cast<std::size_t>(mix64(k.file_id * 0x100000001b3ull ^
                                        k.block_index));
}

BlockCache::BlockCache(std::size_t capacity_bytes, std::size_t num_shards)
    : capacity_(capacity_bytes) {
  const std::size_t n = round_up_pow2(num_shards == 0 ? 1 : num_shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_capacity_ = capacity_ / n;
}

BlockCache::Shard& BlockCache::shard_for(const BlockKey& key) {
  return *shards_[BlockKeyHash{}(key) & (shards_.size() - 1)];
}

bool BlockCache::touch(std::uint64_t file_id, std::uint64_t block_index,
                       const Pin& pin, std::size_t charge) {
  const BlockKey key{file_id, block_index};
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    ++shard.hits;
    cache_hits().inc();
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return true;
  }
  ++shard.misses;
  cache_misses().inc();
  shard.lru.push_front(Entry{key, pin, charge});
  shard.map.emplace(key, shard.lru.begin());
  shard.bytes += charge;
  while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.charge;
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
    cache_evictions().inc();
  }
  return false;
}

BlockCache::Pin BlockCache::find(std::uint64_t file_id,
                                 std::uint64_t block_index) {
  const BlockKey key{file_id, block_index};
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    cache_misses().inc();
    return nullptr;
  }
  ++shard.hits;
  cache_hits().inc();
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->pin;
}

void BlockCache::insert(std::uint64_t file_id, std::uint64_t block_index,
                        const Pin& pin, std::size_t charge) {
  const BlockKey key{file_id, block_index};
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, pin, charge});
  shard.map.emplace(key, shard.lru.begin());
  shard.bytes += charge;
  while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.charge;
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
    cache_evictions().inc();
  }
}

void BlockCache::erase_file(std::uint64_t file_id) {
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.file_id == file_id) {
        shard.bytes -= it->charge;
        shard.map.erase(it->key);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

BlockCacheStats BlockCache::stats() const {
  BlockCacheStats out;
  out.capacity_bytes = capacity_;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard lock(shard.mutex);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
    out.entries += shard.lru.size();
    out.bytes += shard.bytes;
  }
  return out;
}

}  // namespace graphulo::nosql
