#pragma once
// Value and key codecs.
//
// Values in the store are raw bytes; the Graphulo layers stores numbers
// in them. Two encodings are provided:
//   * decimal text ("3.5") — human-readable, what D4M uses; and
//   * fixed-width big-endian binary — compact, order-preserving for
//     unsigned integers.
// Row/column keys that represent vertex indices use zero-padded decimal
// so lexicographic key order equals numeric order (util::zero_pad).

#include <cstdint>
#include <optional>
#include <string>

namespace graphulo::nosql {

/// Encodes a double as decimal text (shortest round-trip form).
std::string encode_double(double v);

/// Parses decimal text; std::nullopt on malformed input.
std::optional<double> decode_double(const std::string& bytes);

/// Encodes an int64 as decimal text.
std::string encode_int(std::int64_t v);

/// Parses a decimal int64; std::nullopt on malformed input.
std::optional<std::int64_t> decode_int(const std::string& bytes);

/// 8-byte big-endian encoding of an unsigned integer; lexicographic
/// order of the encodings equals numeric order.
std::string encode_u64_be(std::uint64_t v);

/// Decodes an 8-byte big-endian unsigned integer; nullopt if the input
/// is not exactly 8 bytes.
std::optional<std::uint64_t> decode_u64_be(const std::string& bytes);

}  // namespace graphulo::nosql
