#pragma once
// Value and key codecs.
//
// Values in the store are raw bytes; the Graphulo layers stores numbers
// in them. Two encodings are provided:
//   * decimal text ("3.5") — human-readable, what D4M uses; and
//   * fixed-width big-endian binary — compact, order-preserving for
//     unsigned integers.
// Row/column keys that represent vertex indices use zero-padded decimal
// so lexicographic key order equals numeric order (util::zero_pad).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "nosql/key.hpp"
#include "nosql/mutation.hpp"

namespace graphulo::nosql {

/// Encodes a double as decimal text (shortest round-trip form).
std::string encode_double(double v);

/// Parses decimal text; std::nullopt on malformed input.
std::optional<double> decode_double(const std::string& bytes);

/// Encodes an int64 as decimal text.
std::string encode_int(std::int64_t v);

/// Parses a decimal int64; std::nullopt on malformed input.
std::optional<std::int64_t> decode_int(const std::string& bytes);

/// 8-byte big-endian encoding of an unsigned integer; lexicographic
/// order of the encodings equals numeric order.
std::string encode_u64_be(std::uint64_t v);

/// Decodes an 8-byte big-endian unsigned integer; nullopt if the input
/// is not exactly 8 bytes.
std::optional<std::uint64_t> decode_u64_be(const std::string& bytes);

// ---- wire codecs --------------------------------------------------------
// Fixed-width little-endian binary encoding of the store's data types
// for the RPC wire (src/rpc) and any other process-boundary format.
// Strings are u32-length-prefixed. Decoding is fully bounds-checked:
// malformed or truncated input throws WireError, never reads out of
// bounds — the RPC layer maps it to a bad-request rejection.

namespace wire {

/// Malformed or truncated wire bytes (bad length prefix, truncated
/// field, trailing garbage where a message end was expected).
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Bounds-checked read cursor over a byte buffer (non-owning).
struct Cursor {
  const char* data = nullptr;
  std::size_t size = 0;
  std::size_t pos = 0;

  Cursor() = default;
  Cursor(const char* d, std::size_t n) : data(d), size(n) {}
  explicit Cursor(const std::string& s) : data(s.data()), size(s.size()) {}

  std::size_t remaining() const noexcept { return size - pos; }
  bool at_end() const noexcept { return pos == size; }

  /// Throws WireError unless the cursor is fully consumed — catches
  /// trailing garbage after a complete message.
  void expect_end() const;
};

void put_u8(std::string& out, std::uint8_t v);
void put_u16(std::string& out, std::uint16_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_i64(std::string& out, std::int64_t v);
void put_string(std::string& out, const std::string& s);

std::uint8_t get_u8(Cursor& c);
std::uint16_t get_u16(Cursor& c);
std::uint32_t get_u32(Cursor& c);
std::uint64_t get_u64(Cursor& c);
std::int64_t get_i64(Cursor& c);
std::string get_string(Cursor& c);

/// Cell-model codecs: Key (row, family, qualifier, visibility, ts,
/// delete marker), Cell (key + value), Mutation (row + column updates)
/// and Range (optional bounds + inclusivity flags) round-trip
/// byte-exactly.
void put_key(std::string& out, const Key& key);
Key get_key(Cursor& c);
void put_cell(std::string& out, const Cell& cell);
Cell get_cell(Cursor& c);
void put_mutation(std::string& out, const Mutation& m);
Mutation get_mutation(Cursor& c);
void put_range(std::string& out, const Range& r);
Range get_range(Cursor& c);

}  // namespace wire

}  // namespace graphulo::nosql
