#pragma once
// Associative arrays — the base data type of the paper (Section II-A):
// a map from string row/column keys to numeric values with semiring
// structure, "exactly describing" a NoSQL database table. Internally an
// AssocArray is encoded as a sparse matrix plus two sorted key
// dictionaries, which is precisely the encoding Section III adopts
// ("for the purposes of this algorithmic work associative arrays are
// encoded as sparse matrices").
//
// The algebra follows the paper's reading: adding two arrays unions
// their keys; multiplying correlates them (the inner dimension is the
// union of A's column keys and B's row keys); element-wise
// multiplication intersects.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "la/spmat.hpp"

namespace graphulo::assoc {

/// One (row key, col key, value) entry.
struct Entry {
  std::string row;
  std::string col;
  double val;

  friend bool operator==(const Entry&, const Entry&) = default;
};

/// An associative array over double values with string keys.
class AssocArray {
 public:
  /// The empty array (no keys, no entries).
  AssocArray() = default;

  /// Builds from entries; duplicate (row, col) pairs are combined with
  /// `combine` (default: +). Zero results are dropped. Key dictionaries
  /// are the sorted distinct keys that appear — associative arrays have
  /// no empty rows/columns, unlike raw sparse matrices (Section II-A).
  static AssocArray from_entries(std::vector<Entry> entries,
                                 std::function<double(double, double)> combine =
                                     nullptr);

  /// Wraps an existing matrix with explicit dictionaries. `row_keys` /
  /// `col_keys` must be sorted, distinct, and sized to the matrix.
  static AssocArray from_matrix(std::vector<std::string> row_keys,
                                std::vector<std::string> col_keys,
                                la::SpMat<double> matrix);

  // -- shape & access -------------------------------------------------------

  std::size_t row_count() const noexcept { return row_keys_.size(); }
  std::size_t col_count() const noexcept { return col_keys_.size(); }
  la::Offset nnz() const noexcept { return matrix_.nnz(); }
  bool empty() const noexcept { return matrix_.nnz() == 0; }

  const std::vector<std::string>& row_keys() const noexcept { return row_keys_; }
  const std::vector<std::string>& col_keys() const noexcept { return col_keys_; }
  const la::SpMat<double>& matrix() const noexcept { return matrix_; }

  /// Value at (row, col) keys; 0 when absent (including unknown keys).
  double at(const std::string& row, const std::string& col) const;

  /// Index of a row key in the dictionary, if present.
  std::optional<la::Index> row_index(const std::string& key) const;
  std::optional<la::Index> col_index(const std::string& key) const;

  /// All entries in (row key, col key) order.
  std::vector<Entry> entries() const;

  // -- algebra ---------------------------------------------------------------

  /// Union-add: C(k) = A(k) + B(k) over the union of keys.
  AssocArray add(const AssocArray& other) const;

  /// Intersection-multiply (SpEWiseX): C(k) = A(k) * B(k) where both set.
  AssocArray ewise_mult(const AssocArray& other) const;

  /// Array multiplication (correlation): C = A * B where A's column keys
  /// are matched against B's row keys by key equality.
  AssocArray multiply(const AssocArray& other) const;

  /// Transpose (swaps dictionaries).
  AssocArray transposed() const;

  /// Apply a function to every stored value (zero results dropped).
  AssocArray apply(const std::function<double(double)>& fn) const;

  /// Scale by a scalar.
  AssocArray scale(double alpha) const;

  // -- sub-referencing (SpRef on keys) ----------------------------------------

  /// Sub-array of the given row keys (unknown keys ignored).
  AssocArray select_rows(const std::vector<std::string>& keys) const;

  /// Sub-array of the given column keys.
  AssocArray select_cols(const std::vector<std::string>& keys) const;

  /// Sub-array of rows with keys in [lo, hi] (string order).
  AssocArray select_row_range(const std::string& lo, const std::string& hi) const;

  /// Sub-array of rows whose key starts with `prefix`.
  AssocArray select_row_prefix(const std::string& prefix) const;

  // -- reductions --------------------------------------------------------------

  /// Row sums as a (row key -> value) column array (n x 1, col key "").
  std::vector<std::pair<std::string, double>> row_sums() const;

  /// Column sums as (col key -> value) pairs — the D4M degree table.
  std::vector<std::pair<std::string, double>> col_sums() const;

  // -- misc --------------------------------------------------------------------

  /// Drops rows/columns whose keys have no stored entries (after apply /
  /// ewise ops the dictionaries can carry empty keys; associative arrays
  /// proper have none).
  AssocArray condensed() const;

  /// Tabular rendering for small arrays.
  std::string to_string() const;

  friend bool operator==(const AssocArray&, const AssocArray&) = default;

 private:
  std::vector<std::string> row_keys_;
  std::vector<std::string> col_keys_;
  la::SpMat<double> matrix_{0, 0};
};

/// Sorted union of two sorted key vectors.
std::vector<std::string> key_union(const std::vector<std::string>& a,
                                   const std::vector<std::string>& b);

/// Sorted intersection of two sorted key vectors.
std::vector<std::string> key_intersection(const std::vector<std::string>& a,
                                          const std::vector<std::string>& b);

}  // namespace graphulo::assoc
