#include "assoc/schemas.hpp"

#include "util/strings.hpp"

namespace graphulo::assoc {

AssocArray adjacency_schema(const std::vector<LabeledEdge>& edges,
                            bool undirected) {
  std::vector<Entry> entries;
  entries.reserve(edges.size() * (undirected ? 2 : 1));
  for (const auto& e : edges) {
    entries.push_back({e.src, e.dst, e.weight});
    if (undirected && e.src != e.dst) entries.push_back({e.dst, e.src, e.weight});
  }
  return AssocArray::from_entries(std::move(entries));
}

AssocArray incidence_schema(const std::vector<LabeledEdge>& edges,
                            bool oriented) {
  std::vector<Entry> entries;
  entries.reserve(edges.size() * 2);
  const int width = 6;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const std::string edge_key = "e|" + util::zero_pad(i, width);
    const auto& e = edges[i];
    if (e.src == e.dst) {
      entries.push_back({edge_key, e.src, e.weight});
      continue;
    }
    entries.push_back({edge_key, e.dst, e.weight});           // edge enters dst
    entries.push_back({edge_key, e.src, oriented ? -e.weight : e.weight});
  }
  return AssocArray::from_entries(std::move(entries));
}

D4MTables d4m_explode(
    const std::vector<std::pair<std::string, Record>>& records) {
  D4MTables out;
  std::vector<Entry> edge_entries;
  std::vector<Entry> raw_entries;
  for (const auto& [id, record] : records) {
    for (const auto& [field, value] : record) {
      edge_entries.push_back({id, field + "|" + value, 1.0});
      raw_entries.push_back({id, field, 1.0});
      out.raw_values.push_back({{id, field}, value});
    }
  }
  out.tedge = AssocArray::from_entries(std::move(edge_entries));
  out.tedge_t = out.tedge.transposed();
  // Tdeg: per exploded column, the number of records carrying it.
  std::vector<Entry> deg_entries;
  for (const auto& [col, count] : out.tedge.col_sums()) {
    deg_entries.push_back({col, "deg", count});
  }
  out.tdeg = AssocArray::from_entries(std::move(deg_entries));
  out.traw = AssocArray::from_entries(std::move(raw_entries));
  return out;
}

AssocArray filter_cols_by_degree(const AssocArray& array, double min_degree,
                                 double max_degree) {
  // Column degree = number of rows carrying the column (structure
  // count, not value sum), matching Tdeg's semantics.
  std::vector<std::string> keep;
  const auto pattern_sums =
      array.apply([](double) { return 1.0; }).col_sums();
  for (const auto& [key, degree] : pattern_sums) {
    if (degree >= min_degree && (max_degree <= 0.0 || degree <= max_degree)) {
      keep.push_back(key);
    }
  }
  return array.select_cols(keep);
}

AssocArray tweets_to_incidence(const gen::TweetCorpus& corpus) {
  std::vector<Entry> entries;
  for (const auto& tweet : corpus.tweets) {
    for (const auto& word : tweet.words) {
      entries.push_back({tweet.id, "word|" + word, 1.0});
    }
  }
  return AssocArray::from_entries(std::move(entries));
}

}  // namespace graphulo::assoc
