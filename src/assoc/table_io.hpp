#pragma once
// AssocArray / SpMat <-> NoSQL table I/O under the D4M convention:
// a table cell (row=r, qualifier=c) -> encoded number IS the associative
// array entry A(r, c). This is the bridge the paper's thesis rests on —
// "Graphulo database tables are exactly described using the mathematics
// of associative arrays" (Section II-A).

#include <string>

#include "assoc/assoc_array.hpp"
#include "la/spmat.hpp"
#include "nosql/instance.hpp"

namespace graphulo::assoc {

/// Column family used for matrix/array payload cells.
inline constexpr const char* kValueFamily = "";

/// Writes an associative array into `table` (created if missing): one
/// put per entry, row = row key, qualifier = col key, value =
/// encode_double(entry). Returns entries written.
std::size_t write_assoc(nosql::Instance& db, const std::string& table,
                        const AssocArray& array);

/// Reads a whole table (or `range`) back into an associative array.
/// Cells whose values fail numeric decoding are skipped.
AssocArray read_assoc(nosql::Instance& db, const std::string& table,
                      const nosql::Range& range = nosql::Range::all());

/// Row/column key for a numeric index under the zero-padded convention
/// (lexicographic order == numeric order), e.g. 7 -> "v|0000007".
std::string vertex_key(la::Index i);

/// Parses a vertex_key back to its index; -1 if malformed.
la::Index parse_vertex_key(const std::string& key);

/// Writes a sparse matrix into `table` using vertex_key() dictionaries.
std::size_t write_matrix(nosql::Instance& db, const std::string& table,
                         const la::SpMat<double>& m);

/// Reads a matrix written by write_matrix(). `rows`/`cols` give the
/// logical shape (keys beyond them are rejected with std::out_of_range).
la::SpMat<double> read_matrix(nosql::Instance& db, const std::string& table,
                              la::Index rows, la::Index cols);

}  // namespace graphulo::assoc
