#include "assoc/assoc_array.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "la/apply.hpp"
#include "la/ewise.hpp"
#include "la/reduce.hpp"
#include "la/spgemm.hpp"
#include "la/spref.hpp"

namespace graphulo::assoc {

using la::Index;
using la::SpMat;
using la::Triple;

namespace {

/// Index of `key` in sorted `keys`, or nullopt.
std::optional<Index> find_key(const std::vector<std::string>& keys,
                              const std::string& key) {
  const auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it == keys.end() || *it != key) return std::nullopt;
  return static_cast<Index>(it - keys.begin());
}

/// Maps each of `keys` to its position in sorted `universe` (every key
/// must be present).
std::vector<Index> positions_in(const std::vector<std::string>& keys,
                                const std::vector<std::string>& universe) {
  std::vector<Index> pos;
  pos.reserve(keys.size());
  for (const auto& k : keys) {
    const auto idx = find_key(universe, k);
    if (!idx) throw std::logic_error("positions_in: key missing from universe");
    pos.push_back(*idx);
  }
  return pos;
}

/// Re-embeds `m` (indexed by `row_keys` x `col_keys`) into the larger
/// dictionary pair (`new_rows` x `new_cols`), both supersets.
SpMat<double> embed(const SpMat<double>& m,
                    const std::vector<std::string>& row_keys,
                    const std::vector<std::string>& col_keys,
                    const std::vector<std::string>& new_rows,
                    const std::vector<std::string>& new_cols) {
  const auto row_pos = positions_in(row_keys, new_rows);
  const auto col_pos = positions_in(col_keys, new_cols);
  std::vector<Triple<double>> triples;
  triples.reserve(static_cast<std::size_t>(m.nnz()));
  for (const auto& t : m.to_triples()) {
    triples.push_back({row_pos[static_cast<std::size_t>(t.row)],
                       col_pos[static_cast<std::size_t>(t.col)], t.val});
  }
  return SpMat<double>::from_triples(static_cast<Index>(new_rows.size()),
                                     static_cast<Index>(new_cols.size()),
                                     std::move(triples));
}

}  // namespace

std::vector<std::string> key_union(const std::vector<std::string>& a,
                                   const std::vector<std::string>& b) {
  std::vector<std::string> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<std::string> key_intersection(const std::vector<std::string>& a,
                                          const std::vector<std::string>& b) {
  std::vector<std::string> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

AssocArray AssocArray::from_entries(
    std::vector<Entry> entries, std::function<double(double, double)> combine) {
  if (!combine) combine = [](double a, double b) { return a + b; };
  std::vector<std::string> rows, cols;
  rows.reserve(entries.size());
  cols.reserve(entries.size());
  for (const auto& e : entries) {
    rows.push_back(e.row);
    cols.push_back(e.col);
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());

  std::vector<Triple<double>> triples;
  triples.reserve(entries.size());
  for (const auto& e : entries) {
    triples.push_back({*find_key(rows, e.row), *find_key(cols, e.col), e.val});
  }
  AssocArray a;
  a.row_keys_ = std::move(rows);
  a.col_keys_ = std::move(cols);
  a.matrix_ = SpMat<double>::from_triples(
      static_cast<Index>(a.row_keys_.size()),
      static_cast<Index>(a.col_keys_.size()), std::move(triples), combine);
  return a;
}

AssocArray AssocArray::from_matrix(std::vector<std::string> row_keys,
                                   std::vector<std::string> col_keys,
                                   SpMat<double> matrix) {
  if (static_cast<Index>(row_keys.size()) != matrix.rows() ||
      static_cast<Index>(col_keys.size()) != matrix.cols()) {
    throw std::invalid_argument("AssocArray::from_matrix: dictionary size");
  }
  if (!std::is_sorted(row_keys.begin(), row_keys.end()) ||
      std::adjacent_find(row_keys.begin(), row_keys.end()) != row_keys.end() ||
      !std::is_sorted(col_keys.begin(), col_keys.end()) ||
      std::adjacent_find(col_keys.begin(), col_keys.end()) != col_keys.end()) {
    throw std::invalid_argument(
        "AssocArray::from_matrix: keys must be sorted and distinct");
  }
  AssocArray a;
  a.row_keys_ = std::move(row_keys);
  a.col_keys_ = std::move(col_keys);
  a.matrix_ = std::move(matrix);
  return a;
}

double AssocArray::at(const std::string& row, const std::string& col) const {
  const auto r = find_key(row_keys_, row);
  const auto c = find_key(col_keys_, col);
  if (!r || !c) return 0.0;
  return matrix_.at(*r, *c);
}

std::optional<Index> AssocArray::row_index(const std::string& key) const {
  return find_key(row_keys_, key);
}

std::optional<Index> AssocArray::col_index(const std::string& key) const {
  return find_key(col_keys_, key);
}

std::vector<Entry> AssocArray::entries() const {
  std::vector<Entry> out;
  out.reserve(static_cast<std::size_t>(matrix_.nnz()));
  for (const auto& t : matrix_.to_triples()) {
    out.push_back({row_keys_[static_cast<std::size_t>(t.row)],
                   col_keys_[static_cast<std::size_t>(t.col)], t.val});
  }
  return out;
}

AssocArray AssocArray::add(const AssocArray& other) const {
  const auto rows = key_union(row_keys_, other.row_keys_);
  const auto cols = key_union(col_keys_, other.col_keys_);
  auto a = embed(matrix_, row_keys_, col_keys_, rows, cols);
  auto b = embed(other.matrix_, other.row_keys_, other.col_keys_, rows, cols);
  return from_matrix(rows, cols, la::add(a, b)).condensed();
}

AssocArray AssocArray::ewise_mult(const AssocArray& other) const {
  const auto rows = key_intersection(row_keys_, other.row_keys_);
  const auto cols = key_intersection(col_keys_, other.col_keys_);
  // Project both onto the shared dictionaries, then intersect patterns.
  auto pick = [&](const AssocArray& src) {
    std::vector<Index> row_idx, col_idx;
    for (const auto& k : rows) row_idx.push_back(*find_key(src.row_keys_, k));
    for (const auto& k : cols) col_idx.push_back(*find_key(src.col_keys_, k));
    return la::spref(src.matrix_, row_idx, col_idx);
  };
  if (rows.empty() || cols.empty()) return AssocArray{};
  auto product = la::hadamard(pick(*this), pick(other));
  return from_matrix(rows, cols, std::move(product)).condensed();
}

AssocArray AssocArray::multiply(const AssocArray& other) const {
  // Inner dictionary: union of A's column keys and B's row keys, so that
  // matching keys align (non-matching keys contribute nothing).
  const auto inner = key_union(col_keys_, other.row_keys_);
  auto a = embed(matrix_, row_keys_, col_keys_, row_keys_, inner);
  auto b = embed(other.matrix_, other.row_keys_, other.col_keys_, inner,
                 other.col_keys_);
  auto c = la::spgemm<la::PlusTimes<double>>(a, b);
  return from_matrix(row_keys_, other.col_keys_, std::move(c)).condensed();
}

AssocArray AssocArray::transposed() const {
  AssocArray t;
  t.row_keys_ = col_keys_;
  t.col_keys_ = row_keys_;
  t.matrix_ = la::transpose(matrix_);
  return t;
}

AssocArray AssocArray::apply(const std::function<double(double)>& fn) const {
  return from_matrix(row_keys_, col_keys_, la::apply(matrix_, fn)).condensed();
}

AssocArray AssocArray::scale(double alpha) const {
  return from_matrix(row_keys_, col_keys_, la::scale(matrix_, alpha))
      .condensed();
}

AssocArray AssocArray::select_rows(const std::vector<std::string>& keys) const {
  std::vector<std::string> present;
  for (const auto& k : keys) {
    if (find_key(row_keys_, k)) present.push_back(k);
  }
  std::sort(present.begin(), present.end());
  present.erase(std::unique(present.begin(), present.end()), present.end());
  std::vector<Index> idx;
  for (const auto& k : present) idx.push_back(*find_key(row_keys_, k));
  return from_matrix(present, col_keys_, la::spref_rows(matrix_, idx))
      .condensed();
}

AssocArray AssocArray::select_cols(const std::vector<std::string>& keys) const {
  return transposed().select_rows(keys).transposed();
}

AssocArray AssocArray::select_row_range(const std::string& lo,
                                        const std::string& hi) const {
  std::vector<std::string> keys;
  for (const auto& k : row_keys_) {
    if (k >= lo && k <= hi) keys.push_back(k);
  }
  return select_rows(keys);
}

AssocArray AssocArray::select_row_prefix(const std::string& prefix) const {
  std::vector<std::string> keys;
  for (const auto& k : row_keys_) {
    if (k.compare(0, prefix.size(), prefix) == 0) keys.push_back(k);
  }
  return select_rows(keys);
}

std::vector<std::pair<std::string, double>> AssocArray::row_sums() const {
  const auto sums = la::row_sums(matrix_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(row_keys_.size());
  for (std::size_t i = 0; i < row_keys_.size(); ++i) {
    out.emplace_back(row_keys_[i], sums[i]);
  }
  return out;
}

std::vector<std::pair<std::string, double>> AssocArray::col_sums() const {
  const auto sums = la::col_sums(matrix_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(col_keys_.size());
  for (std::size_t i = 0; i < col_keys_.size(); ++i) {
    out.emplace_back(col_keys_[i], sums[i]);
  }
  return out;
}

AssocArray AssocArray::condensed() const {
  std::vector<char> row_used(row_keys_.size(), 0);
  std::vector<char> col_used(col_keys_.size(), 0);
  for (const auto& t : matrix_.to_triples()) {
    row_used[static_cast<std::size_t>(t.row)] = 1;
    col_used[static_cast<std::size_t>(t.col)] = 1;
  }
  if (std::all_of(row_used.begin(), row_used.end(), [](char c) { return c; }) &&
      std::all_of(col_used.begin(), col_used.end(), [](char c) { return c; })) {
    return *this;
  }
  std::vector<std::string> rows, cols;
  std::vector<Index> row_map(row_keys_.size(), -1), col_map(col_keys_.size(), -1);
  for (std::size_t i = 0; i < row_keys_.size(); ++i) {
    if (row_used[i]) {
      row_map[i] = static_cast<Index>(rows.size());
      rows.push_back(row_keys_[i]);
    }
  }
  for (std::size_t j = 0; j < col_keys_.size(); ++j) {
    if (col_used[j]) {
      col_map[j] = static_cast<Index>(cols.size());
      cols.push_back(col_keys_[j]);
    }
  }
  std::vector<Triple<double>> triples;
  for (const auto& t : matrix_.to_triples()) {
    triples.push_back({row_map[static_cast<std::size_t>(t.row)],
                       col_map[static_cast<std::size_t>(t.col)], t.val});
  }
  AssocArray out;
  out.row_keys_ = std::move(rows);
  out.col_keys_ = std::move(cols);
  out.matrix_ = SpMat<double>::from_triples(
      static_cast<Index>(out.row_keys_.size()),
      static_cast<Index>(out.col_keys_.size()), std::move(triples));
  return out;
}

std::string AssocArray::to_string() const {
  std::ostringstream out;
  out << "AssocArray " << row_count() << "x" << col_count() << " (" << nnz()
      << " entries)\n";
  for (const auto& e : entries()) {
    out << "  (" << e.row << ", " << e.col << ") = " << e.val << '\n';
  }
  return out.str();
}

}  // namespace graphulo::assoc
