#pragma once
// Graph schemas (Section II-B): adjacency matrix, incidence matrix, and
// the D4M 2.0 exploded schema (Tedge, TedgeT, Tdeg, Traw), built as
// associative arrays from raw data.

#include <map>
#include <string>
#include <vector>

#include "assoc/assoc_array.hpp"
#include "gen/tweets.hpp"

namespace graphulo::assoc {

/// A labeled weighted edge for schema construction.
struct LabeledEdge {
  std::string src;
  std::string dst;
  double weight = 1.0;
};

/// Adjacency-matrix schema: rows/columns are vertices, values weighted
/// edge multiplicities; A(i,j) = sum of weights of edges i -> j
/// (Section II-B-1). `undirected` mirrors each edge.
AssocArray adjacency_schema(const std::vector<LabeledEdge>& edges,
                            bool undirected = false);

/// Incidence-matrix schema (Section II-B-2): rows are edges (keys
/// "e|<n>"), columns vertices. Oriented form stores +w at the head and
/// -w at the tail; the unoriented form (used by the k-truss algorithm)
/// stores +w at both endpoints. Self loops keep a single +w entry.
AssocArray incidence_schema(const std::vector<LabeledEdge>& edges,
                            bool oriented = false);

/// A raw record for the D4M exploded schema: field name -> value.
using Record = std::map<std::string, std::string>;

/// The four-array D4M 2.0 representation (Section II-B-3).
struct D4MTables {
  AssocArray tedge;    ///< record x "field|value" incidence
  AssocArray tedge_t;  ///< transpose of tedge
  AssocArray tdeg;     ///< "field|value" x "deg": column degree counts
  AssocArray traw;     ///< record x field: original values kept as text?
                       ///< stored as 1s; raw text lives in raw_values
  /// Raw field text per (record, field) — the Traw payload (values are
  /// strings, which AssocArray's numeric values cannot carry).
  std::vector<std::pair<std::pair<std::string, std::string>, std::string>>
      raw_values;
};

/// Explodes records into the D4M schema: each (field, value) pair of a
/// record becomes a column "field|value" with value 1 in the record's
/// row. Tdeg counts how many records carry each exploded column.
D4MTables d4m_explode(const std::vector<std::pair<std::string, Record>>& records);

/// Term-document incidence of a tweet corpus under the D4M convention:
/// rows are tweet ids, columns "word|<token>", values term counts.
/// This is the matrix Fig. 3's NMF factors.
AssocArray tweets_to_incidence(const gen::TweetCorpus& corpus);

/// The standard D4M degree-filter idiom: drop columns whose degree
/// (count of records carrying them) falls outside [min_degree,
/// max_degree]. With Tdeg in hand this is how D4M pipelines strip
/// stop words (too common) and hapaxes (too rare) before correlation
/// or factorization. max_degree <= 0 means unbounded above.
AssocArray filter_cols_by_degree(const AssocArray& array, double min_degree,
                                 double max_degree);

}  // namespace graphulo::assoc
