#include "assoc/table_io.hpp"

#include <stdexcept>

#include "nosql/batch_writer.hpp"
#include "nosql/codec.hpp"
#include "nosql/scanner.hpp"
#include "util/strings.hpp"

namespace graphulo::assoc {

namespace {
constexpr int kVertexKeyWidth = 7;
constexpr const char* kVertexPrefix = "v|";
}  // namespace

std::size_t write_assoc(nosql::Instance& db, const std::string& table,
                        const AssocArray& array) {
  if (!db.table_exists(table)) db.create_table(table);
  nosql::BatchWriter writer(db, table);
  std::size_t written = 0;
  for (const auto& e : array.entries()) {
    nosql::Mutation m(e.row);
    m.put(kValueFamily, e.col, nosql::encode_double(e.val));
    writer.add_mutation(std::move(m));
    ++written;
  }
  writer.flush();
  return written;
}

AssocArray read_assoc(nosql::Instance& db, const std::string& table,
                      const nosql::Range& range) {
  std::vector<Entry> entries;
  nosql::Scanner scanner(db, table);
  scanner.set_range(range);
  scanner.for_each([&entries](const nosql::Key& k, const nosql::Value& v) {
    const auto value = nosql::decode_double(v);
    if (value) entries.push_back({k.row, k.qualifier, *value});
  });
  // Last write wins: the store's versioning already collapsed versions,
  // so plain summation would double-count only if versioning were off;
  // entries here are unique per (row, qualifier).
  return AssocArray::from_entries(std::move(entries));
}

std::string vertex_key(la::Index i) {
  if (i < 0) throw std::invalid_argument("vertex_key: negative index");
  return kVertexPrefix + util::zero_pad(static_cast<std::uint64_t>(i),
                                        kVertexKeyWidth);
}

la::Index parse_vertex_key(const std::string& key) {
  if (!util::starts_with(key, kVertexPrefix)) return -1;
  la::Index value = 0;
  for (std::size_t i = 2; i < key.size(); ++i) {
    const char c = key[i];
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
  }
  return key.size() > 2 ? value : -1;
}

std::size_t write_matrix(nosql::Instance& db, const std::string& table,
                         const la::SpMat<double>& m) {
  if (!db.table_exists(table)) db.create_table(table);
  nosql::BatchWriter writer(db, table);
  std::size_t written = 0;
  for (la::Index i = 0; i < m.rows(); ++i) {
    const auto cols = m.row_cols(i);
    const auto vals = m.row_vals(i);
    if (cols.empty()) continue;
    nosql::Mutation mut(vertex_key(i));
    for (std::size_t p = 0; p < cols.size(); ++p) {
      mut.put(kValueFamily, vertex_key(cols[p]), nosql::encode_double(vals[p]));
    }
    writer.add_mutation(std::move(mut));
    ++written;
  }
  writer.flush();
  return written;
}

la::SpMat<double> read_matrix(nosql::Instance& db, const std::string& table,
                              la::Index rows, la::Index cols) {
  std::vector<la::Triple<double>> triples;
  nosql::Scanner scanner(db, table);
  scanner.for_each([&](const nosql::Key& k, const nosql::Value& v) {
    const la::Index i = parse_vertex_key(k.row);
    const la::Index j = parse_vertex_key(k.qualifier);
    const auto value = nosql::decode_double(v);
    if (i < 0 || j < 0 || !value) return;  // foreign cells are skipped
    if (i >= rows || j >= cols) {
      throw std::out_of_range("read_matrix: key outside requested shape");
    }
    triples.push_back({i, j, *value});
  });
  return la::SpMat<double>::from_triples(rows, cols, std::move(triples));
}

}  // namespace graphulo::assoc
