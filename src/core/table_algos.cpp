#include "core/table_algos.hpp"

#include <cmath>
#include <mutex>
#include <set>

#include "core/table_ops.hpp"
#include "core/table_scan.hpp"
#include "core/tablemult.hpp"
#include "nosql/batch_writer.hpp"
#include "nosql/codec.hpp"
#include "nosql/scanner.hpp"

namespace graphulo::core {

using nosql::decode_double;
using nosql::encode_double;

std::map<std::string, int> adj_bfs(nosql::Instance& db,
                                   const std::string& adj_table,
                                   const std::vector<std::string>& seeds,
                                   int max_hops) {
  std::map<std::string, int> level;
  std::set<std::string> frontier(seeds.begin(), seeds.end());
  for (const auto& s : frontier) level[s] = 0;

  for (int hop = 1; hop <= max_hops && !frontier.empty(); ++hop) {
    // One batched scan over all frontier rows.
    std::vector<nosql::Range> ranges;
    ranges.reserve(frontier.size());
    for (const auto& v : frontier) ranges.push_back(nosql::Range::exact_row(v));
    std::set<std::string> next;
    std::mutex next_mutex;
    nosql::BatchScanner scanner(db, adj_table);
    scanner.set_ranges(std::move(ranges));
    scanner.for_each([&](const nosql::Key& k, const nosql::Value&) {
      std::lock_guard lock(next_mutex);
      next.insert(k.qualifier);
    });
    frontier.clear();
    for (const auto& v : next) {
      if (level.emplace(v, hop).second) frontier.insert(v);
    }
  }
  return level;
}

std::size_t table_jaccard(nosql::Instance& db, const std::string& adj_table,
                          const std::string& out_table) {
  const std::string common = out_table + "__common";
  const std::string degrees = out_table + "__deg";
  // Common-neighbor counts: A is symmetric, so A^T * A(i,j) counts the
  // shared neighbors k of i and j.
  table_mult(db, adj_table, adj_table, common, {.compact_result = true});
  table_row_degrees(db, adj_table, degrees);

  // Load degrees (one cell per vertex).
  std::map<std::string, double> degree;
  nosql::Scanner deg_scan(db, degrees);
  deg_scan.for_each([&degree](const nosql::Key& k, const nosql::Value& v) {
    if (const auto d = decode_double(v)) degree[k.row] = *d;
  });

  if (!db.table_exists(out_table)) db.create_table(out_table);
  nosql::BatchWriter writer(db, out_table);
  std::size_t written = 0;
  nosql::Scanner scan(db, common);
  scan.for_each([&](const nosql::Key& k, const nosql::Value& v) {
    if (!(k.row < k.qualifier)) return;  // strict upper triangle only
    const auto c = decode_double(v);
    if (!c || *c == 0.0) return;
    const double di = degree.count(k.row) ? degree[k.row] : 0.0;
    const double dj = degree.count(k.qualifier) ? degree[k.qualifier] : 0.0;
    const double denom = di + dj - *c;
    if (denom <= 0.0) return;
    nosql::Mutation m(k.row);
    m.put("", k.qualifier, encode_double(*c / denom));
    writer.add_mutation(std::move(m));
    ++written;
  });
  writer.flush();
  db.delete_table(common);
  db.delete_table(degrees);
  return written;
}

std::size_t table_ktruss(nosql::Instance& db, const std::string& adj_table,
                         int k, const std::string& out_table) {
  // Working copy of the adjacency (0/1 values).
  if (db.table_exists(out_table)) db.delete_table(out_table);
  db.create_table(out_table);
  {
    nosql::BatchWriter writer(db, out_table);
    RowReader reader(open_table_scan(db, adj_table));
    while (reader.has_next()) {
      auto block = reader.next_row();
      nosql::Mutation m(block.row);
      for (const auto& cell : block.cells) {
        if (cell.key.row == cell.key.qualifier) continue;  // drop loops
        m.put(cell.key.family, cell.key.qualifier, encode_double(1.0));
      }
      if (!m.updates().empty()) writer.add_mutation(std::move(m));
    }
    writer.flush();
  }

  const double min_support = static_cast<double>(k - 2);
  for (int round = 0;; ++round) {
    const std::size_t edges_before = table_entry_count(db, out_table);
    if (edges_before == 0) break;

    // Support per existing edge: S = A .* (A^T A). The TableMult output
    // counts common neighbors; intersecting with A restricts to edges.
    const std::string common = out_table + "__sq";
    const std::string support = out_table + "__sup";
    table_mult(db, out_table, out_table, common, {.compact_result = true});
    table_ewise_mult(db, out_table, common, support);

    // Rebuild the adjacency from edges whose support meets the bound.
    std::vector<std::pair<std::string, std::string>> keep;
    nosql::Scanner scan(db, support);
    scan.for_each([&](const nosql::Key& key, const nosql::Value& v) {
      const auto c = decode_double(v);
      if (c && *c >= min_support) keep.emplace_back(key.row, key.qualifier);
    });
    db.delete_table(common);
    db.delete_table(support);

    db.delete_table(out_table);
    db.create_table(out_table);
    {
      nosql::BatchWriter writer(db, out_table);
      for (const auto& [r, q] : keep) {
        nosql::Mutation m(r);
        m.put("", q, encode_double(1.0));
        writer.add_mutation(std::move(m));
      }
      writer.flush();
    }
    if (keep.size() == edges_before) break;  // fixpoint
  }
  return table_entry_count(db, out_table);
}

std::map<std::string, double> table_pagerank(nosql::Instance& db,
                                             const std::string& adj_table,
                                             double alpha, int iterations) {
  // Vertex universe and out-degrees from one degree pass + one scan of
  // the adjacency table's qualifiers (sinks appear only as qualifiers).
  std::map<std::string, double> degree;
  {
    const std::string deg_table = adj_table + "__prdeg";
    table_row_degrees(db, adj_table, deg_table);
    nosql::Scanner scan(db, deg_table);
    scan.for_each([&degree](const nosql::Key& k, const nosql::Value& v) {
      if (const auto d = decode_double(v)) degree[k.row] = *d;
    });
    db.delete_table(deg_table);
  }
  {
    nosql::Scanner scan(db, adj_table);
    scan.for_each([&degree](const nosql::Key& k, const nosql::Value&) {
      degree.emplace(k.qualifier, 0.0);  // sinks get degree 0
    });
  }
  const auto n = degree.size();
  std::map<std::string, double> x;
  if (n == 0) return x;
  for (const auto& [key, d] : degree) {
    x[key] = 1.0 / static_cast<double>(n);
  }

  const std::string x_table = adj_table + "__prx";
  const std::string y_table = adj_table + "__pry";
  for (int it = 0; it < iterations; ++it) {
    // Write the scaled frontier x/d as a one-column table.
    if (db.table_exists(x_table)) db.delete_table(x_table);
    db.create_table(x_table);
    double dangling = 0.0;
    {
      nosql::BatchWriter writer(db, x_table);
      for (const auto& [key, value] : x) {
        const double d = degree[key];
        if (d == 0.0) {
          dangling += value;
          continue;
        }
        nosql::Mutation m(key);
        m.put("", "rank", encode_double(value / d));
        writer.add_mutation(std::move(m));
      }
    }
    // One server-side TableMult: y(j) = sum_i A(i, j) * (x/d)(i).
    if (db.table_exists(y_table)) db.delete_table(y_table);
    table_mult(db, adj_table, x_table, y_table);
    std::map<std::string, double> y;
    {
      nosql::Scanner scan(db, y_table);
      scan.for_each([&y](const nosql::Key& k, const nosql::Value& v) {
        if (const auto d = decode_double(v)) y[k.row] = *d;
      });
    }
    // Client-side O(n) glue: damping + dangling redistribution.
    const double uniform =
        alpha / static_cast<double>(n) +
        (1.0 - alpha) * dangling / static_cast<double>(n);
    double total = 0.0;
    for (auto& [key, value] : x) {
      value = (1.0 - alpha) * (y.count(key) ? y[key] : 0.0) + uniform;
      total += value;
    }
    for (auto& [key, value] : x) value /= total;
  }
  if (db.table_exists(x_table)) db.delete_table(x_table);
  if (db.table_exists(y_table)) db.delete_table(y_table);
  return x;
}

std::size_t table_entry_count(nosql::Instance& db, const std::string& table) {
  std::size_t count = 0;
  nosql::Scanner scan(db, table);
  scan.for_each([&count](const nosql::Key&, const nosql::Value&) { ++count; });
  return count;
}

std::uint64_t table_triangle_count_masked(nosql::Instance& db,
                                          const std::string& adj_table,
                                          TableMultStats* stats) {
  // One fused kernel: A read as U twice (scan filters), masked by A
  // read as L (mask filter), partial products folded in the workers.
  // sum(L .* (U^T·U)) = sum(L .* (L·U)) = triangles, each once.
  TableMultOptions options;
  options.row_filter = strict_upper_filter();
  options.col_filter = strict_upper_filter();
  options.mask_table = adj_table;
  options.mask_filter = strict_lower_filter();
  const auto reduced = table_mult_reduce(db, adj_table, adj_table, options);
  if (stats) *stats = reduced.stats;
  return static_cast<std::uint64_t>(std::llround(reduced.total));
}

std::uint64_t table_triangle_count_trace(nosql::Instance& db,
                                         const std::string& adj_table,
                                         TableMultStats* stats) {
  const std::string wedges = adj_table + "__tri_w";
  const std::string closed = adj_table + "__tri_c";
  if (db.table_exists(wedges)) db.delete_table(wedges);
  if (db.table_exists(closed)) db.delete_table(closed);
  // Every open wedge i-k-j becomes a partial product of W = A^T·A; the
  // unmasked emission count in `stats` is the cost the masked
  // formulation prunes.
  const auto s =
      table_mult(db, adj_table, adj_table, wedges, {.compact_result = true});
  if (stats) *stats = s;
  table_ewise_mult(db, wedges, adj_table, closed);
  const double trace = table_sum(db, closed);  // = trace(A^3)
  db.delete_table(wedges);
  db.delete_table(closed);
  return static_cast<std::uint64_t>(std::llround(trace / 6.0));
}

std::uint64_t table_triangle_count_incidence(nosql::Instance& db,
                                             const std::string& adj_table) {
  const std::string et_table = adj_table + "__tri_et";
  const std::string r_table = adj_table + "__tri_r";
  if (db.table_exists(et_table)) db.delete_table(et_table);
  if (db.table_exists(r_table)) db.delete_table(r_table);
  // Transposed unoriented incidence: row = vertex, qualifier = edge key
  // "u#v" (upper-triangle order gives one edge per undirected pair).
  // The transpose is what makes the next join cheap: TableMult joins on
  // the ROW dimension, which must be the shared vertex axis.
  db.create_table(et_table);
  {
    nosql::BatchWriter writer(db, et_table);
    RowReader reader(open_table_scan(db, adj_table));
    reader.set_cell_filter(strict_upper_filter());
    while (reader.has_next()) {
      const auto block = reader.next_row();
      for (const auto& cell : block.cells) {
        const std::string edge = block.row + "#" + cell.key.qualifier;
        nosql::Mutation mu(block.row);
        mu.put("", edge, encode_double(1.0));
        writer.add_mutation(std::move(mu));
        nosql::Mutation mv(cell.key.qualifier);
        mv.put("", edge, encode_double(1.0));
        writer.add_mutation(std::move(mv));
      }
    }
    writer.flush();
  }
  // R = E·A via TableMult's row join: R(e, w) counts endpoints of e
  // adjacent to w. An entry of exactly 2 closes a triangle over edge e
  // and apex w; each triangle produces one per edge, hence / 3. This is
  // precisely how Algorithm 1 reads k-truss edge support off E·A.
  table_mult(db, et_table, adj_table, r_table, {.compact_result = true});
  std::size_t twos = 0;
  nosql::Scanner scan(db, r_table);
  scan.for_each([&twos](const nosql::Key&, const nosql::Value& v) {
    const auto d = decode_double(v);
    if (d && *d == 2.0) ++twos;
  });
  db.delete_table(et_table);
  db.delete_table(r_table);
  return static_cast<std::uint64_t>(twos / 3);
}

}  // namespace graphulo::core
