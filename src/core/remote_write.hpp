#pragma once
// RemoteWriteIterator — the real Graphulo's signature trick: an iterator
// at the TOP of a server-side scan stack that *writes* every cell it
// sees into another table instead of (only) returning it to the client.
// Composing it over filters/transforms turns a single scan into a
// server-side ETL step: the data never crosses the client boundary.

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "nosql/batch_writer.hpp"
#include "nosql/instance.hpp"
#include "nosql/iterator.hpp"

namespace graphulo::core {

/// Wraps `source`; every cell that passes through is also written to
/// `target_table` (created if missing). The stream itself is unchanged,
/// so the client still sees the scan results (Graphulo uses the returned
/// count as a progress monitor).
class RemoteWriteIterator : public nosql::WrappingIterator {
 public:
  RemoteWriteIterator(nosql::IterPtr source, nosql::Instance& db,
                      std::string target_table);

  /// Routes the stream into an arbitrary MutationSink instead of a
  /// local BatchWriter — with a distributed::Cluster writer as the
  /// sink, a local scan's output lands on whichever tablet servers own
  /// the target rows.
  RemoteWriteIterator(nosql::IterPtr source,
                      std::unique_ptr<nosql::MutationSink> sink);

  /// Flushes the underlying writer unless close() ran; a failure at
  /// destruction time is logged as a warning (call close() to observe
  /// it as an exception).
  ~RemoteWriteIterator() override;

  void seek(const nosql::Range& range) override;
  void next() override;

  /// Final flush of the underlying writer; throws on failure (also
  /// recorded in last_error()). Idempotent.
  void close();

  /// The last flush error the underlying writer recorded, if any.
  const std::optional<std::string>& last_error() const noexcept {
    return sink_->last_error();
  }

  /// Cells written so far.
  std::size_t cells_written() const noexcept { return written_; }

 private:
  void write_top();

  std::unique_ptr<nosql::MutationSink> sink_;
  std::size_t written_ = 0;
};

/// One-scan server-side copy: every cell of `source_table` within
/// `range` that satisfies `keep` (key, decoded numeric value or NaN) is
/// written into `target_table`. Returns cells copied. This is the
/// RemoteWrite pattern packaged as an operation.
std::size_t table_copy_filtered(
    nosql::Instance& db, const std::string& source_table,
    const std::string& target_table,
    const std::function<bool(const nosql::Key&, double)>& keep,
    const nosql::Range& range = nosql::Range::all());

}  // namespace graphulo::core
