#pragma once
// Table-scope GraphBLAS kernels: Apply, Scale, Reduce, SpEWiseX and
// filtering executed against tables through the iterator machinery
// (attach at compaction scope -> compact -> detach for in-place
// rewrites; per-tablet scans for reductions). These are the Graphulo
// counterparts of the kernels Section III composes.

#include <functional>
#include <optional>
#include <string>

#include "nosql/instance.hpp"

namespace graphulo::core {

/// Applies `fn` to every numeric cell value of `table`, in place: the
/// transform runs as a major-compaction iterator, so the rewrite happens
/// server-side in one pass. Non-numeric values pass through unchanged.
void table_apply(nosql::Instance& db, const std::string& table,
                 const std::function<double(double)>& fn);

/// Scale: multiply every numeric value by `alpha` (SpEWiseX with a
/// scalar), in place.
void table_scale(nosql::Instance& db, const std::string& table, double alpha);

/// Deletes cells for which `keep` returns false, in place (compaction
/// filter). The predicate sees the key and the decoded value (NaN when
/// not numeric).
void table_filter(nosql::Instance& db, const std::string& table,
                  const std::function<bool(const nosql::Key&, double)>& keep);

/// Reduce over all numeric values: per-tablet partial folds (the
/// "server-side" part), folded together client-side. Returns `init`
/// for an empty table.
double table_reduce(nosql::Instance& db, const std::string& table,
                    const std::function<double(double, double)>& op,
                    double init);

/// Sum of all numeric values.
double table_sum(nosql::Instance& db, const std::string& table);

/// Row degrees: writes one cell per row of `table` into `out_table`
/// (row -> family "deg", qualifier "deg", value = sum of the row's
/// numeric values or its cell count). Equivalent to the D4M Tdeg array.
void table_row_degrees(nosql::Instance& db, const std::string& table,
                       const std::string& out_table, bool count_cells = false);

/// SpEWiseX on tables: C = A .* B over the cell-key intersection
/// (row, qualifier), values multiplied with `multiply`. C is created
/// as a fresh plain table (existing C must not exist).
std::size_t table_ewise_mult(
    nosql::Instance& db, const std::string& table_a, const std::string& table_b,
    const std::string& table_c,
    const std::function<double(double, double)>& multiply =
        [](double a, double b) { return a * b; });

}  // namespace graphulo::core
