#include "core/data_plane.hpp"

#include <map>

#include "core/table_scan.hpp"
#include "core/tablemult.hpp"
#include "nosql/batch_writer.hpp"
#include "nosql/instance.hpp"
#include "nosql/snapshot.hpp"

namespace graphulo::core {

namespace {

/// Live-or-snapshot read view over one Instance. With snapshot
/// isolation each named table is pinned once at construction (aliases
/// share the pin); without it open_scan reads the live table.
class LocalReadView : public TableMultDataPlane::ReadView {
 public:
  LocalReadView(nosql::Instance& db, const std::vector<std::string>& tables,
                bool snapshot_isolation)
      : db_(db) {
    if (!snapshot_isolation) return;
    for (const auto& table : tables) {
      if (snapshots_.count(table) == 0) {
        snapshots_.emplace(table, db_.open_snapshot(table));
      }
    }
  }

  nosql::IterPtr open_scan(const std::string& table,
                           const nosql::Range& range) override {
    const auto it = snapshots_.find(table);
    if (it != snapshots_.end()) return open_table_scan(*it->second, range);
    return open_table_scan(db_, table, range);
  }

 private:
  nosql::Instance& db_;
  std::map<std::string, std::shared_ptr<const nosql::Snapshot>> snapshots_;
};

class LocalWriteSession : public TableMultDataPlane::WriteSession {
 public:
  LocalWriteSession(nosql::Instance& db, std::string table)
      : db_(db), table_(std::move(table)) {}

  std::unique_ptr<nosql::MutationSink> open_writer(
      std::size_t /*partition*/) override {
    return std::make_unique<nosql::BatchWriter>(db_, table_);
  }

  bool exactly_once() const noexcept override { return false; }

 private:
  nosql::Instance& db_;
  std::string table_;
};

}  // namespace

bool LocalDataPlane::table_exists(const std::string& table) {
  return db_.table_exists(table);
}

void LocalDataPlane::ensure_table(const std::string& table,
                                  bool sum_combiner) {
  if (sum_combiner) {
    create_sum_table(db_, table);
  } else if (!db_.table_exists(table)) {
    db_.create_table(table);
  }
}

std::unique_ptr<TableMultDataPlane::ReadView> LocalDataPlane::open_read_view(
    const std::vector<std::string>& tables, bool snapshot_isolation) {
  return std::make_unique<LocalReadView>(db_, tables, snapshot_isolation);
}

std::unique_ptr<TableMultDataPlane::WriteSession>
LocalDataPlane::open_write_session(const std::string& table) {
  return std::make_unique<LocalWriteSession>(db_, table);
}

std::vector<std::string> LocalDataPlane::partition_rows(
    const std::string& table, std::size_t pieces) {
  return db_.partition_rows(table, pieces);
}

void LocalDataPlane::compact(const std::string& table) { db_.compact(table); }

util::RetryPolicy LocalDataPlane::retry_policy() const {
  return db_.retry_policy();
}

}  // namespace graphulo::core
