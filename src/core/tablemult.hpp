#pragma once
// TableMult: sparse matrix multiply executed INSIDE the database — the
// headline Graphulo operation the paper's Section I-A/IV anticipates
// ("use various Accumulo features, such as the Accumulo iterator
// framework ... and perform batch operations").
//
// Semantics: C(i, j) (+)= sum_k A(k, i) (x) B(k, j), i.e. C += A^T * B,
// where A and B are tables under the D4M matrix convention (row = row
// key, qualifier = column key, value = encoded double). The transpose
// form is forced by the storage: tables are row-sorted, so the only
// cheap join is over the shared ROW dimension k — a row-aligned merge
// join of the two tables' sorted streams (the real Graphulo's
// TwoTableIterator does exactly this). Partial products are written to
// C through a BatchWriter; a (+)-combiner attached to C at scan and
// compaction scope makes the table itself perform the reduction.
//
// The client-side baseline (read A and B out, SpGEMM locally, write C
// back) is provided for the bench_tablemult ablation.

#include <functional>
#include <string>

#include "la/spmat.hpp"
#include "nosql/instance.hpp"

namespace graphulo::core {

/// Options for table_mult().
struct TableMultOptions {
  /// The (x) of the semiring; defaults to ordinary multiplication.
  std::function<double(double, double)> multiply =
      [](double a, double b) { return a * b; };
  /// Attach a summing combiner (+ of the plus-times semiring) to C at
  /// all scopes if C does not exist yet. Set false when the caller
  /// configured C manually (e.g. a min-combiner for tropical products).
  bool configure_result_table = true;
  /// Compact C after the multiply so the partial products are physically
  /// collapsed (otherwise they collapse lazily at scan/compaction time).
  bool compact_result = false;
};

/// Statistics from one table_mult() run.
struct TableMultStats {
  std::size_t rows_joined = 0;        ///< shared row keys of A and B
  std::size_t partial_products = 0;   ///< cells written to C
  double seconds = 0.0;
};

/// C += A^T * B, all three named tables of `db`. Creates C when missing
/// (with a summing combiner per options). Returns run statistics.
TableMultStats table_mult(nosql::Instance& db, const std::string& table_a,
                          const std::string& table_b,
                          const std::string& table_c,
                          const TableMultOptions& options = {});

/// Client-side baseline: scans A and B into local sparse matrices of
/// shape (`rows` x `cols_a`) / (`rows` x `cols_b`), multiplies with
/// SpGEMM, writes the full result back to C. Matches table_mult()'s
/// output exactly; exists to quantify the round-trip the server-side
/// path avoids.
TableMultStats client_side_mult(nosql::Instance& db, const std::string& table_a,
                                const std::string& table_b,
                                const std::string& table_c, la::Index rows,
                                la::Index cols_a, la::Index cols_b);

/// Creates `table` configured as a TableMult result sink: versioning
/// off, summing combiner at every scope. No-op if it already exists.
void create_sum_table(nosql::Instance& db, const std::string& table);

}  // namespace graphulo::core
