#pragma once
// TableMult: sparse matrix multiply executed INSIDE the database — the
// headline Graphulo operation the paper's Section I-A/IV anticipates
// ("use various Accumulo features, such as the Accumulo iterator
// framework ... and perform batch operations").
//
// Semantics: C(i, j) (+)= sum_k A(k, i) (x) B(k, j), i.e. C += A^T * B,
// where A and B are tables under the D4M matrix convention (row = row
// key, qualifier = column key, value = encoded double). The transpose
// form is forced by the storage: tables are row-sorted, so the only
// cheap join is over the shared ROW dimension k — a row-aligned merge
// join of the two tables' sorted streams (the real Graphulo's
// TwoTableIterator does exactly this). Partial products are written to
// C through a BatchWriter; a (+)-combiner attached to C at scan and
// compaction scope makes the table itself perform the reduction.
//
// Execution is a partitioned pipeline: the shared row dimension k is cut
// into contiguous row ranges at the tablet split points of A (refined by
// sampled row keys when A is a single tablet), and each partition runs
// the merge join independently on a worker thread with its own pair of
// scans and its own BatchWriter. No cross-worker coordination is needed
// beyond the final flush barrier: distinct k-partitions contribute
// disjoint partial-product SETS, and the (+)-combiner on C is
// commutative and associative, so any interleaving of the concurrent
// writes folds to the same table. (Callers configuring C manually must
// likewise attach a commutative combiner, or run with num_workers = 1.)
//
// Failure recovery (see DESIGN.md §8): each partition is an
// independently retryable unit. A transient failure — an injected
// fault, a WAL hiccup the lower-level retries could not absorb —
// abandons the attempt's buffered writes and re-runs the partition on
// fresh scans with a fresh writer, skipping the prefix of its
// deterministic mutation stream that prior attempts already made
// durable (exactly-once emission, so even non-idempotent combiners
// fold correctly). An optional per-partition deadline turns a hung
// partition into a warning + stats flag instead of a stall.
//
// The client-side baseline (read A and B out, SpGEMM locally, write C
// back) is provided for the bench_tablemult ablation.

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "la/spmat.hpp"
#include "nosql/instance.hpp"

namespace graphulo::core {

/// Options for table_mult().
struct TableMultOptions {
  /// The (x) of the semiring; defaults to ordinary multiplication.
  std::function<double(double, double)> multiply =
      [](double a, double b) { return a * b; };
  /// Attach a summing combiner (+ of the plus-times semiring) to C at
  /// all scopes if C does not exist yet. Set false when the caller
  /// configured C manually (e.g. a min-combiner for tropical products).
  bool configure_result_table = true;
  /// Compact C after the multiply so the partial products are physically
  /// collapsed (otherwise they collapse lazily at scan/compaction time).
  bool compact_result = false;
  /// Worker threads for the partitioned pipeline; 0 = hardware
  /// concurrency. With 1 worker the multiply runs inline on the calling
  /// thread over a single all-rows partition — the serial path.
  std::size_t num_workers = 0;
  /// A partition whose attempt fails transiently (injected fault, I/O
  /// error surviving the lower-level retries) is re-run this many times
  /// on fresh scans + a fresh writer. Re-runs are exactly-once: the
  /// retry regenerates the partition's deterministic mutation stream
  /// and skips the prefix already durably applied, so no partial
  /// product is written twice.
  std::size_t max_partition_retries = 2;
  /// Wall-clock budget per partition attempt; zero = unlimited. A
  /// partition that exceeds it aborts cooperatively and is reported as
  /// timed out (a warning + TableMultStats::timed_out_partitions)
  /// instead of stalling the whole multiply. C is then missing that
  /// partition's contribution — callers opting into deadlines trade
  /// completeness for bounded latency.
  std::chrono::milliseconds partition_deadline{0};
  /// Read A and B through pinned MVCC snapshots (one per input table,
  /// opened before partitioning): every worker — and every retry — sees
  /// the same consistent cut of the inputs even while other clients
  /// write to them, which also makes the retry mutation streams exactly
  /// reproducible. Disable to scan the live tables (the pre-MVCC
  /// behaviour); in-place products (C == A or C == B) work either way,
  /// but with snapshots the product reads the inputs as of the call —
  /// the natural semantics for iterated kernels.
  bool snapshot_isolation = true;
};

/// Per-partition counters from one table_mult() worker.
struct TableMultPartitionStats {
  std::string start_row;              ///< partition range ["start", "end")
  std::string end_row;                ///< empty = unbounded on that side
  std::size_t rows_joined = 0;        ///< shared row keys in this range
  std::size_t partial_products = 0;   ///< cells written by this worker
  std::size_t seeks = 0;              ///< advance_to() seeks on A + B
  double scan_seconds = 0.0;          ///< reading/aligning the two streams
  double emit_seconds = 0.0;          ///< building + buffering mutations
  double flush_seconds = 0.0;         ///< final BatchWriter flush
  double seconds = 0.0;               ///< wall time of the whole partition
  std::size_t attempts = 1;           ///< 1 = no retries were needed
  bool timed_out = false;             ///< gave up at the deadline
};

/// Statistics from one table_mult() run. Totals are the sums over
/// `partitions`, aggregated at join time.
struct TableMultStats {
  std::size_t rows_joined = 0;        ///< shared row keys of A and B
  std::size_t partial_products = 0;   ///< cells written to C
  std::size_t seeks = 0;              ///< merge-join seeks on A + B
  double seconds = 0.0;               ///< wall time (partitions overlap)
  std::size_t retried_partitions = 0;   ///< partitions needing > 1 attempt
  std::size_t timed_out_partitions = 0; ///< partitions lost to the deadline
  std::vector<TableMultPartitionStats> partitions;
};

/// C += A^T * B, all three named tables of `db`. Creates C when missing
/// (with a summing combiner per options). Returns run statistics.
TableMultStats table_mult(nosql::Instance& db, const std::string& table_a,
                          const std::string& table_b,
                          const std::string& table_c,
                          const TableMultOptions& options = {});

/// Client-side baseline: scans A and B into local sparse matrices of
/// shape (`rows` x `cols_a`) / (`rows` x `cols_b`), multiplies with
/// SpGEMM, writes the full result back to C. Matches table_mult()'s
/// output exactly; exists to quantify the round-trip the server-side
/// path avoids.
TableMultStats client_side_mult(nosql::Instance& db, const std::string& table_a,
                                const std::string& table_b,
                                const std::string& table_c, la::Index rows,
                                la::Index cols_a, la::Index cols_b);

/// Creates `table` configured as a TableMult result sink: versioning
/// off, summing combiner at every scope. No-op if it already exists.
void create_sum_table(nosql::Instance& db, const std::string& table);

}  // namespace graphulo::core
