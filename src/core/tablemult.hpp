#pragma once
// TableMult: sparse matrix multiply executed INSIDE the database — the
// headline Graphulo operation the paper's Section I-A/IV anticipates
// ("use various Accumulo features, such as the Accumulo iterator
// framework ... and perform batch operations").
//
// Semantics: C(i, j) (+)= sum_k A(k, i) (x) B(k, j), i.e. C += A^T * B,
// where A and B are tables under the D4M matrix convention (row = row
// key, qualifier = column key, value = encoded double). The transpose
// form is forced by the storage: tables are row-sorted, so the only
// cheap join is over the shared ROW dimension k — a row-aligned merge
// join of the two tables' sorted streams (the real Graphulo's
// TwoTableIterator does exactly this). Partial products are written to
// C through a BatchWriter; a (+)-combiner attached to C at scan and
// compaction scope makes the table itself perform the reduction.
//
// Execution is a partitioned pipeline: the shared row dimension k is cut
// into contiguous row ranges at the tablet split points of A (refined by
// sampled row keys when A is a single tablet), and each partition runs
// the merge join independently on a worker thread with its own pair of
// scans and its own BatchWriter. No cross-worker coordination is needed
// beyond the final flush barrier: distinct k-partitions contribute
// disjoint partial-product SETS, and the (+)-combiner on C is
// commutative and associative, so any interleaving of the concurrent
// writes folds to the same table. (Callers configuring C manually must
// likewise attach a commutative combiner, or run with num_workers = 1.)
//
// Failure recovery (see DESIGN.md §8): each partition is an
// independently retryable unit. A transient failure — an injected
// fault, a WAL hiccup the lower-level retries could not absorb —
// abandons the attempt's buffered writes and re-runs the partition on
// fresh scans with a fresh writer, skipping the prefix of its
// deterministic mutation stream that prior attempts already made
// durable (exactly-once emission, so even non-idempotent combiners
// fold correctly). An optional per-partition deadline turns a hung
// partition into a warning + stats flag instead of a stall.
//
// Masking and fusion (DESIGN.md §13): a structural mask table M gates
// the output — partial products whose (row, qualifier) M does not name
// are dropped inside the merge join, before they cost a mutation —
// and scan-time row/column filters read derived views (strict upper /
// lower triangles) of the inputs in place. table_mult_reduce() fuses
// the final reduction: partial products fold into per-partition
// accumulators and the call returns a scalar (or per-row vector)
// without C ever existing. Together these make sum(L .* (L·U))
// triangle counting a single pass that materializes nothing.
//
// The client-side baseline (read A and B out, SpGEMM locally, write C
// back) is provided for the bench_tablemult ablation.

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/data_plane.hpp"
#include "core/table_scan.hpp"
#include "la/spmat.hpp"
#include "nosql/instance.hpp"

namespace graphulo::core {

/// Options for table_mult().
struct TableMultOptions {
  /// The (x) of the semiring; defaults to ordinary multiplication.
  std::function<double(double, double)> multiply =
      [](double a, double b) { return a * b; };
  /// Attach a summing combiner (+ of the plus-times semiring) to C at
  /// all scopes if C does not exist yet. Set false when the caller
  /// configured C manually (e.g. a min-combiner for tropical products).
  bool configure_result_table = true;
  /// Compact C after the multiply so the partial products are physically
  /// collapsed (otherwise they collapse lazily at scan/compaction time).
  bool compact_result = false;
  /// Worker threads for the partitioned pipeline; 0 = hardware
  /// concurrency. With 1 worker the multiply runs inline on the calling
  /// thread over a single all-rows partition — the serial path.
  std::size_t num_workers = 0;
  /// A partition whose attempt fails transiently (injected fault, I/O
  /// error surviving the lower-level retries) is re-run this many times
  /// on fresh scans + a fresh writer. Re-runs are exactly-once: the
  /// retry regenerates the partition's deterministic mutation stream
  /// and skips the prefix already durably applied, so no partial
  /// product is written twice.
  std::size_t max_partition_retries = 2;
  /// Wall-clock budget per partition attempt; zero = unlimited. A
  /// partition that exceeds it aborts cooperatively and is reported as
  /// timed out (a warning + TableMultStats::timed_out_partitions)
  /// instead of stalling the whole multiply. C is then missing that
  /// partition's contribution — callers opting into deadlines trade
  /// completeness for bounded latency.
  std::chrono::milliseconds partition_deadline{0};
  /// Read A and B through pinned MVCC snapshots (one per input table,
  /// opened before partitioning): every worker — and every retry — sees
  /// the same consistent cut of the inputs even while other clients
  /// write to them, which also makes the retry mutation streams exactly
  /// reproducible. Disable to scan the live tables (the pre-MVCC
  /// behaviour); in-place products (C == A or C == B) work either way,
  /// but with snapshots the product reads the inputs as of the call —
  /// the natural semantics for iterated kernels.
  bool snapshot_isolation = true;
  /// Structural mask (GraphBLAS C<M>): when non-empty, names a table M
  /// whose stored (row, qualifier) set gates the output. A partial
  /// product destined for C(i, j) is dropped inside the merge join —
  /// before it reaches the BatchWriter — unless (i, j) is stored in M
  /// (values are ignored; presence is the mask). M is read once, up
  /// front, through the same pinned-snapshot discipline as A and B
  /// (aliasing A or B reuses their snapshot), so the mask is a
  /// consistent cut too. Drops are counted per partition and in the
  /// tablemult.partial_products_pruned.total metric.
  std::string mask_table{};
  /// Invert the mask: keep partial products whose (i, j) is ABSENT from
  /// M (GraphBLAS complemented structural mask).
  bool complement_mask = false;
  /// Applied to M's cells while the mask is loaded: only cells the
  /// predicate keeps participate. With strict_lower_filter() the
  /// adjacency table itself serves as the L mask of the triangle
  /// kernel — no L table is ever written.
  CellPredicate mask_filter{};
  /// Scan-time filter on A's cells (k = row, i = qualifier); dropped
  /// cells are treated as absent from A, so e.g. strict_upper_filter()
  /// reads A as its strict upper triangle U in place. Filtering runs in
  /// the RowReader while rows are assembled — filtered cells never
  /// reach the join. Because A's qualifiers become C's rows, this is
  /// the output ROW filter.
  CellPredicate row_filter{};
  /// Same for B's cells (k = row, j = qualifier): the output COLUMN
  /// filter.
  CellPredicate col_filter{};
};

/// Per-partition counters from one table_mult() worker.
struct TableMultPartitionStats {
  std::string start_row;              ///< partition range ["start", "end")
  std::string end_row;                ///< empty = unbounded on that side
  std::size_t rows_joined = 0;        ///< shared row keys in this range
  std::size_t partial_products = 0;   ///< cells written by this worker
  std::size_t partial_products_pruned = 0;  ///< dropped by the mask
  std::size_t seeks = 0;              ///< advance_to() seeks on A + B
  double scan_seconds = 0.0;          ///< reading/aligning the two streams
  double emit_seconds = 0.0;          ///< building + buffering mutations
  double flush_seconds = 0.0;         ///< final BatchWriter flush
  double seconds = 0.0;               ///< wall time of the whole partition
  std::size_t attempts = 1;           ///< 1 = no retries were needed
  bool timed_out = false;             ///< gave up at the deadline
};

/// Statistics from one table_mult() run. Totals are the sums over
/// `partitions`, aggregated at join time.
struct TableMultStats {
  std::size_t rows_joined = 0;        ///< shared row keys of A and B
  std::size_t partial_products = 0;   ///< cells written to C (or reduced)
  std::size_t partial_products_pruned = 0;  ///< dropped by the mask
  std::size_t seeks = 0;              ///< merge-join seeks on A + B
  double seconds = 0.0;               ///< wall time (partitions overlap)
  std::size_t retried_partitions = 0;   ///< partitions needing > 1 attempt
  std::size_t timed_out_partitions = 0; ///< partitions lost to the deadline
  std::vector<TableMultPartitionStats> partitions;
};

/// C += A^T * B, all three named tables of `db`. Creates C when missing
/// (with a summing combiner per options). Returns run statistics.
TableMultStats table_mult(nosql::Instance& db, const std::string& table_a,
                          const std::string& table_b,
                          const std::string& table_c,
                          const TableMultOptions& options = {});

/// Same kernel against an arbitrary data plane: the local overload
/// above wraps `db` in a LocalDataPlane and calls this;
/// distributed::table_mult passes a ClusterDataPlane so the partition
/// workers scan and write across tablet-server processes.
TableMultStats table_mult(TableMultDataPlane& plane,
                          const std::string& table_a,
                          const std::string& table_b,
                          const std::string& table_c,
                          const TableMultOptions& options = {});

/// Result of the fused multiply-reduce.
struct TableMultReduceResult {
  /// sum of every surviving partial product A(k,i) (x) B(k,j) — exactly
  /// the scalar sum(C) a table_mult + table_sum round trip would
  /// produce, without C ever existing.
  double total = 0.0;
  /// Per-output-row sums keyed by C's row key i (only filled when
  /// table_mult_reduce is called with per_row = true).
  std::map<std::string, double> row_totals;
  TableMultStats stats;
};

/// Fused reduce variant: runs the same masked/filtered partitioned
/// merge join as table_mult(), but feeds each surviving partial product
/// into a thread-local (+)-accumulator per partition instead of a
/// BatchWriter, and folds the partition accumulators at the join
/// barrier. No result table is created, written, or compacted —
/// `options.configure_result_table` and `options.compact_result` are
/// ignored. The (+) is ordinary addition, matching the summing combiner
/// table_mult() attaches to C; `options.multiply` is still the (x).
/// Retried partitions restart with a fresh accumulator (no durable
/// state), so the exactly-once machinery is unnecessary here. This is
/// the kernel shape of masked triangle counting: sum(L .* (L·U)) in one
/// pass with nothing materialized.
TableMultReduceResult table_mult_reduce(nosql::Instance& db,
                                        const std::string& table_a,
                                        const std::string& table_b,
                                        const TableMultOptions& options = {},
                                        bool per_row = false);

/// Fused reduce against an arbitrary data plane (see table_mult
/// overload above).
TableMultReduceResult table_mult_reduce(TableMultDataPlane& plane,
                                        const std::string& table_a,
                                        const std::string& table_b,
                                        const TableMultOptions& options = {},
                                        bool per_row = false);

/// Client-side baseline: scans A and B into local sparse matrices of
/// shape (`rows` x `cols_a`) / (`rows` x `cols_b`), multiplies with
/// SpGEMM, writes the full result back to C. Matches table_mult()'s
/// output exactly; exists to quantify the round-trip the server-side
/// path avoids.
TableMultStats client_side_mult(nosql::Instance& db, const std::string& table_a,
                                const std::string& table_b,
                                const std::string& table_c, la::Index rows,
                                la::Index cols_a, la::Index cols_b);

/// The TableMult result-sink config: versioning off, summing combiner
/// at every scope. Exposed so recovery paths (graphulo_tsd's preset
/// provider) can recreate sum tables with the exact config
/// create_sum_table uses — iterator settings are code, not data.
nosql::TableConfig sum_table_config();

/// Creates `table` configured as a TableMult result sink (see
/// sum_table_config). No-op if it already exists.
void create_sum_table(nosql::Instance& db, const std::string& table);

}  // namespace graphulo::core
