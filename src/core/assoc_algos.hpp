#pragma once
// Graph algorithms on associative arrays — the paper's declared next
// step ("we will extend the sparse matrix implementations of the
// algorithms discussed in this article to associative arrays",
// Section IV). Vertices are string keys; each wrapper aligns the
// array's row/column dictionaries into one vertex universe, runs the
// matrix algorithm, and translates results back to keys.

#include <map>
#include <string>
#include <vector>

#include "assoc/assoc_array.hpp"

namespace graphulo::core {

/// An associative adjacency array squared up on the union of its row
/// and column keys (a graph's vertex set), so matrix algorithms apply.
struct VertexAlignedGraph {
  std::vector<std::string> vertices;  ///< sorted vertex keys
  la::SpMat<double> adjacency;        ///< indexed by `vertices`
};

/// Aligns an adjacency-schema associative array onto its vertex union.
VertexAlignedGraph align_vertices(const assoc::AssocArray& a);

/// PageRank on an associative adjacency array: key -> score (sums to 1).
std::map<std::string, double> assoc_pagerank(const assoc::AssocArray& a,
                                             double alpha = 0.15);

/// BFS hop distances from a seed key (absent keys = unreachable).
std::map<std::string, int> assoc_bfs(const assoc::AssocArray& a,
                                     const std::string& source);

/// k-truss of an undirected associative adjacency array, returned as an
/// associative array over the same key space.
assoc::AssocArray assoc_ktruss(const assoc::AssocArray& a, int k);

/// Jaccard coefficients of an undirected associative adjacency array.
assoc::AssocArray assoc_jaccard(const assoc::AssocArray& a);

/// Degree centrality per vertex key (out-degrees; transpose for in).
std::map<std::string, double> assoc_degrees(const assoc::AssocArray& a);

}  // namespace graphulo::core
