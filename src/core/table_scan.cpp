#include "core/table_scan.hpp"

#include "nosql/merge_iterator.hpp"

namespace graphulo::core {

nosql::IterPtr open_table_scan(nosql::Instance& db, const std::string& table,
                               const nosql::Range& range) {
  std::vector<nosql::IterPtr> stacks;
  for (auto& [tablet, sid] : db.tablets_for_range(table, range)) {
    stacks.push_back(db.server(sid).scan(*tablet));
  }
  auto merged = std::make_unique<nosql::MergeIterator>(std::move(stacks));
  merged->seek(range);
  return merged;
}

RowBlock RowReader::next_row() {
  RowBlock block;
  block.row = source_->top_key().row;
  while (source_->has_top() && source_->top_key().row == block.row) {
    block.cells.push_back({source_->top_key(), source_->top_value()});
    source_->next();
  }
  return block;
}

void RowReader::advance_to(const std::string& row) {
  while (source_->has_top() && source_->top_key().row < row) {
    source_->next();
  }
}

}  // namespace graphulo::core
