#include "core/table_scan.hpp"

#include "nosql/merge_iterator.hpp"

namespace graphulo::core {

CellPredicate strict_upper_filter() {
  return [](const std::string& row, const std::string& qualifier) {
    return row < qualifier;
  };
}

CellPredicate strict_lower_filter() {
  return [](const std::string& row, const std::string& qualifier) {
    return qualifier < row;
  };
}

nosql::IterPtr open_table_scan(nosql::Instance& db, const std::string& table,
                               const nosql::Range& range) {
  std::vector<nosql::IterPtr> stacks;
  for (auto& [tablet, sid] : db.tablets_for_range(table, range)) {
    stacks.push_back(db.server(sid).scan(*tablet));
  }
  auto merged = std::make_unique<nosql::MergeIterator>(std::move(stacks));
  merged->seek(range);
  return merged;
}

nosql::IterPtr open_table_scan(const nosql::Snapshot& snapshot,
                               const nosql::Range& range) {
  std::vector<nosql::IterPtr> stacks;
  for (const auto& cut : snapshot.tablets_for_range(range)) {
    stacks.push_back(cut->scan_stack());
  }
  auto merged = std::make_unique<nosql::MergeIterator>(std::move(stacks));
  merged->seek(range);
  return merged;
}

void RowReader::refill() {
  buf_.clear();
  pos_ = 0;
  source_->next_block(buf_, block_size_);
}

RowBlock RowReader::next_row() {
  if (pos_ >= buf_.size()) refill();
  RowBlock block;
  block.row = buf_[pos_].key.row;
  while (true) {
    while (pos_ < buf_.size() && buf_[pos_].key.row == block.row) {
      if (!filter_ || filter_(block.row, buf_[pos_].key.qualifier)) {
        block.cells.push_back(buf_[pos_]);
      }
      ++pos_;
    }
    if (pos_ < buf_.size()) break;      // next row already buffered
    if (!source_->has_top()) break;     // stream exhausted
    refill();                           // row may span fills
  }
  return block;
}

void RowReader::advance_to(const std::string& row) {
  // In-buffer skip: the buffered cells are sorted, so if the target row
  // is at or before the last buffered cell a binary search lands on it
  // without touching the stack.
  if (pos_ < buf_.size()) {
    if (buf_[pos_].key.row >= row) return;  // already there (or past)
    if (buf_[buf_.size() - 1].key.row >= row) {
      std::size_t lo = pos_, hi = buf_.size();
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (buf_[mid].key.row < row) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      pos_ = lo;
      return;
    }
  }
  // Target beyond the buffer: drop it and re-seek the stack at the
  // target row, preserving the scan's end bound. The new start is ahead
  // of the old one (everything buffered was before `row`), so the
  // clipped range never moves backwards.
  buf_.clear();
  pos_ = 0;
  if (!source_->has_top()) return;  // exhausted; nothing to seek over
  nosql::Range clipped = range_;
  clipped.has_start = true;
  clipped.start = nosql::min_key_for_row(row);
  clipped.start_inclusive = true;
  source_->seek(clipped);
  ++seeks_;
}

}  // namespace graphulo::core
