#include "core/table_scan.hpp"

#include "nosql/merge_iterator.hpp"

namespace graphulo::core {

nosql::IterPtr open_table_scan(nosql::Instance& db, const std::string& table,
                               const nosql::Range& range) {
  std::vector<nosql::IterPtr> stacks;
  for (auto& [tablet, sid] : db.tablets_for_range(table, range)) {
    stacks.push_back(db.server(sid).scan(*tablet));
  }
  auto merged = std::make_unique<nosql::MergeIterator>(std::move(stacks));
  merged->seek(range);
  return merged;
}

RowBlock RowReader::next_row() {
  RowBlock block;
  block.row = source_->top_key().row;
  while (source_->has_top() && source_->top_key().row == block.row) {
    block.cells.push_back({source_->top_key(), source_->top_value()});
    source_->next();
  }
  return block;
}

void RowReader::advance_to(const std::string& row) {
  if (!source_->has_top() || source_->top_key().row >= row) return;
  // Re-seek the stack at the target row, preserving the scan's end
  // bound. The new start is ahead of the old one (the current position
  // is before `row`), so the clipped range never moves backwards.
  nosql::Range clipped = range_;
  clipped.has_start = true;
  clipped.start = nosql::min_key_for_row(row);
  clipped.start_inclusive = true;
  source_->seek(clipped);
  ++seeks_;
}

}  // namespace graphulo::core
