#include "core/table_ops.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/table_scan.hpp"
#include "nosql/batch_writer.hpp"
#include "nosql/codec.hpp"
#include "nosql/filter_iterators.hpp"

namespace graphulo::core {

using nosql::decode_double;
using nosql::encode_double;

namespace {

/// Attaches a one-shot majc-scope iterator, forces a full compaction so
/// it rewrites every tablet, then detaches it.
void compact_with_iterator(nosql::Instance& db, const std::string& table,
                           nosql::IteratorSetting setting) {
  auto& cfg = db.table_config(table);
  setting.scopes = nosql::kMajcScope;
  const std::string name = setting.name;
  cfg.attach_iterator(std::move(setting));
  db.flush(table);
  db.compact(table);
  cfg.remove_iterator(name);
}

}  // namespace

void table_apply(nosql::Instance& db, const std::string& table,
                 const std::function<double(double)>& fn) {
  compact_with_iterator(
      db, table,
      {50, "one-shot-apply", nosql::kMajcScope, [fn](nosql::IterPtr src) {
         return std::make_unique<nosql::TransformIterator>(
             std::move(src),
             [fn](const nosql::Key&, const nosql::Value& v) -> nosql::Value {
               const auto d = decode_double(v);
               return d ? encode_double(fn(*d)) : v;
             });
       }});
  // Transformed values equal to 0 are semantically sparse zeros; prune.
  table_filter(db, table,
               [](const nosql::Key&, double v) { return v != 0.0; });
}

void table_scale(nosql::Instance& db, const std::string& table, double alpha) {
  table_apply(db, table, [alpha](double v) { return alpha * v; });
}

void table_filter(nosql::Instance& db, const std::string& table,
                  const std::function<bool(const nosql::Key&, double)>& keep) {
  compact_with_iterator(
      db, table,
      {50, "one-shot-filter", nosql::kMajcScope, [keep](nosql::IterPtr src) {
         return std::make_unique<nosql::FilterIterator>(
             std::move(src), [keep](const nosql::Key& k, const nosql::Value& v) {
               const auto d = decode_double(v);
               return keep(k, d ? *d : std::numeric_limits<double>::quiet_NaN());
             });
       }});
}

double table_reduce(nosql::Instance& db, const std::string& table,
                    const std::function<double(double, double)>& op,
                    double init) {
  double acc = init;
  bool first_partial = true;
  // Per-tablet partial reduction — the work a Graphulo reduce iterator
  // performs on each server — then a client-side fold of the partials.
  nosql::CellBlock block;
  for (auto& [tablet, sid] : db.tablets_for_range(table, nosql::Range::all())) {
    auto stack = db.server(sid).scan(*tablet);
    stack->seek(nosql::Range::all());
    double partial = init;
    bool any = false;
    while (stack->has_top()) {
      block.clear();
      if (stack->next_block(block, 1024) == 0) break;
      for (const auto& c : block) {
        const auto d = decode_double(c.value);
        if (d) {
          partial = any ? op(partial, *d) : *d;
          any = true;
        }
      }
    }
    if (any) {
      acc = first_partial ? partial : op(acc, partial);
      first_partial = false;
    }
  }
  return acc;
}

double table_sum(nosql::Instance& db, const std::string& table) {
  return table_reduce(
      db, table, [](double a, double b) { return a + b; }, 0.0);
}

void table_row_degrees(nosql::Instance& db, const std::string& table,
                       const std::string& out_table, bool count_cells) {
  if (!db.table_exists(out_table)) db.create_table(out_table);
  nosql::BatchWriter writer(db, out_table);
  RowReader reader(open_table_scan(db, table));
  while (reader.has_next()) {
    const auto block = reader.next_row();
    double degree = 0.0;
    for (const auto& cell : block.cells) {
      if (count_cells) {
        degree += 1.0;
      } else if (const auto d = decode_double(cell.value)) {
        degree += *d;
      }
    }
    nosql::Mutation m(block.row);
    m.put("deg", "deg", encode_double(degree));
    writer.add_mutation(std::move(m));
  }
  writer.flush();
}

std::size_t table_ewise_mult(
    nosql::Instance& db, const std::string& table_a, const std::string& table_b,
    const std::string& table_c,
    const std::function<double(double, double)>& multiply) {
  if (!db.table_exists(table_c)) db.create_table(table_c);
  nosql::BatchWriter writer(db, table_c);
  RowReader reader_a(open_table_scan(db, table_a));
  RowReader reader_b(open_table_scan(db, table_b));
  std::size_t written = 0;

  bool have_a = reader_a.has_next();
  bool have_b = reader_b.has_next();
  RowBlock row_a, row_b;
  if (have_a) row_a = reader_a.next_row();
  if (have_b) row_b = reader_b.next_row();
  while (have_a && have_b) {
    if (row_a.row < row_b.row) {
      have_a = reader_a.has_next();
      if (have_a) row_a = reader_a.next_row();
      continue;
    }
    if (row_b.row < row_a.row) {
      have_b = reader_b.has_next();
      if (have_b) row_b = reader_b.next_row();
      continue;
    }
    // Shared row: intersect by (family, qualifier), two-pointer merge
    // (cells within a row are key-ordered).
    std::size_t p = 0, q = 0;
    nosql::Mutation m(row_a.row);
    bool any = false;
    while (p < row_a.cells.size() && q < row_b.cells.size()) {
      const auto& ka = row_a.cells[p].key;
      const auto& kb = row_b.cells[q].key;
      const auto fam_cmp = ka.family.compare(kb.family);
      const auto qual_cmp = ka.qualifier.compare(kb.qualifier);
      if (fam_cmp < 0 || (fam_cmp == 0 && qual_cmp < 0)) {
        ++p;
      } else if (fam_cmp > 0 || (fam_cmp == 0 && qual_cmp > 0)) {
        ++q;
      } else {
        const auto av = decode_double(row_a.cells[p].value);
        const auto bv = decode_double(row_b.cells[q].value);
        if (av && bv) {
          const double product = multiply(*av, *bv);
          if (product != 0.0) {
            m.put(ka.family, ka.qualifier, encode_double(product));
            any = true;
            ++written;
          }
        }
        ++p;
        ++q;
      }
    }
    if (any) writer.add_mutation(std::move(m));
    have_a = reader_a.has_next();
    if (have_a) row_a = reader_a.next_row();
    have_b = reader_b.has_next();
    if (have_b) row_b = reader_b.next_row();
  }
  writer.flush();
  return written;
}

}  // namespace graphulo::core
