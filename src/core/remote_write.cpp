#include "core/remote_write.hpp"

#include <cmath>
#include <limits>

#include "core/table_scan.hpp"
#include "nosql/codec.hpp"
#include "nosql/filter_iterators.hpp"

namespace graphulo::core {

RemoteWriteIterator::RemoteWriteIterator(nosql::IterPtr source,
                                         nosql::Instance& db,
                                         std::string target_table)
    : WrappingIterator(std::move(source)),
      sink_([&db, &target_table]() -> std::unique_ptr<nosql::MutationSink> {
        if (!db.table_exists(target_table)) db.create_table(target_table);
        return std::make_unique<nosql::BatchWriter>(db, target_table);
      }()) {}

RemoteWriteIterator::RemoteWriteIterator(
    nosql::IterPtr source, std::unique_ptr<nosql::MutationSink> sink)
    : WrappingIterator(std::move(source)), sink_(std::move(sink)) {}

RemoteWriteIterator::~RemoteWriteIterator() = default;

void RemoteWriteIterator::close() { sink_->close(); }

void RemoteWriteIterator::seek(const nosql::Range& range) {
  WrappingIterator::seek(range);
  write_top();
}

void RemoteWriteIterator::next() {
  WrappingIterator::next();
  write_top();
}

void RemoteWriteIterator::write_top() {
  if (!has_top()) {
    sink_->flush();
    return;
  }
  const auto& k = top_key();
  nosql::Mutation m(k.row);
  m.put(k.family, k.qualifier, k.visibility, k.ts, top_value());
  sink_->add_mutation(std::move(m));
  ++written_;
}

std::size_t table_copy_filtered(
    nosql::Instance& db, const std::string& source_table,
    const std::string& target_table,
    const std::function<bool(const nosql::Key&, double)>& keep,
    const nosql::Range& range) {
  // Filter below, RemoteWrite above: the server-side ETL stack.
  nosql::IterPtr stack = open_table_scan(db, source_table, range);
  stack = std::make_unique<nosql::FilterIterator>(
      std::move(stack), [&keep](const nosql::Key& k, const nosql::Value& v) {
        const auto d = nosql::decode_double(v);
        return keep(k, d ? *d : std::numeric_limits<double>::quiet_NaN());
      });
  auto writer = std::make_unique<RemoteWriteIterator>(std::move(stack), db,
                                                      target_table);
  writer->seek(range);
  while (writer->has_top()) writer->next();
  writer->close();  // surface final-flush errors instead of swallowing
  return writer->cells_written();
}

}  // namespace graphulo::core
