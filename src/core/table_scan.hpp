#pragma once
// Pull-based whole-table scan: the building block the server-side
// kernels (TableMult, eWise, reductions) use to walk a table in key
// order through its full iterator stack, and a RowReader that groups the
// stream into rows — the unit the row-aligned merge join of TableMult
// consumes.

#include <memory>
#include <string>
#include <vector>

#include "nosql/instance.hpp"
#include "nosql/iterator.hpp"

namespace graphulo::core {

/// Builds a pull iterator over `range` of `table`: each intersecting
/// tablet's scan stack (attached iterators included), merged in key
/// order and already seeked. The iterator is positioned at the first
/// cell; re-seek is supported.
nosql::IterPtr open_table_scan(nosql::Instance& db, const std::string& table,
                               const nosql::Range& range = nosql::Range::all());

/// One row's cells (key order within the row).
struct RowBlock {
  std::string row;
  std::vector<nosql::Cell> cells;
};

/// Groups a cell stream into rows.
class RowReader {
 public:
  /// Takes ownership of a seeked iterator (as from open_table_scan).
  explicit RowReader(nosql::IterPtr source) : source_(std::move(source)) {}

  /// True when another row is available.
  bool has_next() const { return source_->has_top(); }

  /// Reads the next row (consumes all of its cells).
  RowBlock next_row();

  /// Skips rows until the current row key is >= `row` (cheap seek
  /// substitute for the merge join; rows already passed stay passed).
  void advance_to(const std::string& row);

 private:
  nosql::IterPtr source_;
};

}  // namespace graphulo::core
