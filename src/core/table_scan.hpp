#pragma once
// Pull-based whole-table scan: the building block the server-side
// kernels (TableMult, eWise, reductions) use to walk a table in key
// order through its full iterator stack, and a RowReader that groups the
// stream into rows — the unit the row-aligned merge join of TableMult
// consumes.

#include <memory>
#include <string>
#include <vector>

#include "nosql/instance.hpp"
#include "nosql/iterator.hpp"

namespace graphulo::core {

/// Builds a pull iterator over `range` of `table`: each intersecting
/// tablet's scan stack (attached iterators included), merged in key
/// order and already seeked. The iterator is positioned at the first
/// cell; re-seek is supported.
nosql::IterPtr open_table_scan(nosql::Instance& db, const std::string& table,
                               const nosql::Range& range = nosql::Range::all());

/// One row's cells (key order within the row).
struct RowBlock {
  std::string row;
  std::vector<nosql::Cell> cells;
};

/// Groups a cell stream into rows.
class RowReader {
 public:
  /// Takes ownership of a seeked iterator (as from open_table_scan).
  /// `range` must be the range the iterator was seeked to; advance_to()
  /// re-seeks within it, so an end bound keeps applying after skips.
  explicit RowReader(nosql::IterPtr source,
                     nosql::Range range = nosql::Range::all())
      : source_(std::move(source)), range_(std::move(range)) {}

  /// True when another row is available.
  bool has_next() const { return source_->has_top(); }

  /// Reads the next row (consumes all of its cells).
  RowBlock next_row();

  /// Positions the stream at the first row key >= `row` by seeking the
  /// underlying iterator stack — O(log cells) per skip instead of the
  /// O(skipped cells) a next() drain would cost. Rows already passed
  /// stay passed (a target at or behind the current row is a no-op).
  void advance_to(const std::string& row);

  /// Number of seeks advance_to() has issued (observability + tests).
  std::size_t seeks_performed() const noexcept { return seeks_; }

 private:
  nosql::IterPtr source_;
  nosql::Range range_;
  std::size_t seeks_ = 0;
};

}  // namespace graphulo::core
