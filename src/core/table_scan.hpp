#pragma once
// Pull-based whole-table scan: the building block the server-side
// kernels (TableMult, eWise, reductions) use to walk a table in key
// order through its full iterator stack, and a RowReader that groups the
// stream into rows — the unit the row-aligned merge join of TableMult
// consumes.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nosql/instance.hpp"
#include "nosql/iterator.hpp"
#include "nosql/snapshot.hpp"

namespace graphulo::core {

/// Scan-time structural predicate over a cell's (row, qualifier). The
/// table kernels use these to read a *derived* table (the strict upper
/// or lower triangle of an adjacency) without it ever existing: the
/// predicate runs while rows are assembled, so dropped cells never
/// reach the join. Empty std::function = keep everything.
using CellPredicate =
    std::function<bool(const std::string& row, const std::string& qualifier)>;

/// Keeps cells strictly above the diagonal under the row <-> qualifier
/// key ordering (qualifier > row): reading an adjacency table through
/// this yields U without materializing it.
CellPredicate strict_upper_filter();

/// Keeps cells strictly below the diagonal (qualifier < row): the L
/// counterpart.
CellPredicate strict_lower_filter();

/// Builds a pull iterator over `range` of `table`: each intersecting
/// tablet's scan stack (attached iterators included), merged in key
/// order and already seeked. The iterator is positioned at the first
/// cell; re-seek is supported.
nosql::IterPtr open_table_scan(nosql::Instance& db, const std::string& table,
                               const nosql::Range& range = nosql::Range::all());

/// Same, but reading through a pinned MVCC snapshot
/// (Instance::open_snapshot): the scan sees exactly the snapshot's cut
/// no matter what writers or compactions do meanwhile. This is what
/// TableMult partition workers use for their input tables.
nosql::IterPtr open_table_scan(const nosql::Snapshot& snapshot,
                               const nosql::Range& range = nosql::Range::all());

/// One row's cells (key order within the row).
struct RowBlock {
  std::string row;
  std::vector<nosql::Cell> cells;
};

/// Groups a cell stream into rows. Consumes the stream block-at-a-time
/// through next_block(), so the per-cell virtual dispatch of the
/// underlying stack is amortized across `block_size` cells.
class RowReader {
 public:
  /// Takes ownership of a seeked iterator (as from open_table_scan).
  /// `range` must be the range the iterator was seeked to; advance_to()
  /// re-seeks within it, so an end bound keeps applying after skips.
  /// `block_size` is the read-ahead per fill (>= 1).
  explicit RowReader(nosql::IterPtr source,
                     nosql::Range range = nosql::Range::all(),
                     std::size_t block_size = 1024)
      : source_(std::move(source)),
        range_(std::move(range)),
        block_size_(block_size == 0 ? 1 : block_size) {}

  /// True when another row is available. With a cell filter installed
  /// this is an upper-bound check: a remaining row may filter to empty,
  /// so filtered callers must tolerate next_row() returning a RowBlock
  /// with no cells.
  bool has_next() const { return pos_ < buf_.size() || source_->has_top(); }

  /// Reads the next row (consumes all of its cells). Cells failing the
  /// installed filter are dropped while the row is assembled.
  RowBlock next_row();

  /// Installs a scan-time cell filter: next_row() keeps only cells for
  /// which `keep(row, qualifier)` is true. Pass an empty function to
  /// clear. Filtering happens before the caller sees the row, so the
  /// merge-join kernels read L/U views of a table in place.
  void set_cell_filter(CellPredicate keep) { filter_ = std::move(keep); }

  /// Positions the stream at the first row key >= `row`. Targets inside
  /// the current read-ahead block are skipped in place (a binary search
  /// over buffered cells, no stack traffic); targets beyond it seek the
  /// underlying iterator stack — O(log cells) instead of the O(skipped
  /// cells) a next() drain would cost. Rows already passed stay passed
  /// (a target at or behind the current row is a no-op).
  void advance_to(const std::string& row);

  /// Number of seeks advance_to() has issued (observability + tests).
  std::size_t seeks_performed() const noexcept { return seeks_; }

 private:
  void refill();

  nosql::IterPtr source_;
  nosql::Range range_;
  std::size_t block_size_;
  CellPredicate filter_;
  nosql::CellBlock buf_;   ///< read-ahead, reused across refills
  std::size_t pos_ = 0;    ///< cursor into buf_
  std::size_t seeks_ = 0;
};

}  // namespace graphulo::core
