#include "core/tablemult.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <thread>

#include "assoc/table_io.hpp"
#include "core/table_scan.hpp"
#include "nosql/batch_writer.hpp"
#include "nosql/codec.hpp"
#include "nosql/combiner.hpp"
#include "la/spgemm.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace graphulo::core {

using nosql::CombinerIterator;
using nosql::encode_double;
using nosql::decode_double;

void create_sum_table(nosql::Instance& db, const std::string& table) {
  if (db.table_exists(table)) return;
  nosql::TableConfig cfg;
  cfg.versioning = false;  // the combiner must see every partial product
  cfg.attach_iterator({10, "plus-combiner", nosql::kAllScopes,
                       [](nosql::IterPtr src) {
                         return std::make_unique<CombinerIterator>(
                             std::move(src), nosql::sum_double_reducer());
                       }});
  db.create_table(table, std::move(cfg));
}

namespace {

/// One partition of the row-aligned merge join: scans [range) of A and
/// B, emits the partial products of every shared row through a private
/// BatchWriter. Runs on a worker thread; touches no shared state beyond
/// the (thread-safe) Instance scan/write entry points.
TableMultPartitionStats mult_partition(nosql::Instance& db,
                                       const std::string& table_a,
                                       const std::string& table_b,
                                       const std::string& table_c,
                                       const TableMultOptions& options,
                                       const nosql::Range& range) {
  util::Timer total;
  TableMultPartitionStats stats;
  if (range.has_start) stats.start_row = range.start.row;
  if (range.has_end) stats.end_row = range.end.row;

  RowReader reader_a(open_table_scan(db, table_a, range), range);
  RowReader reader_b(open_table_scan(db, table_b, range), range);
  nosql::BatchWriter writer(db, table_c);

  util::Timer phase;
  bool have_a = reader_a.has_next();
  bool have_b = reader_b.has_next();
  RowBlock row_a, row_b;
  if (have_a) row_a = reader_a.next_row();
  if (have_b) row_b = reader_b.next_row();
  stats.scan_seconds += phase.seconds();
  while (have_a && have_b) {
    if (row_a.row < row_b.row) {
      phase.reset();
      reader_a.advance_to(row_b.row);
      have_a = reader_a.has_next();
      if (have_a) row_a = reader_a.next_row();
      stats.scan_seconds += phase.seconds();
      continue;
    }
    if (row_b.row < row_a.row) {
      phase.reset();
      reader_b.advance_to(row_a.row);
      have_b = reader_b.has_next();
      if (have_b) row_b = reader_b.next_row();
      stats.scan_seconds += phase.seconds();
      continue;
    }
    // Shared row k: emit the outer product of A(k, :) and B(k, :).
    ++stats.rows_joined;
    phase.reset();
    for (const auto& ca : row_a.cells) {
      const auto av = decode_double(ca.value);
      if (!av) continue;
      // One mutation per output row C(i, :) chunk for this k.
      nosql::Mutation m(ca.key.qualifier);  // i = A's column key
      bool any = false;
      for (const auto& cb : row_b.cells) {
        const auto bv = decode_double(cb.value);
        if (!bv) continue;
        m.put(ca.key.family, cb.key.qualifier,
              encode_double(options.multiply(*av, *bv)));
        any = true;
        ++stats.partial_products;
      }
      if (any) writer.add_mutation(std::move(m));
    }
    stats.emit_seconds += phase.seconds();
    phase.reset();
    have_a = reader_a.has_next();
    if (have_a) row_a = reader_a.next_row();
    have_b = reader_b.has_next();
    if (have_b) row_b = reader_b.next_row();
    stats.scan_seconds += phase.seconds();
  }
  phase.reset();
  writer.flush();
  stats.flush_seconds = phase.seconds();
  stats.seeks = reader_a.seeks_performed() + reader_b.seeks_performed();
  stats.seconds = total.seconds();
  return stats;
}

/// Cuts the row space of `table_a` into up to `workers` contiguous
/// half-open ranges at tablet split points (sampled keys as fallback).
std::vector<nosql::Range> partition_ranges(nosql::Instance& db,
                                           const std::string& table_a,
                                           std::size_t workers) {
  std::vector<nosql::Range> ranges;
  if (workers > 1) {
    const auto bounds = db.partition_rows(table_a, workers);
    std::string prev;
    for (const auto& b : bounds) {
      ranges.push_back(nosql::Range::half_open_row_range(prev, b));
      prev = b;
    }
    ranges.push_back(nosql::Range::half_open_row_range(prev, ""));
  } else {
    ranges.push_back(nosql::Range::all());
  }
  return ranges;
}

}  // namespace

TableMultStats table_mult(nosql::Instance& db, const std::string& table_a,
                          const std::string& table_b,
                          const std::string& table_c,
                          const TableMultOptions& options) {
  util::Timer timer;
  if (options.configure_result_table) create_sum_table(db, table_c);
  if (!db.table_exists(table_c)) db.create_table(table_c);

  std::size_t workers = options.num_workers != 0
                            ? options.num_workers
                            : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  const auto ranges = partition_ranges(db, table_a, workers);

  TableMultStats stats;
  stats.partitions.reserve(ranges.size());
  if (ranges.size() == 1) {
    // Serial path: identical order of scans and writes to a single-table
    // run, no pool, no partition boundaries.
    stats.partitions.push_back(
        mult_partition(db, table_a, table_b, table_c, options, ranges[0]));
  } else {
    util::ThreadPool pool(std::min(workers, ranges.size()));
    std::vector<std::future<TableMultPartitionStats>> futures;
    futures.reserve(ranges.size());
    for (const auto& range : ranges) {
      futures.push_back(pool.submit([&db, &table_a, &table_b, &table_c,
                                     &options, &range] {
        return mult_partition(db, table_a, table_b, table_c, options, range);
      }));
    }
    // Flush barrier: join every worker (collecting its counters) before
    // the optional compaction; rethrow the first failure only after all
    // writers have drained.
    std::exception_ptr first_error;
    for (auto& f : futures) {
      try {
        stats.partitions.push_back(f.get());
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }
  for (const auto& p : stats.partitions) {
    stats.rows_joined += p.rows_joined;
    stats.partial_products += p.partial_products;
    stats.seeks += p.seeks;
  }
  if (options.compact_result) db.compact(table_c);
  stats.seconds = timer.seconds();
  return stats;
}

TableMultStats client_side_mult(nosql::Instance& db, const std::string& table_a,
                                const std::string& table_b,
                                const std::string& table_c, la::Index rows,
                                la::Index cols_a, la::Index cols_b) {
  util::Timer timer;
  TableMultStats stats;
  // Full round trip: table -> client matrices -> SpGEMM -> table.
  const auto a = assoc::read_matrix(db, table_a, rows, cols_a);
  const auto b = assoc::read_matrix(db, table_b, rows, cols_b);
  const auto c =
      la::spgemm<la::PlusTimes<double>>(la::transpose(a), b);
  create_sum_table(db, table_c);
  stats.partial_products = static_cast<std::size_t>(c.nnz());
  assoc::write_matrix(db, table_c, c);
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace graphulo::core
