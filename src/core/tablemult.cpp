#include "core/tablemult.hpp"

#include "assoc/table_io.hpp"
#include "core/table_scan.hpp"
#include "nosql/batch_writer.hpp"
#include "nosql/codec.hpp"
#include "nosql/combiner.hpp"
#include "la/spgemm.hpp"
#include "util/timer.hpp"

namespace graphulo::core {

using nosql::CombinerIterator;
using nosql::encode_double;
using nosql::decode_double;

void create_sum_table(nosql::Instance& db, const std::string& table) {
  if (db.table_exists(table)) return;
  nosql::TableConfig cfg;
  cfg.versioning = false;  // the combiner must see every partial product
  cfg.attach_iterator({10, "plus-combiner", nosql::kAllScopes,
                       [](nosql::IterPtr src) {
                         return std::make_unique<CombinerIterator>(
                             std::move(src), nosql::sum_double_reducer());
                       }});
  db.create_table(table, std::move(cfg));
}

TableMultStats table_mult(nosql::Instance& db, const std::string& table_a,
                          const std::string& table_b,
                          const std::string& table_c,
                          const TableMultOptions& options) {
  util::Timer timer;
  if (options.configure_result_table) create_sum_table(db, table_c);
  if (!db.table_exists(table_c)) db.create_table(table_c);

  TableMultStats stats;
  RowReader reader_a(open_table_scan(db, table_a));
  RowReader reader_b(open_table_scan(db, table_b));
  nosql::BatchWriter writer(db, table_c);

  // Row-aligned merge join over the shared row dimension k.
  bool have_a = reader_a.has_next();
  bool have_b = reader_b.has_next();
  RowBlock row_a, row_b;
  if (have_a) row_a = reader_a.next_row();
  if (have_b) row_b = reader_b.next_row();
  while (have_a && have_b) {
    if (row_a.row < row_b.row) {
      reader_a.advance_to(row_b.row);
      have_a = reader_a.has_next();
      if (have_a) row_a = reader_a.next_row();
      continue;
    }
    if (row_b.row < row_a.row) {
      reader_b.advance_to(row_a.row);
      have_b = reader_b.has_next();
      if (have_b) row_b = reader_b.next_row();
      continue;
    }
    // Shared row k: emit the outer product of A(k, :) and B(k, :).
    ++stats.rows_joined;
    for (const auto& ca : row_a.cells) {
      const auto av = decode_double(ca.value);
      if (!av) continue;
      // One mutation per output row C(i, :) chunk for this k.
      nosql::Mutation m(ca.key.qualifier);  // i = A's column key
      bool any = false;
      for (const auto& cb : row_b.cells) {
        const auto bv = decode_double(cb.value);
        if (!bv) continue;
        m.put(ca.key.family, cb.key.qualifier,
              encode_double(options.multiply(*av, *bv)));
        any = true;
        ++stats.partial_products;
      }
      if (any) writer.add_mutation(std::move(m));
    }
    have_a = reader_a.has_next();
    if (have_a) row_a = reader_a.next_row();
    have_b = reader_b.has_next();
    if (have_b) row_b = reader_b.next_row();
  }
  writer.flush();
  if (options.compact_result) db.compact(table_c);
  stats.seconds = timer.seconds();
  return stats;
}

TableMultStats client_side_mult(nosql::Instance& db, const std::string& table_a,
                                const std::string& table_b,
                                const std::string& table_c, la::Index rows,
                                la::Index cols_a, la::Index cols_b) {
  util::Timer timer;
  TableMultStats stats;
  // Full round trip: table -> client matrices -> SpGEMM -> table.
  const auto a = assoc::read_matrix(db, table_a, rows, cols_a);
  const auto b = assoc::read_matrix(db, table_b, rows, cols_b);
  const auto c =
      la::spgemm<la::PlusTimes<double>>(la::transpose(a), b);
  create_sum_table(db, table_c);
  stats.partial_products = static_cast<std::size_t>(c.nnz());
  assoc::write_matrix(db, table_c, c);
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace graphulo::core
