#include "core/tablemult.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "assoc/table_io.hpp"
#include "core/table_scan.hpp"
#include "nosql/batch_writer.hpp"
#include "nosql/codec.hpp"
#include "nosql/combiner.hpp"
#include "la/spgemm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace graphulo::core {

using nosql::CombinerIterator;
using nosql::encode_double;
using nosql::decode_double;

nosql::TableConfig sum_table_config() {
  nosql::TableConfig cfg;
  cfg.versioning = false;  // the combiner must see every partial product
  cfg.attach_iterator({10, "plus-combiner", nosql::kAllScopes,
                       [](nosql::IterPtr src) {
                         return std::make_unique<CombinerIterator>(
                             std::move(src), nosql::sum_double_reducer());
                       }});
  return cfg;
}

void create_sum_table(nosql::Instance& db, const std::string& table) {
  if (db.table_exists(table)) return;
  db.create_table(table, sum_table_config());
}

namespace {

obs::Counter& tm_partitions() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "tablemult.partitions.total", "TableMult partition attempts completed");
  return c;
}
obs::Counter& tm_rows_joined() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "tablemult.rows_joined.total",
      "Shared rows joined by the TableMult merge join");
  return c;
}
obs::Counter& tm_partial_products() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "tablemult.partial_products.total",
      "Partial products emitted by TableMult");
  return c;
}
obs::Counter& tm_partial_products_pruned() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "tablemult.partial_products_pruned.total",
      "Partial products dropped by the TableMult structural mask before "
      "emission");
  return c;
}

/// A partition attempt exceeded its cooperative deadline.
struct PartitionTimeout : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// The structural mask, loaded once per multiply from one consistent
/// cut of the mask table: output row key -> the set of output
/// qualifiers M stores there. Values are ignored (presence IS the
/// mask); mask_filter is applied at load. Read-only after construction,
/// so all partition workers share one instance without locking.
struct MaskIndex {
  std::unordered_map<std::string, std::unordered_set<std::string>> rows;
  std::size_t cells = 0;

  bool contains(const std::string& row, const std::string& qualifier) const {
    const auto it = rows.find(row);
    return it != rows.end() && it->second.count(qualifier) != 0;
  }
};

MaskIndex load_mask(TableMultDataPlane::ReadView& view,
                    const std::string& mask_table,
                    const CellPredicate& filter) {
  MaskIndex index;
  RowReader reader(view.open_scan(mask_table, nosql::Range::all()));
  while (reader.has_next()) {
    auto block = reader.next_row();
    if (block.cells.empty()) continue;
    auto& qualifiers = index.rows[block.row];
    for (const auto& cell : block.cells) {
      if (filter && !filter(block.row, cell.key.qualifier)) continue;
      if (qualifiers.insert(cell.key.qualifier).second) ++index.cells;
    }
    if (qualifiers.empty()) index.rows.erase(block.row);
  }
  return index;
}

/// Per-partition fused-reduce accumulator (table_mult_reduce). Each
/// partition owns one; the join barrier folds them.
struct ReduceAcc {
  double total = 0.0;
  std::map<std::string, double> rows;  // filled only when per_row
};

/// One attempt at one partition of the row-aligned merge join: scans
/// [range) of A and B (through the scan-time row/col filters), and for
/// every shared row emits the mask-surviving partial products — through
/// a private MutationSink into C, or, in fused-reduce mode (`reduce`
/// not null), into the partition's local accumulator. Runs on a worker
/// thread; touches no shared state beyond the (thread-safe) data-plane
/// scan/write entry points and the read-only MaskIndex.
///
/// Exactly-once across attempts (write mode): the mutation stream of a
/// partition is a deterministic function of the (stable) inputs, mask
/// and filters included, so a retry skips the first `durable` mutations
/// — the prefix prior attempts applied — and on any failure `durable`
/// is advanced past everything THIS attempt applied before the buffered
/// remainder is abandoned. Sinks that dedup resent streams themselves
/// (`sink_exactly_once`, the remote writers) instead see the stream
/// from its beginning on every attempt and skip server-side. Reduce
/// mode has no durable state: a retry starts over on a fresh
/// accumulator.
TableMultPartitionStats mult_partition(TableMultDataPlane::ReadView& view,
                                       const std::string& table_a,
                                       const std::string& table_b,
                                       const TableMultOptions& options,
                                       const MaskIndex* mask,
                                       ReduceAcc* reduce, bool per_row,
                                       const nosql::Range& range,
                                       nosql::MutationSink* writer,
                                       std::size_t& durable,
                                       bool sink_exactly_once) {
  // Per-partition wall time: same quantity TableMultPartitionStats
  // reports per call, accumulated here as a global latency histogram.
  TRACE_SPAN("tablemult.partition");
  util::Timer total;
  TableMultPartitionStats stats;
  if (range.has_start) stats.start_row = range.start.row;
  if (range.has_end) stats.end_row = range.end.row;
  const std::size_t skip = sink_exactly_once ? 0 : durable;
  std::size_t generated = 0;  // mutations emitted (skipped or written)
  const double deadline_s =
      std::chrono::duration<double>(options.partition_deadline).count();
  const bool complement = options.complement_mask;

  try {
    // The view is one pinned cut: every worker and every retry sees
    // the same inputs (live scans when isolation was disabled).
    RowReader reader_a(view.open_scan(table_a, range), range);
    RowReader reader_b(view.open_scan(table_b, range), range);
    reader_a.set_cell_filter(options.row_filter);
    reader_b.set_cell_filter(options.col_filter);

    // With a filter installed a row can assemble empty; skip those so
    // the join only ever sees rows that still hold cells.
    const auto read_row = [](RowReader& reader, RowBlock& row) {
      while (reader.has_next()) {
        row = reader.next_row();
        if (!row.cells.empty()) return true;
      }
      return false;
    };

    util::Timer phase;
    RowBlock row_a, row_b;
    bool have_a = read_row(reader_a, row_a);
    bool have_b = read_row(reader_b, row_b);
    stats.scan_seconds += phase.seconds();
    while (have_a && have_b) {
      util::fault::point(util::fault::sites::kTableMultWorker);
      if (deadline_s > 0.0 && total.seconds() > deadline_s) {
        throw PartitionTimeout("TableMult partition [" + stats.start_row +
                               ", " + stats.end_row + ") exceeded its " +
                               std::to_string(deadline_s) + "s deadline");
      }
      if (row_a.row < row_b.row) {
        phase.reset();
        reader_a.advance_to(row_b.row);
        have_a = read_row(reader_a, row_a);
        stats.scan_seconds += phase.seconds();
        continue;
      }
      if (row_b.row < row_a.row) {
        phase.reset();
        reader_b.advance_to(row_a.row);
        have_b = read_row(reader_b, row_b);
        stats.scan_seconds += phase.seconds();
        continue;
      }
      // Shared row k: emit the outer product of A(k, :) and B(k, :).
      ++stats.rows_joined;
      phase.reset();
      for (const auto& ca : row_a.cells) {
        const auto av = decode_double(ca.value);
        if (!av) continue;
        if (reduce) {
          // Fused reduce: fold surviving products straight into the
          // partition-local accumulator; no mutation is ever built.
          double row_sum = 0.0;
          for (const auto& cb : row_b.cells) {
            const auto bv = decode_double(cb.value);
            if (!bv) continue;
            if (mask && mask->contains(ca.key.qualifier, cb.key.qualifier) ==
                            complement) {
              ++stats.partial_products_pruned;
              continue;
            }
            row_sum += options.multiply(*av, *bv);
            ++stats.partial_products;
          }
          reduce->total += row_sum;
          if (per_row && row_sum != 0.0) {
            reduce->rows[ca.key.qualifier] += row_sum;
          }
          continue;
        }
        // One mutation per output row C(i, :) chunk for this k.
        nosql::Mutation m(ca.key.qualifier);  // i = A's column key
        bool any = false;
        for (const auto& cb : row_b.cells) {
          const auto bv = decode_double(cb.value);
          if (!bv) continue;
          if (mask && mask->contains(ca.key.qualifier, cb.key.qualifier) ==
                          complement) {
            // Structural mask: the product is pruned here, before the
            // BatchWriter — it never costs a mutation, a WAL record, or
            // a combiner fold.
            ++stats.partial_products_pruned;
            continue;
          }
          m.put(ca.key.family, cb.key.qualifier,
                encode_double(options.multiply(*av, *bv)));
          any = true;
          ++stats.partial_products;
        }
        if (any && generated++ >= skip) writer->add_mutation(std::move(m));
      }
      stats.emit_seconds += phase.seconds();
      phase.reset();
      have_a = read_row(reader_a, row_a);
      have_b = read_row(reader_b, row_b);
      stats.scan_seconds += phase.seconds();
    }
    phase.reset();
    if (writer) writer->close();
    stats.flush_seconds = phase.seconds();
    stats.seeks = reader_a.seeks_performed() + reader_b.seeks_performed();
    stats.seconds = total.seconds();
    if (writer && !sink_exactly_once) {
      durable = skip + writer->mutations_written();
    }
    return stats;
  } catch (...) {
    // Everything this attempt managed to apply is durable; the buffered
    // remainder must NOT flush from the destructor (a retry regenerates
    // it), so abandon the writer before propagating. Exactly-once sinks
    // keep durable at zero — the owning server, not this counter, skips
    // the applied prefix of the resent stream.
    if (writer) {
      if (!sink_exactly_once) durable = skip + writer->mutations_written();
      writer->abandon();
    }
    throw;
  }
}

/// Runs one partition to completion: retries transient failures on
/// fresh scans + a fresh writer (see mult_partition for the
/// exactly-once argument; reduce attempts restart on a cleared
/// accumulator), degrades a deadline overrun into a timed-out partition
/// record instead of an exception. A retry re-opens the SAME partition
/// index from the write session, so exactly-once sinks resume the same
/// server-side stream.
TableMultPartitionStats run_partition(
    TableMultDataPlane::ReadView& view, const std::string& table_a,
    const std::string& table_b, const TableMultOptions& options,
    const MaskIndex* mask, ReduceAcc* reduce, bool per_row,
    const nosql::Range& range, TableMultDataPlane::WriteSession* session,
    std::size_t partition_index) {
  std::size_t durable = 0;
  const bool sink_exactly_once = session != nullptr && session->exactly_once();
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      if (reduce) *reduce = ReduceAcc{};
      std::unique_ptr<nosql::MutationSink> writer;
      if (session != nullptr) writer = session->open_writer(partition_index);
      auto stats = mult_partition(view, table_a, table_b, options, mask,
                                  reduce, per_row, range, writer.get(),
                                  durable, sink_exactly_once);
      stats.attempts = attempt;
      return stats;
    } catch (const PartitionTimeout& e) {
      GRAPHULO_WARN << "TableMult: " << e.what()
                    << "; degrading to a partial result";
      if (reduce) *reduce = ReduceAcc{};
      TableMultPartitionStats stats;
      if (range.has_start) stats.start_row = range.start.row;
      if (range.has_end) stats.end_row = range.end.row;
      stats.attempts = attempt;
      stats.timed_out = true;
      return stats;
    } catch (const util::TransientError& e) {
      if (attempt > options.max_partition_retries) throw;
      GRAPHULO_WARN << "TableMult: partition [" << range.start.row << ", "
                    << range.end.row << ") attempt " << attempt
                    << " failed (" << e.what() << "); retrying with "
                    << durable << " mutations already durable";
    }
  }
}

/// Cuts the row space of `table_a` into up to `workers` contiguous
/// half-open ranges at tablet split points (sampled keys as fallback).
std::vector<nosql::Range> partition_ranges(TableMultDataPlane& plane,
                                           const std::string& table_a,
                                           std::size_t workers) {
  std::vector<nosql::Range> ranges;
  if (workers > 1) {
    const auto bounds = plane.partition_rows(table_a, workers);
    std::string prev;
    for (const auto& b : bounds) {
      ranges.push_back(nosql::Range::half_open_row_range(prev, b));
      prev = b;
    }
    ranges.push_back(nosql::Range::half_open_row_range(prev, ""));
  } else {
    ranges.push_back(nosql::Range::all());
  }
  return ranges;
}

/// Shared driver of table_mult and table_mult_reduce. In write mode
/// (`merged` null) the result lands in `table_c`; in fused-reduce mode
/// the per-partition accumulators are folded into `*merged` at the join
/// barrier and `table_c` is ignored.
TableMultStats run_mult(TableMultDataPlane& plane, const std::string& table_a,
                        const std::string& table_b,
                        const std::string& table_c,
                        const TableMultOptions& options, ReduceAcc* merged,
                        bool per_row) {
  util::Timer timer;
  const bool reduce_mode = merged != nullptr;
  const util::RetryPolicy retry = plane.retry_policy();
  if (!options.mask_table.empty() && !plane.table_exists(options.mask_table)) {
    throw std::invalid_argument("table_mult: mask table '" +
                                options.mask_table + "' does not exist");
  }
  // Setup is retry-safe: ensure_table re-checks existence, and
  // partitioning is a read-only pass over A — both may hit transient
  // (injected) faults that a second attempt clears.
  if (!reduce_mode) {
    util::with_retries("TableMult: result table setup", retry, [&] {
      plane.ensure_table(table_c, options.configure_result_table);
    });
  }

  std::size_t workers = options.num_workers != 0
                            ? options.num_workers
                            : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;

  // Pin the inputs BEFORE partitioning so the partition boundaries and
  // every worker's scans describe the same cut. The mask (when named)
  // is pinned alongside — the view dedupes aliased tables — so mask, A
  // and B are one consistent view. The view releases at the end of
  // this function (before the optional result compaction, so an
  // in-place product's markers are not retained on its account).
  std::vector<std::string> view_tables{table_a, table_b};
  if (!options.mask_table.empty()) view_tables.push_back(options.mask_table);
  std::unique_ptr<TableMultDataPlane::ReadView> view =
      util::with_retries("TableMult: snapshot open", retry, [&] {
        return plane.open_read_view(view_tables, options.snapshot_isolation);
      });

  // The mask is loaded once, before the fan-out: one read of M serves
  // every partition (and every retry) as a shared read-only index.
  std::optional<MaskIndex> mask;
  if (!options.mask_table.empty()) {
    mask = util::with_retries("TableMult: mask load", retry, [&] {
      return load_mask(*view, options.mask_table, options.mask_filter);
    });
  }
  const MaskIndex* mask_ptr = mask ? &*mask : nullptr;

  const auto ranges =
      util::with_retries("TableMult: partitioning", retry, [&] {
        return partition_ranges(plane, table_a, workers);
      });

  std::unique_ptr<TableMultDataPlane::WriteSession> session;
  if (!reduce_mode) session = plane.open_write_session(table_c);

  TableMultStats stats;
  stats.partitions.reserve(ranges.size());
  std::vector<ReduceAcc> accs(reduce_mode ? ranges.size() : 0);
  if (ranges.size() == 1) {
    // Serial path: identical order of scans and writes to a single-table
    // run, no pool, no partition boundaries.
    stats.partitions.push_back(run_partition(
        *view, table_a, table_b, options, mask_ptr,
        reduce_mode ? &accs[0] : nullptr, per_row, ranges[0], session.get(),
        0));
  } else {
    util::ThreadPool pool(std::min(workers, ranges.size()));
    std::vector<std::future<TableMultPartitionStats>> futures;
    futures.reserve(ranges.size());
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      ReduceAcc* acc = reduce_mode ? &accs[i] : nullptr;
      const nosql::Range& range = ranges[i];
      futures.push_back(pool.submit([&view, &table_a, &table_b, &options,
                                     mask_ptr, acc, per_row, &range, &session,
                                     i] {
        return run_partition(*view, table_a, table_b, options, mask_ptr, acc,
                             per_row, range, session.get(), i);
      }));
    }
    // Flush barrier: join every worker (collecting its counters) before
    // the optional compaction; rethrow the first failure only after all
    // writers have drained.
    std::exception_ptr first_error;
    for (auto& f : futures) {
      try {
        stats.partitions.push_back(f.get());
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }
  for (const auto& p : stats.partitions) {
    stats.rows_joined += p.rows_joined;
    stats.partial_products += p.partial_products;
    stats.partial_products_pruned += p.partial_products_pruned;
    stats.seeks += p.seeks;
    if (p.attempts > 1) ++stats.retried_partitions;
    if (p.timed_out) ++stats.timed_out_partitions;
  }
  if (reduce_mode) {
    // Distinct k-partitions contribute disjoint partial-product sets;
    // ordinary + folds them in any order, same as C's combiner would.
    for (auto& acc : accs) {
      merged->total += acc.total;
      for (auto& [row, v] : acc.rows) merged->rows[row] += v;
    }
  }
  tm_partitions().inc(stats.partitions.size());
  tm_rows_joined().inc(stats.rows_joined);
  tm_partial_products().inc(stats.partial_products);
  tm_partial_products_pruned().inc(stats.partial_products_pruned);
  if (stats.timed_out_partitions > 0) {
    GRAPHULO_WARN << "TableMult: " << stats.timed_out_partitions << " of "
                  << stats.partitions.size()
                  << " partitions hit the deadline; "
                  << (reduce_mode ? "the reduction" : table_c)
                  << " is missing their contributions";
  }
  // Release the input pins before compacting C: when C aliases an input
  // (in-place kernels), a live snapshot would hold the compaction's
  // delete-marker/version GC hostage for no reason.
  view.reset();
  if (!reduce_mode && options.compact_result) plane.compact(table_c);
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace

TableMultStats table_mult(TableMultDataPlane& plane,
                          const std::string& table_a,
                          const std::string& table_b,
                          const std::string& table_c,
                          const TableMultOptions& options) {
  return run_mult(plane, table_a, table_b, table_c, options, nullptr, false);
}

TableMultStats table_mult(nosql::Instance& db, const std::string& table_a,
                          const std::string& table_b,
                          const std::string& table_c,
                          const TableMultOptions& options) {
  LocalDataPlane plane(db);
  return run_mult(plane, table_a, table_b, table_c, options, nullptr, false);
}

TableMultReduceResult table_mult_reduce(TableMultDataPlane& plane,
                                        const std::string& table_a,
                                        const std::string& table_b,
                                        const TableMultOptions& options,
                                        bool per_row) {
  ReduceAcc merged;
  TableMultReduceResult result;
  result.stats =
      run_mult(plane, table_a, table_b, "", options, &merged, per_row);
  result.total = merged.total;
  result.row_totals = std::move(merged.rows);
  return result;
}

TableMultReduceResult table_mult_reduce(nosql::Instance& db,
                                        const std::string& table_a,
                                        const std::string& table_b,
                                        const TableMultOptions& options,
                                        bool per_row) {
  LocalDataPlane plane(db);
  ReduceAcc merged;
  TableMultReduceResult result;
  result.stats =
      run_mult(plane, table_a, table_b, "", options, &merged, per_row);
  result.total = merged.total;
  result.row_totals = std::move(merged.rows);
  return result;
}

TableMultStats client_side_mult(nosql::Instance& db, const std::string& table_a,
                                const std::string& table_b,
                                const std::string& table_c, la::Index rows,
                                la::Index cols_a, la::Index cols_b) {
  util::Timer timer;
  TableMultStats stats;
  // Full round trip: table -> client matrices -> SpGEMM -> table.
  const auto a = assoc::read_matrix(db, table_a, rows, cols_a);
  const auto b = assoc::read_matrix(db, table_b, rows, cols_b);
  const auto c =
      la::spgemm<la::PlusTimes<double>>(la::transpose(a), b);
  create_sum_table(db, table_c);
  stats.partial_products = static_cast<std::size_t>(c.nnz());
  assoc::write_matrix(db, table_c, c);
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace graphulo::core
