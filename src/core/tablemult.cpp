#include "core/tablemult.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <stdexcept>
#include <thread>

#include "assoc/table_io.hpp"
#include "core/table_scan.hpp"
#include "nosql/batch_writer.hpp"
#include "nosql/codec.hpp"
#include "nosql/combiner.hpp"
#include "la/spgemm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace graphulo::core {

using nosql::CombinerIterator;
using nosql::encode_double;
using nosql::decode_double;

void create_sum_table(nosql::Instance& db, const std::string& table) {
  if (db.table_exists(table)) return;
  nosql::TableConfig cfg;
  cfg.versioning = false;  // the combiner must see every partial product
  cfg.attach_iterator({10, "plus-combiner", nosql::kAllScopes,
                       [](nosql::IterPtr src) {
                         return std::make_unique<CombinerIterator>(
                             std::move(src), nosql::sum_double_reducer());
                       }});
  db.create_table(table, std::move(cfg));
}

namespace {

obs::Counter& tm_partitions() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "tablemult.partitions.total", "TableMult partition attempts completed");
  return c;
}
obs::Counter& tm_rows_joined() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "tablemult.rows_joined.total",
      "Shared rows joined by the TableMult merge join");
  return c;
}
obs::Counter& tm_partial_products() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "tablemult.partial_products.total",
      "Partial products emitted by TableMult");
  return c;
}

/// A partition attempt exceeded its cooperative deadline.
struct PartitionTimeout : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One attempt at one partition of the row-aligned merge join: scans
/// [range) of A and B, emits the partial products of every shared row
/// through a private BatchWriter. Runs on a worker thread; touches no
/// shared state beyond the (thread-safe) Instance scan/write entry
/// points.
///
/// Exactly-once across attempts: the mutation stream of a partition is
/// a deterministic function of the (stable) inputs, so a retry skips
/// the first `durable` mutations — the prefix prior attempts applied —
/// and on any failure `durable` is advanced past everything THIS
/// attempt applied before the buffered remainder is abandoned.
TableMultPartitionStats mult_partition(nosql::Instance& db,
                                       const std::string& table_a,
                                       const std::string& table_b,
                                       const std::string& table_c,
                                       const TableMultOptions& options,
                                       const nosql::Snapshot* snap_a,
                                       const nosql::Snapshot* snap_b,
                                       const nosql::Range& range,
                                       std::size_t& durable) {
  // Per-partition wall time: same quantity TableMultPartitionStats
  // reports per call, accumulated here as a global latency histogram.
  TRACE_SPAN("tablemult.partition");
  util::Timer total;
  TableMultPartitionStats stats;
  if (range.has_start) stats.start_row = range.start.row;
  if (range.has_end) stats.end_row = range.end.row;
  const std::size_t skip = durable;
  std::size_t generated = 0;  // mutations emitted (skipped or written)
  const double deadline_s =
      std::chrono::duration<double>(options.partition_deadline).count();

  nosql::BatchWriter writer(db, table_c);
  try {
    // Snapshot isolation: read the pinned cuts (every worker and every
    // retry sees the same inputs); live scans otherwise.
    RowReader reader_a(snap_a ? open_table_scan(*snap_a, range)
                              : open_table_scan(db, table_a, range),
                       range);
    RowReader reader_b(snap_b ? open_table_scan(*snap_b, range)
                              : open_table_scan(db, table_b, range),
                       range);

    util::Timer phase;
    bool have_a = reader_a.has_next();
    bool have_b = reader_b.has_next();
    RowBlock row_a, row_b;
    if (have_a) row_a = reader_a.next_row();
    if (have_b) row_b = reader_b.next_row();
    stats.scan_seconds += phase.seconds();
    while (have_a && have_b) {
      util::fault::point(util::fault::sites::kTableMultWorker);
      if (deadline_s > 0.0 && total.seconds() > deadline_s) {
        throw PartitionTimeout("TableMult partition [" + stats.start_row +
                               ", " + stats.end_row + ") exceeded its " +
                               std::to_string(deadline_s) + "s deadline");
      }
      if (row_a.row < row_b.row) {
        phase.reset();
        reader_a.advance_to(row_b.row);
        have_a = reader_a.has_next();
        if (have_a) row_a = reader_a.next_row();
        stats.scan_seconds += phase.seconds();
        continue;
      }
      if (row_b.row < row_a.row) {
        phase.reset();
        reader_b.advance_to(row_a.row);
        have_b = reader_b.has_next();
        if (have_b) row_b = reader_b.next_row();
        stats.scan_seconds += phase.seconds();
        continue;
      }
      // Shared row k: emit the outer product of A(k, :) and B(k, :).
      ++stats.rows_joined;
      phase.reset();
      for (const auto& ca : row_a.cells) {
        const auto av = decode_double(ca.value);
        if (!av) continue;
        // One mutation per output row C(i, :) chunk for this k.
        nosql::Mutation m(ca.key.qualifier);  // i = A's column key
        bool any = false;
        for (const auto& cb : row_b.cells) {
          const auto bv = decode_double(cb.value);
          if (!bv) continue;
          m.put(ca.key.family, cb.key.qualifier,
                encode_double(options.multiply(*av, *bv)));
          any = true;
          ++stats.partial_products;
        }
        if (any && generated++ >= skip) writer.add_mutation(std::move(m));
      }
      stats.emit_seconds += phase.seconds();
      phase.reset();
      have_a = reader_a.has_next();
      if (have_a) row_a = reader_a.next_row();
      have_b = reader_b.has_next();
      if (have_b) row_b = reader_b.next_row();
      stats.scan_seconds += phase.seconds();
    }
    phase.reset();
    writer.close();
    stats.flush_seconds = phase.seconds();
    stats.seeks = reader_a.seeks_performed() + reader_b.seeks_performed();
    stats.seconds = total.seconds();
    durable = skip + writer.mutations_written();
    return stats;
  } catch (...) {
    // Everything this attempt managed to apply is durable; the buffered
    // remainder must NOT flush from the destructor (a retry regenerates
    // it), so abandon the writer before propagating.
    durable = skip + writer.mutations_written();
    writer.abandon();
    throw;
  }
}

/// Runs one partition to completion: retries transient failures on
/// fresh scans + a fresh writer (see mult_partition for the
/// exactly-once argument), degrades a deadline overrun into a
/// timed-out partition record instead of an exception.
TableMultPartitionStats run_partition(nosql::Instance& db,
                                      const std::string& table_a,
                                      const std::string& table_b,
                                      const std::string& table_c,
                                      const TableMultOptions& options,
                                      const nosql::Snapshot* snap_a,
                                      const nosql::Snapshot* snap_b,
                                      const nosql::Range& range) {
  std::size_t durable = 0;
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      auto stats = mult_partition(db, table_a, table_b, table_c, options,
                                  snap_a, snap_b, range, durable);
      stats.attempts = attempt;
      return stats;
    } catch (const PartitionTimeout& e) {
      GRAPHULO_WARN << "TableMult: " << e.what()
                    << "; degrading to a partial result";
      TableMultPartitionStats stats;
      if (range.has_start) stats.start_row = range.start.row;
      if (range.has_end) stats.end_row = range.end.row;
      stats.attempts = attempt;
      stats.timed_out = true;
      return stats;
    } catch (const util::TransientError& e) {
      if (attempt > options.max_partition_retries) throw;
      GRAPHULO_WARN << "TableMult: partition [" << range.start.row << ", "
                    << range.end.row << ") attempt " << attempt
                    << " failed (" << e.what() << "); retrying with "
                    << durable << " mutations already durable";
    }
  }
}

/// Cuts the row space of `table_a` into up to `workers` contiguous
/// half-open ranges at tablet split points (sampled keys as fallback).
std::vector<nosql::Range> partition_ranges(nosql::Instance& db,
                                           const std::string& table_a,
                                           std::size_t workers) {
  std::vector<nosql::Range> ranges;
  if (workers > 1) {
    const auto bounds = db.partition_rows(table_a, workers);
    std::string prev;
    for (const auto& b : bounds) {
      ranges.push_back(nosql::Range::half_open_row_range(prev, b));
      prev = b;
    }
    ranges.push_back(nosql::Range::half_open_row_range(prev, ""));
  } else {
    ranges.push_back(nosql::Range::all());
  }
  return ranges;
}

}  // namespace

TableMultStats table_mult(nosql::Instance& db, const std::string& table_a,
                          const std::string& table_b,
                          const std::string& table_c,
                          const TableMultOptions& options) {
  util::Timer timer;
  // Setup is retry-safe: create_sum_table re-checks existence, and
  // partitioning is a read-only pass over A — both may hit transient
  // (injected) faults that a second attempt clears.
  util::with_retries("TableMult: result table setup", db.retry_policy(), [&] {
    if (options.configure_result_table) create_sum_table(db, table_c);
    if (!db.table_exists(table_c)) db.create_table(table_c);
  });

  std::size_t workers = options.num_workers != 0
                            ? options.num_workers
                            : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;

  // Pin the inputs BEFORE partitioning so the partition boundaries and
  // every worker's scans describe the same cut. The handles release at
  // the end of this function (before the optional result compaction, so
  // an in-place product's markers are not retained on its account).
  std::shared_ptr<const nosql::Snapshot> snap_a, snap_b;
  if (options.snapshot_isolation) {
    util::with_retries("TableMult: snapshot open", db.retry_policy(), [&] {
      snap_a = db.open_snapshot(table_a);
      snap_b = table_b == table_a ? snap_a : db.open_snapshot(table_b);
    });
  }

  const auto ranges =
      util::with_retries("TableMult: partitioning", db.retry_policy(), [&] {
        return partition_ranges(db, table_a, workers);
      });

  TableMultStats stats;
  stats.partitions.reserve(ranges.size());
  if (ranges.size() == 1) {
    // Serial path: identical order of scans and writes to a single-table
    // run, no pool, no partition boundaries.
    stats.partitions.push_back(run_partition(db, table_a, table_b, table_c,
                                             options, snap_a.get(),
                                             snap_b.get(), ranges[0]));
  } else {
    util::ThreadPool pool(std::min(workers, ranges.size()));
    std::vector<std::future<TableMultPartitionStats>> futures;
    futures.reserve(ranges.size());
    for (const auto& range : ranges) {
      futures.push_back(pool.submit([&db, &table_a, &table_b, &table_c,
                                     &options, &snap_a, &snap_b, &range] {
        return run_partition(db, table_a, table_b, table_c, options,
                             snap_a.get(), snap_b.get(), range);
      }));
    }
    // Flush barrier: join every worker (collecting its counters) before
    // the optional compaction; rethrow the first failure only after all
    // writers have drained.
    std::exception_ptr first_error;
    for (auto& f : futures) {
      try {
        stats.partitions.push_back(f.get());
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }
  for (const auto& p : stats.partitions) {
    stats.rows_joined += p.rows_joined;
    stats.partial_products += p.partial_products;
    stats.seeks += p.seeks;
    if (p.attempts > 1) ++stats.retried_partitions;
    if (p.timed_out) ++stats.timed_out_partitions;
  }
  tm_partitions().inc(stats.partitions.size());
  tm_rows_joined().inc(stats.rows_joined);
  tm_partial_products().inc(stats.partial_products);
  if (stats.timed_out_partitions > 0) {
    GRAPHULO_WARN << "TableMult: " << stats.timed_out_partitions << " of "
                  << stats.partitions.size()
                  << " partitions hit the deadline; " << table_c
                  << " is missing their contributions";
  }
  // Release the input pins before compacting C: when C aliases an input
  // (in-place kernels), a live snapshot would hold the compaction's
  // delete-marker/version GC hostage for no reason.
  snap_a.reset();
  snap_b.reset();
  if (options.compact_result) db.compact(table_c);
  stats.seconds = timer.seconds();
  return stats;
}

TableMultStats client_side_mult(nosql::Instance& db, const std::string& table_a,
                                const std::string& table_b,
                                const std::string& table_c, la::Index rows,
                                la::Index cols_a, la::Index cols_b) {
  util::Timer timer;
  TableMultStats stats;
  // Full round trip: table -> client matrices -> SpGEMM -> table.
  const auto a = assoc::read_matrix(db, table_a, rows, cols_a);
  const auto b = assoc::read_matrix(db, table_b, rows, cols_b);
  const auto c =
      la::spgemm<la::PlusTimes<double>>(la::transpose(a), b);
  create_sum_table(db, table_c);
  stats.partial_products = static_cast<std::size_t>(c.nnz());
  assoc::write_matrix(db, table_c, c);
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace graphulo::core
