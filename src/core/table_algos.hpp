#pragma once
// Graph algorithms executed directly against database tables — the
// paper's end goal ("perform graph algorithms directly on NoSQL
// databases"). The trio implemented here (BFS from a seed set, Jaccard
// similarity, k-truss) matches the headline algorithms of the actual
// Graphulo server library, built on TableMult / table-scope kernels.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/tablemult.hpp"
#include "nosql/instance.hpp"

namespace graphulo::core {

/// Breadth-first search over an adjacency table (row -> qualifier =
/// out-neighbor). Returns vertex -> hop distance for every vertex within
/// `max_hops` of the seeds (seeds at distance 0). Each hop is one batch
/// scan over the frontier rows — Graphulo's AdjBFS pattern.
std::map<std::string, int> adj_bfs(nosql::Instance& db,
                                   const std::string& adj_table,
                                   const std::vector<std::string>& seeds,
                                   int max_hops);

/// Jaccard similarity on an undirected 0/1 adjacency table. Computes
/// common-neighbor counts server-side with TableMult, degrees with a
/// row-degree pass, and writes J(i,j) = |N(i) ^ N(j)| / |N(i) u N(j)|
/// for i < j into `out_table`. Returns the number of similarity cells
/// written.
std::size_t table_jaccard(nosql::Instance& db, const std::string& adj_table,
                          const std::string& out_table);

/// k-truss of an undirected 0/1 adjacency table (Graphulo's kTrussAdj
/// iteration): repeatedly compute per-edge triangle support via
/// TableMult + table eWise, delete edges with support < k-2, until a
/// fixpoint. The surviving subgraph is written to `out_table` (0/1
/// adjacency). Returns the number of surviving directed edge cells.
std::size_t table_ktruss(nosql::Instance& db, const std::string& adj_table,
                         int k, const std::string& out_table);

/// Number of cells visible in a table (scan count).
std::size_t table_entry_count(nosql::Instance& db, const std::string& table);

/// Triangle count of an undirected 0/1 adjacency table, adjacency-based
/// masked form (the Graphulo "Distributed Triangle Counting" follow-up,
/// 1709.01054): sum(L .* (L·U)) computed as ONE fused table_mult_reduce
/// over the adjacency table itself — strict-upper scan filters read
/// both inputs as U in place (C = U^T·U = L·U), the adjacency doubles
/// as its own strict-lower mask L, and the final reduction folds in the
/// workers. Nothing is materialized: no L or U tables, no wedge table,
/// no result table. Each triangle is counted exactly once. `stats`
/// (optional) receives the kernel's TableMultStats — the
/// partial_products vs partial_products_pruned split is the headline
/// masking win the Weale benchmark reports.
std::uint64_t table_triangle_count_masked(nosql::Instance& db,
                                          const std::string& adj_table,
                                          TableMultStats* stats = nullptr);

/// Unmasked trace(A^3)/6 formulation — the ablation baseline: one full
/// TableMult materializes the wedge table W = A^T·A (every open wedge
/// becomes a partial product), an eWise intersection with A restricts
/// to closed wedges, and a table sum divides by 6. `stats` receives the
/// wedge multiply's TableMultStats (its partial_products is the
/// unmasked emission count the masked path avoids).
std::uint64_t table_triangle_count_trace(nosql::Instance& db,
                                         const std::string& adj_table,
                                         TableMultStats* stats = nullptr);

/// Incidence-based triangle count (the k-truss machinery of Algorithm 1
/// applied to counting): builds the transposed unoriented incidence
/// table E^T (row = vertex, qualifier = edge key, one edge per
/// undirected adjacency pair), computes R = E·A with one TableMult
/// (rows of R are edges, R(e, w) = how many endpoints of e are adjacent
/// to w), and counts entries equal to 2 — each triangle contributes one
/// such entry per edge, so the count divides by 3. Working tables are
/// dropped before returning.
std::uint64_t table_triangle_count_incidence(nosql::Instance& db,
                                             const std::string& adj_table);

/// PageRank executed against an adjacency table: each power sweep is one
/// server-side TableMult C(j) += sum_i A(i, j) * x(i)/d(i) with the
/// frontier vector stored as a one-column table; the client only applies
/// the O(n) damping/dangling correction between sweeps (Graphulo's
/// orchestration pattern: bulk work in the database, scalar glue in the
/// client). Returns vertex key -> score (sums to 1).
std::map<std::string, double> table_pagerank(nosql::Instance& db,
                                             const std::string& adj_table,
                                             double alpha = 0.15,
                                             int iterations = 30);

}  // namespace graphulo::core
