#include "core/assoc_algos.hpp"

#include <stdexcept>

#include "algo/centrality.hpp"
#include "algo/jaccard.hpp"
#include "algo/ktruss.hpp"
#include "algo/traversal.hpp"
#include "la/structure.hpp"

namespace graphulo::core {

using assoc::AssocArray;
using la::Index;
using la::SpMat;
using la::Triple;

VertexAlignedGraph align_vertices(const AssocArray& a) {
  VertexAlignedGraph g;
  g.vertices = assoc::key_union(a.row_keys(), a.col_keys());
  const auto index_of = [&](const std::string& key) {
    return static_cast<Index>(
        std::lower_bound(g.vertices.begin(), g.vertices.end(), key) -
        g.vertices.begin());
  };
  std::vector<Triple<double>> triples;
  for (const auto& e : a.entries()) {
    triples.push_back({index_of(e.row), index_of(e.col), e.val});
  }
  const auto n = static_cast<Index>(g.vertices.size());
  g.adjacency = SpMat<double>::from_triples(n, n, std::move(triples));
  return g;
}

namespace {

/// Re-labels a square matrix over `vertices` back into an AssocArray,
/// dropping empty keys (condensed form).
AssocArray matrix_to_assoc(const std::vector<std::string>& vertices,
                           const SpMat<double>& m) {
  std::vector<assoc::Entry> entries;
  for (const auto& t : m.to_triples()) {
    entries.push_back({vertices[static_cast<std::size_t>(t.row)],
                       vertices[static_cast<std::size_t>(t.col)], t.val});
  }
  return AssocArray::from_entries(std::move(entries));
}

}  // namespace

std::map<std::string, double> assoc_pagerank(const AssocArray& a,
                                             double alpha) {
  const auto g = align_vertices(a);
  const auto result = algo::pagerank(g.adjacency, alpha);
  std::map<std::string, double> scores;
  for (std::size_t v = 0; v < g.vertices.size(); ++v) {
    scores[g.vertices[v]] = result.scores[v];
  }
  return scores;
}

std::map<std::string, int> assoc_bfs(const AssocArray& a,
                                     const std::string& source) {
  const auto g = align_vertices(a);
  const auto it =
      std::lower_bound(g.vertices.begin(), g.vertices.end(), source);
  if (it == g.vertices.end() || *it != source) {
    throw std::invalid_argument("assoc_bfs: unknown source key: " + source);
  }
  const auto result = algo::bfs_linalg(
      g.adjacency, static_cast<Index>(it - g.vertices.begin()));
  std::map<std::string, int> levels;
  for (std::size_t v = 0; v < g.vertices.size(); ++v) {
    if (result.level[v] >= 0) levels[g.vertices[v]] = result.level[v];
  }
  return levels;
}

AssocArray assoc_ktruss(const AssocArray& a, int k) {
  const auto g = align_vertices(a);
  return matrix_to_assoc(g.vertices, algo::ktruss_adjacency(g.adjacency, k));
}

AssocArray assoc_jaccard(const AssocArray& a) {
  const auto g = align_vertices(a);
  return matrix_to_assoc(g.vertices,
                         algo::jaccard_linalg(la::pattern(
                             la::remove_diag(g.adjacency))));
}

std::map<std::string, double> assoc_degrees(const AssocArray& a) {
  std::map<std::string, double> degrees;
  for (const auto& [key, sum] : a.row_sums()) degrees[key] = sum;
  return degrees;
}

}  // namespace graphulo::core
