#pragma once
// TableMultDataPlane: where the TableMult pipeline reads and writes.
//
// The partitioned merge join of tablemult.cpp is agnostic to whether
// its scans and writers touch a local Instance or cross process
// boundaries — it needs exactly four capabilities: consistent read
// views it can open range scans through, per-partition mutation sinks,
// a way to cut the row space, and table setup/compaction. This
// interface names those capabilities; LocalDataPlane implements them
// over an Instance (the default path, used by table_mult(db, ...)),
// and distributed::ClusterDataPlane implements them over RPC so the
// same kernel runs against a fleet of tablet-server processes.
//
// Exactly-once across partition retries comes in two flavors, selected
// by WriteSession::exactly_once():
//  * false (local BatchWriter): the kernel skips the durable prefix of
//    the partition's deterministic mutation stream client-side (the
//    writer tells it how many mutations landed before the failure);
//  * true (remote writers): resent batches carry (writer id, sequence
//    number) and the owning server skips the already-applied prefix,
//    which composes with per-server batching where a client-side
//    prefix count would not (per-server batches apply out of global
//    stream order). The kernel then always resends from sequence 0.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nosql/iterator.hpp"
#include "nosql/mutation.hpp"
#include "util/fault.hpp"

namespace graphulo::nosql {
class Instance;
}

namespace graphulo::core {

class TableMultDataPlane {
 public:
  /// A pinned, consistent read view over a set of tables: every
  /// open_scan through one view (across all partitions and retries)
  /// sees the same cut of each table.
  class ReadView {
   public:
    virtual ~ReadView() = default;

    /// Seeked iterator over `range` of `table` (one of the tables the
    /// view was opened over).
    virtual nosql::IterPtr open_scan(const std::string& table,
                                     const nosql::Range& range) = 0;
  };

  /// One multiply's write fan-out into the result table: each
  /// partition opens its writer by index, and a retried partition
  /// re-opens the SAME index so exactly-once sinks can dedup the
  /// resent stream.
  class WriteSession {
   public:
    virtual ~WriteSession() = default;

    virtual std::unique_ptr<nosql::MutationSink> open_writer(
        std::size_t partition) = 0;

    /// True when the sinks dedup retried streams themselves (see file
    /// comment); the kernel then keeps its client-side skip at zero.
    virtual bool exactly_once() const noexcept = 0;
  };

  virtual ~TableMultDataPlane() = default;

  virtual bool table_exists(const std::string& table) = 0;

  /// Creates `table` if missing. With `sum_combiner` it is configured
  /// as a TableMult result sink (versioning off, summing combiner at
  /// every scope); otherwise default config. No-op when it exists.
  virtual void ensure_table(const std::string& table, bool sum_combiner) = 0;

  /// Opens one consistent cut of `tables`. `snapshot_isolation` false
  /// reads the live tables instead (pre-MVCC behaviour) where the
  /// plane supports the distinction.
  virtual std::unique_ptr<ReadView> open_read_view(
      const std::vector<std::string>& tables, bool snapshot_isolation) = 0;

  virtual std::unique_ptr<WriteSession> open_write_session(
      const std::string& table) = 0;

  /// Up to `pieces - 1` interior row boundaries cutting `table`'s row
  /// space into contiguous chunks (tablet splits / sampled keys).
  virtual std::vector<std::string> partition_rows(const std::string& table,
                                                  std::size_t pieces) = 0;

  virtual void compact(const std::string& table) = 0;

  /// Retry budget for the plane's control-plane calls (setup,
  /// partitioning, snapshot open).
  virtual util::RetryPolicy retry_policy() const = 0;
};

/// The default plane: everything against one in-process Instance.
class LocalDataPlane : public TableMultDataPlane {
 public:
  explicit LocalDataPlane(nosql::Instance& db) : db_(db) {}

  bool table_exists(const std::string& table) override;
  void ensure_table(const std::string& table, bool sum_combiner) override;
  std::unique_ptr<ReadView> open_read_view(
      const std::vector<std::string>& tables,
      bool snapshot_isolation) override;
  std::unique_ptr<WriteSession> open_write_session(
      const std::string& table) override;
  std::vector<std::string> partition_rows(const std::string& table,
                                          std::size_t pieces) override;
  void compact(const std::string& table) override;
  util::RetryPolicy retry_policy() const override;

  nosql::Instance& instance() noexcept { return db_; }

 private:
  nosql::Instance& db_;
};

}  // namespace graphulo::core
