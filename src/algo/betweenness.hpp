#pragma once
// Betweenness centrality — the linear-algebraic (Brandes) formulation
// the paper cites from Kepner & Gilbert [9]: a forward sparse-frontier
// sweep counting shortest paths per BFS level, then a backward sweep
// accumulating dependencies, all expressed as SpMSpV/eWise operations.
// A classical queue-based Brandes baseline is provided for validation.

#include <vector>

#include "la/spmat.hpp"
#include "la/types.hpp"

namespace graphulo::algo {

/// Exact betweenness centrality of an unweighted directed graph,
/// computed from the given source set (pass all vertices for the full
/// metric; a sample for the approximate one). Endpoints excluded, no
/// 1/2 normalization (undirected callers can halve).
std::vector<double> betweenness_centrality(
    const la::SpMat<double>& a, const std::vector<la::Index>& sources);

/// Convenience: all-sources exact betweenness.
std::vector<double> betweenness_centrality(const la::SpMat<double>& a);

/// Classical Brandes algorithm (queue + adjacency lists); reference
/// implementation for tests and the bench baseline.
std::vector<double> betweenness_brandes_baseline(
    const la::SpMat<double>& a, const std::vector<la::Index>& sources);

}  // namespace graphulo::algo
