#include "algo/nomination.hpp"

#include <algorithm>
#include <stdexcept>

#include "la/spmv.hpp"

namespace graphulo::algo {

using la::Index;
using la::SpMat;

std::vector<Nomination> vertex_nomination(const SpMat<double>& a,
                                          const std::vector<Index>& cues,
                                          std::size_t top_k, double beta) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("vertex_nomination: square matrix");
  }
  const auto nn = static_cast<std::size_t>(a.rows());
  std::vector<double> cue(nn, 0.0);
  std::vector<char> is_cue(nn, 0);
  for (Index c : cues) {
    if (c < 0 || c >= a.rows()) {
      throw std::out_of_range("vertex_nomination: cue vertex");
    }
    cue[static_cast<std::size_t>(c)] = 1.0;
    is_cue[static_cast<std::size_t>(c)] = 1;
  }
  const auto one_hop = la::spmv<la::PlusTimes<double>>(a, cue);
  const auto two_hop = la::spmv<la::PlusTimes<double>>(a, one_hop);
  std::vector<Nomination> ranked;
  for (std::size_t v = 0; v < nn; ++v) {
    if (is_cue[v]) continue;
    const double score = one_hop[v] + beta * two_hop[v];
    if (score > 0.0) ranked.push_back({static_cast<Index>(v), score});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Nomination& x, const Nomination& y) {
              if (x.score != y.score) return x.score > y.score;
              return x.vertex < y.vertex;
            });
  if (ranked.size() > top_k) ranked.resize(top_k);
  return ranked;
}

}  // namespace graphulo::algo
