#include "algo/svd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "la/norms.hpp"
#include "la/spmv.hpp"
#include "util/rng.hpp"

namespace graphulo::algo {

using la::Index;
using la::SpMat;

namespace {

/// Removes the projections of `x` onto previous right singular vectors.
void deflate(std::vector<double>& x,
             const std::vector<SingularTriplet>& previous) {
  for (const auto& trip : previous) {
    const double coeff = la::dot(x, trip.v);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] -= coeff * trip.v[i];
    }
  }
}

}  // namespace

std::vector<SingularTriplet> svd_truncated(const SpMat<double>& a,
                                           SvdOptions options) {
  if (options.rank < 1) throw std::invalid_argument("svd: rank >= 1");
  const auto at = la::transpose(a);
  util::Xoshiro256 rng(options.seed);
  std::vector<SingularTriplet> triplets;

  const int rank = std::min<int>(options.rank, std::min(a.rows(), a.cols()));
  for (int component = 0; component < rank; ++component) {
    std::vector<double> v(static_cast<std::size_t>(a.cols()));
    for (auto& x : v) x = rng.uniform(-1.0, 1.0);
    deflate(v, triplets);
    if (la::normalize2(v) == 0.0) break;

    double sigma = 0.0;
    for (int it = 0; it < options.max_iterations; ++it) {
      // One power sweep on A^T A: v <- A^T (A v), deflated + normalized.
      auto av = la::spmv<la::PlusTimes<double>>(a, v);
      auto next = la::spmv<la::PlusTimes<double>>(at, av);
      deflate(next, triplets);
      const double norm = la::normalize2(next);
      const double new_sigma = std::sqrt(norm);
      v = std::move(next);
      const bool converged =
          sigma > 0.0 &&
          std::abs(new_sigma - sigma) <= options.tolerance * new_sigma;
      sigma = new_sigma;
      if (converged) break;
    }
    if (sigma <= 0.0) break;  // matrix exhausted (rank < requested)

    SingularTriplet trip;
    trip.sigma = sigma;
    trip.v = v;
    trip.u = la::spmv<la::PlusTimes<double>>(a, v);
    const double unorm = la::normalize2(trip.u);
    if (unorm == 0.0) break;
    trip.sigma = unorm;  // ||A v|| is the sharper sigma estimate
    triplets.push_back(std::move(trip));
  }
  return triplets;
}

double svd_residual(const SpMat<double>& a,
                    const std::vector<SingularTriplet>& triplets) {
  // ||A - sum sigma_k u_k v_k^T||_F^2
  //   = ||A||_F^2 - 2 sum sigma_k u_k^T A v_k + sum_jk sigma_j sigma_k
  //     (u_j.u_k)(v_j.v_k) — computed directly, no dense materialization.
  double total = la::fro_norm(a);
  total *= total;
  for (const auto& t : triplets) {
    const auto av = la::spmv<la::PlusTimes<double>>(a, t.v);
    total -= 2.0 * t.sigma * la::dot(t.u, av);
  }
  for (const auto& j : triplets) {
    for (const auto& k : triplets) {
      total += j.sigma * k.sigma * la::dot(j.u, k.u) * la::dot(j.v, k.v);
    }
  }
  return std::sqrt(std::max(0.0, total));
}

}  // namespace graphulo::algo
