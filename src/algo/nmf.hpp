#pragma once
// Non-negative matrix factorization for topic modeling — Algorithms 3
// and 5 of the paper (Section III-D): A (m x n, sparse, nonnegative) is
// factored as A ~ W H with W (m x k), H (k x n) nonnegative. The
// paper's variant solves the alternating least-squares normal equations
//     H = (W^T W)^{-1} W^T A,     W^T = (H H^T)^{-1} H A^T
// with the matrix inverses computed by the Newton-Schulz iteration of
// Algorithm 4 and negatives clipped to zero after each solve. A
// multiplicative-update (Lee-Seung) solver is included as the ablation
// arm: it needs no inverse and cannot go negative, at the cost of slower
// per-iteration progress.

#include <cstdint>
#include <string>
#include <vector>

#include "la/dense.hpp"
#include "la/spmat.hpp"

namespace graphulo::algo {

/// NMF solver options.
struct NmfOptions {
  int rank = 5;              ///< k, the number of topics
  int max_iterations = 100;
  double tolerance = 1e-4;   ///< stop when ||A - WH||_F improves less than this
  std::uint64_t seed = 13;   ///< W initialization
  /// Ridge added to the Gram matrices before inversion; keeps the
  /// Newton-Schulz solve well-posed when a topic column collapses.
  double ridge = 1e-6;
};

/// An NMF factorization.
struct NmfResult {
  la::Dense<double> w;  ///< m x k
  la::Dense<double> h;  ///< k x n
  std::vector<double> residual_history;  ///< ||A - WH||_F per iteration
  int iterations = 0;
  bool converged = false;
};

/// Algorithm 5: ALS with Newton-Schulz inverses and negative clipping.
NmfResult nmf_als_newton(const la::SpMat<double>& a, NmfOptions options = {});

/// Multiplicative-update NMF (Lee-Seung), the inverse-free alternative
/// discussed in Section IV.
NmfResult nmf_multiplicative(const la::SpMat<double>& a,
                             NmfOptions options = {});

/// Hard topic assignment: argmax_k W(i, k) per row (document).
std::vector<int> assign_topics(const la::Dense<double>& w);

/// Topic purity against ground-truth labels: for each learned topic,
/// the fraction of its documents sharing the majority true label,
/// weighted by topic size. 1.0 = perfect separation; 1/#labels ~ chance.
double topic_purity(const std::vector<int>& assigned,
                    const std::vector<int>& truth);

/// Top `count` column indices of H for a topic, by weight — the
/// "top words per topic" table of Fig. 3.
std::vector<la::Index> top_terms(const la::Dense<double>& h, int topic,
                                 std::size_t count);

}  // namespace graphulo::algo
