#include "algo/components.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

namespace graphulo::algo {

using la::Index;
using la::SpMat;

std::vector<Index> connected_components_linalg(const SpMat<double>& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("connected_components: square matrix");
  }
  const Index n = a.rows();
  std::vector<Index> label(static_cast<std::size_t>(n));
  std::iota(label.begin(), label.end(), Index{0});
  // label <- min(label, A (min.select2nd) label) until fixpoint: one
  // sweep is a structure-only SpMV over the (min, select-second)
  // pairing, unrolled here since the "values" are the labels themselves.
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Index> next = label;
    for (Index u = 0; u < n; ++u) {
      for (Index v : a.row_cols(u)) {
        const Index lv = label[static_cast<std::size_t>(v)];
        if (lv < next[static_cast<std::size_t>(u)]) {
          next[static_cast<std::size_t>(u)] = lv;
          changed = true;
        }
      }
    }
    label = std::move(next);
  }
  return label;
}

namespace {
Index find_root(std::vector<Index>& parent, Index x) {
  while (parent[static_cast<std::size_t>(x)] != x) {
    // Path halving.
    parent[static_cast<std::size_t>(x)] =
        parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    x = parent[static_cast<std::size_t>(x)];
  }
  return x;
}
}  // namespace

std::vector<Index> connected_components_baseline(const SpMat<double>& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("connected_components: square matrix");
  }
  const Index n = a.rows();
  std::vector<Index> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), Index{0});
  std::vector<Index> size(static_cast<std::size_t>(n), 1);
  for (const auto& t : a.to_triples()) {
    Index ru = find_root(parent, t.row);
    Index rv = find_root(parent, t.col);
    if (ru == rv) continue;
    if (size[static_cast<std::size_t>(ru)] < size[static_cast<std::size_t>(rv)]) {
      std::swap(ru, rv);
    }
    parent[static_cast<std::size_t>(rv)] = ru;
    size[static_cast<std::size_t>(ru)] += size[static_cast<std::size_t>(rv)];
  }
  // Canonicalize: label = smallest vertex in the component.
  std::vector<Index> label(static_cast<std::size_t>(n));
  std::vector<Index> smallest(static_cast<std::size_t>(n),
                              std::numeric_limits<Index>::max());
  for (Index v = 0; v < n; ++v) {
    const Index r = find_root(parent, v);
    smallest[static_cast<std::size_t>(r)] =
        std::min(smallest[static_cast<std::size_t>(r)], v);
  }
  for (Index v = 0; v < n; ++v) {
    label[static_cast<std::size_t>(v)] =
        smallest[static_cast<std::size_t>(find_root(parent, v))];
  }
  return label;
}

std::size_t component_count(const std::vector<Index>& labels) {
  return std::set<Index>(labels.begin(), labels.end()).size();
}

}  // namespace graphulo::algo
