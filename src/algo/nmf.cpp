#include "algo/nmf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "algo/inverse.hpp"
#include "la/spmm.hpp"
#include "util/rng.hpp"

namespace graphulo::algo {

using la::Dense;
using la::Index;
using la::SpMat;

namespace {

Dense<double> random_nonnegative(Index rows, Index cols, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Dense<double> m(rows, cols);
  for (auto& v : m.data()) v = rng.uniform(0.05, 1.0);
  return m;
}

void clip_negatives(Dense<double>& m) {
  for (auto& v : m.data()) {
    if (v < 0.0) v = 0.0;
  }
}

/// Gram + ridge: M^T M + ridge I for the row-factor solve, or
/// M M^T + ridge I for the column-factor solve (k x k either way).
Dense<double> gram_with_ridge(const Dense<double>& m, bool transpose_first,
                              double ridge) {
  const Dense<double> g = transpose_first
                              ? la::matmul(m.transposed(), m)
                              : la::matmul(m, m.transposed());
  Dense<double> out = g;
  for (Index i = 0; i < out.rows(); ++i) out(i, i) += ridge;
  return out;
}

}  // namespace

NmfResult nmf_als_newton(const SpMat<double>& a, NmfOptions options) {
  if (options.rank < 1) throw std::invalid_argument("nmf: rank >= 1");
  const Index m = a.rows();
  const Index n = a.cols();
  const Index k = options.rank;

  NmfResult result;
  result.w = random_nonnegative(m, k, options.seed);
  result.h = Dense<double>(k, n);

  double prev_residual = std::numeric_limits<double>::infinity();
  for (int it = 0; it < options.max_iterations; ++it) {
    // Solve W^T W H = W^T A for H (Algorithm 3's first normal equation),
    // inverse by Newton-Schulz (Algorithm 4), then clip negatives.
    {
      const auto gram = gram_with_ridge(result.w, /*transpose_first=*/true,
                                        options.ridge);
      const auto inv = newton_inverse(gram).inverse;
      // W^T A: (k x m) * (m x n) via the sparse-aware product.
      const auto wta = la::mmsp(result.w.transposed(), a);
      result.h = la::matmul(inv, wta);
      clip_negatives(result.h);
    }
    // Solve H H^T W^T = H A^T for W, same recipe.
    {
      const auto gram = gram_with_ridge(result.h, /*transpose_first=*/false,
                                        options.ridge);
      const auto inv = newton_inverse(gram).inverse;
      // H A^T = (k x n) * (n x m); compute as (A H^T)^T with the sparse
      // product to avoid materializing A^T.
      const auto aht = la::spmm(a, result.h.transposed());  // m x k
      const auto wt = la::matmul(inv, aht.transposed());    // k x m
      result.w = wt.transposed();
      clip_negatives(result.w);
    }
    const double residual = la::fro_diff_sparse_dense(a, result.w, result.h);
    result.residual_history.push_back(residual);
    result.iterations = it + 1;
    if (std::abs(prev_residual - residual) < options.tolerance) {
      result.converged = true;
      break;
    }
    prev_residual = residual;
  }
  return result;
}

NmfResult nmf_multiplicative(const SpMat<double>& a, NmfOptions options) {
  if (options.rank < 1) throw std::invalid_argument("nmf: rank >= 1");
  const Index m = a.rows();
  const Index n = a.cols();
  const Index k = options.rank;
  constexpr double kFloor = 1e-12;  // avoids division by zero

  NmfResult result;
  result.w = random_nonnegative(m, k, options.seed);
  result.h = random_nonnegative(k, n, options.seed + 1);

  double prev_residual = std::numeric_limits<double>::infinity();
  for (int it = 0; it < options.max_iterations; ++it) {
    // H <- H .* (W^T A) ./ (W^T W H)
    {
      const auto wta = la::mmsp(result.w.transposed(), a);          // k x n
      const auto wtwh = la::matmul(
          la::matmul(result.w.transposed(), result.w), result.h);  // k x n
      for (Index i = 0; i < k; ++i) {
        for (Index j = 0; j < n; ++j) {
          result.h(i, j) *= wta(i, j) / (wtwh(i, j) + kFloor);
        }
      }
    }
    // W <- W .* (A H^T) ./ (W H H^T)
    {
      const auto aht = la::spmm(a, result.h.transposed());           // m x k
      const auto whht = la::matmul(
          result.w, la::matmul(result.h, result.h.transposed()));   // m x k
      for (Index i = 0; i < m; ++i) {
        for (Index j = 0; j < k; ++j) {
          result.w(i, j) *= aht(i, j) / (whht(i, j) + kFloor);
        }
      }
    }
    const double residual = la::fro_diff_sparse_dense(a, result.w, result.h);
    result.residual_history.push_back(residual);
    result.iterations = it + 1;
    if (std::abs(prev_residual - residual) < options.tolerance) {
      result.converged = true;
      break;
    }
    prev_residual = residual;
  }
  return result;
}

std::vector<int> assign_topics(const Dense<double>& w) {
  std::vector<int> topics(static_cast<std::size_t>(w.rows()), 0);
  for (Index i = 0; i < w.rows(); ++i) {
    const auto row = w.row(i);
    topics[static_cast<std::size_t>(i)] = static_cast<int>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return topics;
}

double topic_purity(const std::vector<int>& assigned,
                    const std::vector<int>& truth) {
  if (assigned.size() != truth.size() || assigned.empty()) {
    throw std::invalid_argument("topic_purity: size mismatch");
  }
  // For each learned topic, count the majority ground-truth label.
  std::map<int, std::map<int, std::size_t>> tally;
  for (std::size_t i = 0; i < assigned.size(); ++i) {
    ++tally[assigned[i]][truth[i]];
  }
  std::size_t majority_total = 0;
  for (const auto& [topic, counts] : tally) {
    std::size_t best = 0;
    for (const auto& [label, count] : counts) best = std::max(best, count);
    majority_total += best;
  }
  return static_cast<double>(majority_total) /
         static_cast<double>(assigned.size());
}

std::vector<Index> top_terms(const Dense<double>& h, int topic,
                             std::size_t count) {
  if (topic < 0 || topic >= h.rows()) {
    throw std::out_of_range("top_terms: topic index");
  }
  std::vector<Index> order(static_cast<std::size_t>(h.cols()));
  for (Index j = 0; j < h.cols(); ++j) order[static_cast<std::size_t>(j)] = j;
  std::sort(order.begin(), order.end(), [&](Index x, Index y) {
    return h(topic, x) > h(topic, y);
  });
  order.resize(std::min(count, order.size()));
  return order;
}

}  // namespace graphulo::algo
