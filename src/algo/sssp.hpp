#pragma once
// Shortest paths (Table I, last class) over the tropical (min, +)
// semiring: Bellman-Ford as iterated min-plus SpMV, Floyd-Warshall as a
// min-plus outer-product sweep, Johnson's reweighting for sparse
// all-pairs, and a binary-heap Dijkstra baseline.

#include <optional>
#include <vector>

#include "la/dense.hpp"
#include "la/spmat.hpp"
#include "la/types.hpp"

namespace graphulo::algo {

/// Distances from `source`; unreachable = +infinity. Throws
/// std::runtime_error when a negative cycle is reachable.
std::vector<double> bellman_ford(const la::SpMat<double>& weights,
                                 la::Index source);

/// Dijkstra with a binary heap; requires nonnegative weights (checked).
std::vector<double> dijkstra(const la::SpMat<double>& weights,
                             la::Index source);

/// All-pairs shortest paths, dense Floyd-Warshall over (min, +).
/// Returns an n x n dense matrix (infinity = unreachable). Throws on
/// negative cycles.
la::Dense<double> floyd_warshall(const la::SpMat<double>& weights);

/// Johnson's algorithm: Bellman-Ford reweighting + per-source Dijkstra.
/// Handles negative edges (no negative cycles). Returns the same shape
/// as floyd_warshall.
la::Dense<double> johnson(const la::SpMat<double>& weights);

}  // namespace graphulo::algo
