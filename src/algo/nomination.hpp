#pragma once
// Vertex nomination (Section III-B cites Coppersmith & Priebe [10]):
// rank vertices by association with a set of "cue" vertices. In linear
// algebra this is one or two SpMV hops from the cue indicator vector —
// context score = (direct + discounted 2-hop connectivity to cues).

#include <vector>

#include "la/spmat.hpp"
#include "la/types.hpp"

namespace graphulo::algo {

/// Ranked nomination list entry.
struct Nomination {
  la::Index vertex;
  double score;
};

/// Scores every non-cue vertex as
///   score(v) = (A c)(v) + beta (A^2 c)(v),
/// with c the cue indicator; returns the top_k by score (ties by vertex
/// id). beta discounts 2-hop evidence.
std::vector<Nomination> vertex_nomination(const la::SpMat<double>& a,
                                          const std::vector<la::Index>& cues,
                                          std::size_t top_k,
                                          double beta = 0.5);

}  // namespace graphulo::algo
