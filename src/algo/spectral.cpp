#include "algo/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "la/ewise.hpp"
#include "la/norms.hpp"
#include "la/reduce.hpp"
#include "la/spmv.hpp"
#include "la/structure.hpp"
#include "util/rng.hpp"

namespace graphulo::algo {

using la::Index;
using la::SpMat;

SpMat<double> laplacian(const SpMat<double>& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("laplacian: square matrix");
  }
  return la::subtract(la::diag_matrix(la::row_sums(a)), a);
}

SpectralPartition spectral_bisection(const SpMat<double>& a,
                                     SpectralOptions options) {
  const auto l = laplacian(a);
  const Index n = a.rows();
  const auto nn = static_cast<std::size_t>(n);
  SpectralPartition result;
  if (n == 0) return result;

  // Power iteration on M = cI - L turns the SMALLEST Laplacian
  // eigenvalues into the largest of M; c = 1 + max degree bounds the
  // spectrum. The trivial eigenvector (all ones, eigenvalue c) is
  // projected out each sweep, so the iteration converges to the Fiedler
  // direction.
  const auto deg = la::row_sums(a);
  const double c = 1.0 + *std::max_element(deg.begin(), deg.end());

  util::Xoshiro256 rng(options.seed);
  std::vector<double> x(nn);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  auto deflate_ones = [&](std::vector<double>& v) {
    const double mean = la::vec_sum(v) / static_cast<double>(n);
    for (auto& e : v) e -= mean;
  };
  deflate_ones(x);
  la::normalize2(x);

  for (int it = 0; it < options.max_iterations; ++it) {
    // y = c x - L x.
    auto lx = la::spmv<la::PlusTimes<double>>(l, x);
    std::vector<double> y(nn);
    for (std::size_t i = 0; i < nn; ++i) y[i] = c * x[i] - lx[i];
    deflate_ones(y);
    result.iterations = it + 1;
    const double ny = la::norm2(y);
    if (ny == 0.0) break;  // disconnected in a degenerate way
    const double cosine = std::abs(la::dot(y, x)) / ny;  // x is unit
    for (auto& e : y) e /= ny;
    x = std::move(y);
    if (cosine >= 1.0 - options.tolerance) break;
  }

  // lambda2 = x^T L x (Rayleigh quotient on the unit Fiedler iterate).
  const auto lx = la::spmv<la::PlusTimes<double>>(l, x);
  result.lambda2 = la::dot(x, lx);
  result.side.resize(nn);
  for (std::size_t i = 0; i < nn; ++i) result.side[i] = x[i] >= 0.0 ? 1 : 0;
  result.fiedler = std::move(x);
  return result;
}

double modularity(const SpMat<double>& a, const std::vector<int>& labels) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("modularity: square matrix");
  }
  if (labels.size() != static_cast<std::size_t>(a.rows())) {
    throw std::invalid_argument("modularity: label count");
  }
  const auto deg = la::row_sums(a);
  const double two_m = la::vec_sum(deg);
  if (two_m == 0.0) return 0.0;
  // Sum the A_ij term over stored entries, the degree-product term per
  // community (sum of intra-community degree, squared).
  double intra_weight = 0.0;
  for (const auto& t : a.to_triples()) {
    if (labels[static_cast<std::size_t>(t.row)] ==
        labels[static_cast<std::size_t>(t.col)]) {
      intra_weight += t.val;
    }
  }
  std::map<int, double> community_degree;
  for (std::size_t v = 0; v < labels.size(); ++v) {
    community_degree[labels[v]] += deg[v];
  }
  double degree_term = 0.0;
  for (const auto& [label, d] : community_degree) degree_term += d * d;
  return intra_weight / two_m - degree_term / (two_m * two_m);
}

}  // namespace graphulo::algo
