#include "algo/traversal.hpp"

#include <queue>
#include <stack>
#include <stdexcept>

#include "la/spmv.hpp"
#include "la/spvec.hpp"

namespace graphulo::algo {

using la::Index;
using la::SpMat;
using la::SpVec;

namespace {
void check_source(const SpMat<double>& a, Index source) {
  if (a.rows() != a.cols()) throw std::invalid_argument("bfs: square matrix");
  if (source < 0 || source >= a.rows()) {
    throw std::out_of_range("bfs: source vertex");
  }
}
}  // namespace

BfsResult bfs_linalg(const SpMat<double>& a, Index source) {
  check_source(a, source);
  const auto nn = static_cast<std::size_t>(a.rows());
  BfsResult result;
  result.level.assign(nn, -1);
  result.parent.assign(nn, -1);
  result.level[static_cast<std::size_t>(source)] = 0;

  // Frontier values carry the PARENT id (+1, so 0 stays "no value"):
  // the min-parent convention resolves ties deterministically.
  SpVec<double> frontier(a.rows());
  frontier.push_back(source, static_cast<double>(source) + 1.0);
  int level = 0;
  while (!frontier.empty()) {
    ++level;
    // Expand: candidate(v) = min over frontier u with edge u->v of (u+1).
    // min.x over the structure: multiply passes the parent id through.
    std::vector<std::pair<Index, double>> candidates;
    for (std::size_t k = 0; k < frontier.indices().size(); ++k) {
      const Index u = frontier.indices()[k];
      for (Index v : a.row_cols(u)) {
        candidates.emplace_back(v, static_cast<double>(u) + 1.0);
      }
    }
    auto expanded = SpVec<double>::from_pairs(
        a.rows(), std::move(candidates),
        [](double x, double y) { return x < y ? x : y; });
    SpVec<double> next(a.rows());
    for (std::size_t k = 0; k < expanded.indices().size(); ++k) {
      const Index v = expanded.indices()[k];
      if (result.level[static_cast<std::size_t>(v)] == -1) {
        result.level[static_cast<std::size_t>(v)] = level;
        result.parent[static_cast<std::size_t>(v)] =
            static_cast<Index>(expanded.values()[k] - 1.0);
        next.push_back(v, expanded.values()[k]);
      }
    }
    if (!next.empty()) result.max_level = level;
    frontier = std::move(next);
  }
  return result;
}

BfsResult bfs_classic(const SpMat<double>& a, Index source) {
  check_source(a, source);
  const auto nn = static_cast<std::size_t>(a.rows());
  BfsResult result;
  result.level.assign(nn, -1);
  result.parent.assign(nn, -1);
  result.level[static_cast<std::size_t>(source)] = 0;
  std::queue<Index> queue;
  queue.push(source);
  while (!queue.empty()) {
    const Index u = queue.front();
    queue.pop();
    for (Index v : a.row_cols(u)) {
      auto& lv = result.level[static_cast<std::size_t>(v)];
      if (lv == -1) {
        lv = result.level[static_cast<std::size_t>(u)] + 1;
        result.parent[static_cast<std::size_t>(v)] = u;
        result.max_level = std::max(result.max_level, lv);
        queue.push(v);
      }
    }
  }
  return result;
}

std::vector<Index> dfs_preorder(const SpMat<double>& a, Index source) {
  check_source(a, source);
  std::vector<char> visited(static_cast<std::size_t>(a.rows()), 0);
  std::vector<Index> order;
  std::stack<Index> stack;
  stack.push(source);
  while (!stack.empty()) {
    const Index u = stack.top();
    stack.pop();
    if (visited[static_cast<std::size_t>(u)]) continue;
    visited[static_cast<std::size_t>(u)] = 1;
    order.push_back(u);
    // Push in reverse so the lowest-numbered neighbor is visited first.
    const auto cols = a.row_cols(u);
    for (std::size_t k = cols.size(); k > 0; --k) {
      if (!visited[static_cast<std::size_t>(cols[k - 1])]) {
        stack.push(cols[k - 1]);
      }
    }
  }
  return order;
}

std::vector<Index> k_hop_neighborhood(const SpMat<double>& a,
                                      const std::vector<Index>& seeds,
                                      int hops) {
  std::vector<char> seen(static_cast<std::size_t>(a.rows()), 0);
  SpVec<double> frontier = SpVec<double>::from_pairs(a.rows(), [&] {
    std::vector<std::pair<Index, double>> pairs;
    for (Index s : seeds) pairs.emplace_back(s, 1.0);
    return pairs;
  }());
  for (Index s : seeds) seen[static_cast<std::size_t>(s)] = 1;
  for (int h = 0; h < hops && !frontier.empty(); ++h) {
    auto expanded = la::spmspv<la::OrAndDouble>(frontier, a);
    SpVec<double> next(a.rows());
    for (Index v : expanded.indices()) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        next.push_back(v, 1.0);
      }
    }
    frontier = std::move(next);
  }
  std::vector<Index> out;
  for (Index v = 0; v < a.rows(); ++v) {
    if (seen[static_cast<std::size_t>(v)]) out.push_back(v);
  }
  return out;
}

}  // namespace graphulo::algo
