#pragma once
// Spectral bisection — the eigen-analysis side of Table I's Community
// Detection class (the paper's references [11][12] analyze planted
// clusters through eigenstructure). The Fiedler vector (second-smallest
// Laplacian eigenvector) is computed with the same power-iteration
// machinery as the other Section III-A metrics: iterate on (cI - L)
// with the trivial all-ones eigenvector deflated out, then split
// vertices by sign.

#include <cstdint>
#include <vector>

#include "la/spmat.hpp"
#include "la/types.hpp"

namespace graphulo::algo {

/// Options for the Fiedler computation.
struct SpectralOptions {
  int max_iterations = 500;
  double tolerance = 1e-10;  ///< cosine criterion, as in Section III-A
  std::uint64_t seed = 31;
};

/// Result of a spectral bisection.
struct SpectralPartition {
  std::vector<double> fiedler;  ///< the Fiedler vector (unit norm)
  std::vector<int> side;        ///< 0/1 partition by sign of fiedler
  double lambda2 = 0.0;         ///< algebraic connectivity estimate
  int iterations = 0;
};

/// Combinatorial Laplacian L = diag(degrees) - A of an undirected graph.
la::SpMat<double> laplacian(const la::SpMat<double>& a);

/// Fiedler vector and sign bisection of an undirected graph.
SpectralPartition spectral_bisection(const la::SpMat<double>& a,
                                     SpectralOptions options = {});

/// Newman modularity Q of a vertex partition (labels need not be
/// contiguous) over an undirected weighted graph:
///   Q = (1/2m) sum_ij [A_ij - d_i d_j / 2m] [c_i == c_j].
/// Q ~ 0 for random structure, larger when communities are denser than
/// chance. Empty graphs score 0.
double modularity(const la::SpMat<double>& a, const std::vector<int>& labels);

}  // namespace graphulo::algo
