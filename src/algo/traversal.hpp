#pragma once
// Exploration & traversal (Table I, class 1): BFS as iterated SpMSpV
// over the boolean structure of the adjacency matrix, with parent
// tracking; classical queue BFS and stack DFS baselines.

#include <vector>

#include "la/spmat.hpp"
#include "la/types.hpp"

namespace graphulo::algo {

/// BFS output: per-vertex hop distance (-1 = unreachable) and a parent
/// tree (-1 = root or unreachable).
struct BfsResult {
  std::vector<int> level;
  std::vector<la::Index> parent;
  int max_level = 0;
};

/// Linear-algebraic BFS: frontier expansion is one SpMSpV per level,
/// masked by the visited set. Edge weights are ignored (structure only).
BfsResult bfs_linalg(const la::SpMat<double>& a, la::Index source);

/// Classical queue-based BFS baseline.
BfsResult bfs_classic(const la::SpMat<double>& a, la::Index source);

/// Depth-first search (classical, iterative). DFS's vertex-at-a-time
/// discipline has no natural bulk linear-algebraic form — the paper
/// lists it under Exploration & Traversal; we provide it for coverage.
/// Returns vertices in preorder of discovery.
std::vector<la::Index> dfs_preorder(const la::SpMat<double>& a,
                                    la::Index source);

/// Vertices within k hops of the seed set (seeds included) — the
/// adjacency BFS Graphulo runs on tables, here in matrix form.
std::vector<la::Index> k_hop_neighborhood(const la::SpMat<double>& a,
                                          const std::vector<la::Index>& seeds,
                                          int hops);

}  // namespace graphulo::algo
