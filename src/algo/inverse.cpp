#include "algo/inverse.hpp"

#include <cmath>
#include <stdexcept>

namespace graphulo::algo {

using la::Dense;
using la::Index;

InverseResult newton_inverse(const Dense<double>& a, double epsilon,
                             int max_iterations) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("newton_inverse: square matrix");
  }
  const Index n = a.rows();
  InverseResult result;
  // X_1 = A^T / (||A_row|| * ||A_col||): guarantees the spectral radius
  // of (I - X_1 A) is below 1 for nonsingular A, so the iteration
  // contracts (quadratically once close).
  const double scale = la::max_row_sum(a) * la::max_col_sum(a);
  if (scale == 0.0) {
    throw std::invalid_argument("newton_inverse: zero matrix");
  }
  Dense<double> x = a.transposed();
  for (auto& v : x.data()) v /= scale;

  const auto eye2 = [&] {
    Dense<double> m = Dense<double>::eye(n);
    for (auto& v : m.data()) v *= 2.0;
    return m;
  }();

  for (int it = 0; it < max_iterations; ++it) {
    // X_{t+1} = X_t (2I - A X_t).
    const auto ax = la::matmul(a, x);
    const auto bracket = la::lincomb(1.0, eye2, -1.0, ax);
    auto next = la::matmul(x, bracket);
    result.iterations = it + 1;
    result.final_delta = la::fro_diff(next, x);
    x = std::move(next);
    if (result.final_delta <= epsilon) {
      result.converged = true;
      break;
    }
    if (!std::isfinite(result.final_delta)) break;  // diverged
  }
  result.inverse = std::move(x);
  return result;
}

Dense<double> gauss_jordan_inverse(const Dense<double>& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("gauss_jordan_inverse: square matrix");
  }
  const Index n = a.rows();
  Dense<double> work = a;
  Dense<double> inv = Dense<double>::eye(n);
  for (Index col = 0; col < n; ++col) {
    // Partial pivot.
    Index pivot = col;
    for (Index r = col + 1; r < n; ++r) {
      if (std::abs(work(r, col)) > std::abs(work(pivot, col))) pivot = r;
    }
    if (std::abs(work(pivot, col)) < 1e-14) {
      throw std::runtime_error("gauss_jordan_inverse: singular matrix");
    }
    if (pivot != col) {
      for (Index j = 0; j < n; ++j) {
        std::swap(work(pivot, j), work(col, j));
        std::swap(inv(pivot, j), inv(col, j));
      }
    }
    const double p = work(col, col);
    for (Index j = 0; j < n; ++j) {
      work(col, j) /= p;
      inv(col, j) /= p;
    }
    for (Index r = 0; r < n; ++r) {
      if (r == col) continue;
      const double factor = work(r, col);
      if (factor == 0.0) continue;
      for (Index j = 0; j < n; ++j) {
        work(r, j) -= factor * work(col, j);
        inv(r, j) -= factor * inv(col, j);
      }
    }
  }
  return inv;
}

}  // namespace graphulo::algo
