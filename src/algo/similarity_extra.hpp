#pragma once
// Additional Similarity/Prediction-class algorithms from Table I beyond
// Jaccard: SimRank ("two objects are similar if they are referenced by
// similar objects") and Adamic-Adar link prediction (common neighbors
// weighted by rarity). Both are pure compositions of the GraphBLAS
// kernel set.

#include <vector>

#include "la/dense.hpp"
#include "la/spmat.hpp"
#include "la/types.hpp"

namespace graphulo::algo {

/// SimRank options.
struct SimRankOptions {
  double decay = 0.8;   ///< C in Jeh-Widom's formulation
  int max_iterations = 20;
  double tolerance = 1e-6;  ///< max-entry change between sweeps
};

/// SimRank on a directed graph: the fixpoint of
///   S = max(C * W^T S W, I)   with W the column-normalized adjacency,
/// computed by the iterative method on a dense S (n is expected to be
/// modest; SimRank is inherently O(n^2) in output). Returns the
/// symmetric similarity matrix with unit diagonal.
la::Dense<double> simrank(const la::SpMat<double>& a,
                          SimRankOptions options = {});

/// Adamic-Adar index for all vertex pairs at distance 2 in an
/// undirected simple graph:
///   AA(i,j) = sum over common neighbors w of 1 / log(deg(w)),
/// expressible as A * diag(1/log d) * A restricted off-diagonal.
/// Degree-1 common neighbors (log 0) contribute nothing.
la::SpMat<double> adamic_adar(const la::SpMat<double>& a);

/// Top-k non-adjacent pairs by Adamic-Adar score (link prediction).
struct ScoredPair {
  la::Index u, v;
  double score;
};
std::vector<ScoredPair> adamic_adar_predict(const la::SpMat<double>& a,
                                            std::size_t top_k);

}  // namespace graphulo::algo
