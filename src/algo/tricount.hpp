#pragma once
// Triangle counting — the primitive underlying k-truss support and
// clique detection (Section III-B). Two linear-algebraic forms plus a
// set-intersection baseline.

#include <cstdint>

#include "la/spmat.hpp"

namespace graphulo::algo {

/// Triangle count via trace(A^3)/6 on a symmetric 0/1 adjacency matrix.
std::uint64_t triangle_count_trace(const la::SpMat<double>& a);

/// Triangle count via the masked form sum(L .* (L * U)) with L/U the
/// strict lower/upper triangles — the standard GraphBLAS formulation
/// (each triangle counted exactly once). Fused onto spgemm_masked so
/// the open-wedge matrix L * U is never allocated.
std::uint64_t triangle_count_masked(const la::SpMat<double>& a);

/// Baseline: sorted-neighborhood intersection per edge.
std::uint64_t triangle_count_baseline(const la::SpMat<double>& a);

}  // namespace graphulo::algo
