#include "algo/tricount.hpp"

#include <cmath>

#include "la/ewise.hpp"
#include "la/reduce.hpp"
#include "la/spgemm.hpp"
#include "la/structure.hpp"

namespace graphulo::algo {

using la::Index;
using la::SpMat;

std::uint64_t triangle_count_trace(const SpMat<double>& a) {
  // trace(A^3) counts each triangle 6 times (3 vertices x 2 directions).
  const auto a2 = la::spgemm<la::PlusTimes<double>>(a, a);
  double trace = 0.0;
  // trace(A^2 * A) = sum_ij A2(i,j) * A(j,i); A symmetric -> A(j,i)=A(i,j),
  // so this is the elementwise-product sum — no third SpGEMM needed.
  const auto mask = la::hadamard(a2, a);
  trace = la::reduce_all(mask, [](double x, double y) { return x + y; });
  return static_cast<std::uint64_t>(std::llround(trace / 6.0));
}

std::uint64_t triangle_count_masked(const SpMat<double>& a) {
  const auto l = la::tril(a);
  const auto u = la::triu(a);
  // C<L> = L * U fused: the mask prunes open wedges inside the SpGEMM,
  // so only closed wedges (triangles) are ever accumulated — the full
  // wedge matrix L * U is never materialized.
  const auto closed = la::spgemm_masked<la::PlusTimes<double>>(l, u, l);
  const double total =
      la::reduce_all(closed, [](double x, double y) { return x + y; });
  return static_cast<std::uint64_t>(std::llround(total));
}

std::uint64_t triangle_count_baseline(const SpMat<double>& a) {
  std::uint64_t count = 0;
  for (Index u = 0; u < a.rows(); ++u) {
    const auto nu = a.row_cols(u);
    for (Index v : nu) {
      if (v <= u) continue;
      const auto nv = a.row_cols(v);
      std::size_t p = 0, q = 0;
      while (p < nu.size() && q < nv.size()) {
        if (nu[p] < nv[q]) {
          ++p;
        } else if (nu[p] > nv[q]) {
          ++q;
        } else {
          if (nu[p] > v) ++count;  // w > v > u: count each triangle once
          ++p;
          ++q;
        }
      }
    }
  }
  return count;
}

}  // namespace graphulo::algo
