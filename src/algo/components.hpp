#pragma once
// Connected components via label propagation over a (min, select)
// semiring-style sweep — each vertex repeatedly adopts the smallest
// label in its closed neighborhood, which is SpMV over (min, *pass*) —
// plus a union-find baseline.

#include <vector>

#include "la/spmat.hpp"
#include "la/types.hpp"

namespace graphulo::algo {

/// Component id per vertex (the smallest vertex index in the component),
/// computed by min-label propagation; O(diameter) SpMV sweeps.
std::vector<la::Index> connected_components_linalg(const la::SpMat<double>& a);

/// Union-find baseline (path halving + union by size).
std::vector<la::Index> connected_components_baseline(const la::SpMat<double>& a);

/// Number of distinct components in a labeling.
std::size_t component_count(const std::vector<la::Index>& labels);

}  // namespace graphulo::algo
