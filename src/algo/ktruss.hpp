#pragma once
// k-truss subgraph detection — Algorithm 1 of the paper (Section III-B).
//
// The linear-algebraic algorithm works on the unoriented incidence
// matrix E: edge supports are read off R = E*A as the count of entries
// equal to 2 per row ((R == 2)*1), edges below support k-2 are removed
// with SpRef, and R is updated INCREMENTALLY via
//     R <- R(xc, :) - E [ E_x^T E_x - diag(d_x) ]
// instead of recomputing E*A from scratch — the optimization the paper
// derives from A = E^T E - diag(d). Both the incremental form and the
// recompute-every-round form are exposed (the bench ablates them), plus
// the classical edge-peeling algorithm of Wang & Cheng [13] as baseline,
// and the full truss decomposition driver described in the text.

#include <vector>

#include "la/spmat.hpp"
#include "la/types.hpp"

namespace graphulo::algo {

/// Builds the unoriented incidence matrix of a simple undirected graph
/// given by a symmetric 0/1 adjacency matrix: one row per edge (upper-
/// triangle order), 1s at both endpoint columns.
la::SpMat<double> incidence_from_adjacency(const la::SpMat<double>& a);

/// Rebuilds the adjacency matrix from an unoriented incidence matrix
/// via the paper's identity A = E^T E - diag(sum(E)).
la::SpMat<double> adjacency_from_incidence(const la::SpMat<double>& e,
                                           la::Index n);

/// Statistics from one k-truss run.
struct KTrussStats {
  int rounds = 0;               ///< while-loop iterations
  la::Index edges_removed = 0;  ///< total edges deleted
};

/// Algorithm 1: k-truss of the graph with unoriented incidence matrix E.
/// Returns the incidence matrix of the k-truss subgraph. `use_incremental_update`
/// selects the paper's R update (true) or a full R = E*A recompute per
/// round (false); both produce identical results.
la::SpMat<double> ktruss_incidence(const la::SpMat<double>& e, int k,
                                   KTrussStats* stats = nullptr,
                                   bool use_incremental_update = true);

/// Convenience: k-truss as a 0/1 adjacency matrix, from an adjacency
/// matrix.
la::SpMat<double> ktruss_adjacency(const la::SpMat<double>& a, int k,
                                   KTrussStats* stats = nullptr);

/// Classical baseline: Wang-Cheng edge peeling with hash-set triangle
/// counting, peeling lowest-support edges first. Returns the k-truss
/// adjacency matrix.
la::SpMat<double> ktruss_peeling_baseline(const la::SpMat<double>& a, int k);

/// The Section IV optimization made concrete: when computing E*A, "it
/// would be more efficient to only consider the additions that yield a
/// 2". A fused support kernel does exactly that — for each edge (u, v)
/// it intersects the sorted adjacency rows of u and v, producing the
/// support vector s directly without materializing R or the (R == 2)
/// indicator. Semantically identical to Algorithm 1's s; ablated in
/// bench_fig1_ktruss.
std::vector<double> ktruss_support_fused(const la::SpMat<double>& a,
                                         const std::vector<std::pair<la::Index, la::Index>>& edges);

/// k-truss driver using the fused support kernel (same simultaneous-
/// removal rounds as Algorithm 1, same result).
la::SpMat<double> ktruss_adjacency_fused(const la::SpMat<double>& a, int k,
                                         KTrussStats* stats = nullptr);

/// Full truss decomposition (Section III-B): the maximal k such that an
/// edge belongs to a k-truss, for every edge. Computed by running
/// Algorithm 1 for k = 3, 4, ... on the shrinking graph until empty.
/// Returns per-edge truss numbers aligned with the upper-triangle edge
/// order of `a`, and the maximum truss number found.
struct TrussDecomposition {
  std::vector<std::pair<la::Index, la::Index>> edges;  ///< (u, v), u < v
  std::vector<int> truss_number;  ///< >= 2, aligned with edges
  int max_k = 2;
};
TrussDecomposition truss_decomposition(const la::SpMat<double>& a);

}  // namespace graphulo::algo
