#include "algo/betweenness.hpp"

#include <queue>
#include <stdexcept>

#include "la/spmv.hpp"
#include "la/spvec.hpp"

namespace graphulo::algo {

using la::Index;
using la::SpMat;
using la::SpVec;

std::vector<double> betweenness_centrality(const SpMat<double>& a,
                                           const std::vector<Index>& sources) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("betweenness_centrality: square matrix");
  }
  const Index n = a.rows();
  const auto nn = static_cast<std::size_t>(n);
  std::vector<double> bc(nn, 0.0);
  const auto at = la::transpose(a);  // for the backward sweep

  for (Index s : sources) {
    if (s < 0 || s >= n) {
      throw std::out_of_range("betweenness_centrality: source");
    }
    // Forward sweep: frontier-by-frontier path counting.
    // sigma[v] = number of shortest s->v paths; depth[v] = BFS level.
    std::vector<double> sigma(nn, 0.0);
    std::vector<int> depth(nn, -1);
    std::vector<SpVec<double>> frontiers;
    SpVec<double> frontier(n);
    frontier.push_back(s, 1.0);
    sigma[static_cast<std::size_t>(s)] = 1.0;
    depth[static_cast<std::size_t>(s)] = 0;
    int level = 0;
    while (!frontier.empty()) {
      frontiers.push_back(frontier);
      // Candidate counts: paths extended one hop (SpMSpV over +.x).
      auto expanded = la::spmspv<la::PlusTimes<double>>(frontier, a);
      // Mask to unvisited vertices; record sigma and the new frontier.
      SpVec<double> next(n);
      ++level;
      for (std::size_t k = 0; k < expanded.indices().size(); ++k) {
        const Index v = expanded.indices()[k];
        const double paths = expanded.values()[k];
        auto& dv = depth[static_cast<std::size_t>(v)];
        if (dv == -1) {
          dv = level;
          sigma[static_cast<std::size_t>(v)] = paths;
          next.push_back(v, paths);
        } else if (dv == level) {
          sigma[static_cast<std::size_t>(v)] += paths;
        }
      }
      frontier = std::move(next);
    }

    // Backward sweep: delta(v) = sum over successors w one level deeper
    // of sigma(v)/sigma(w) * (1 + delta(w)).
    std::vector<double> delta(nn, 0.0);
    for (auto it = frontiers.rbegin(); it != frontiers.rend(); ++it) {
      const auto& wave = *it;
      // Coefficients (1 + delta(w)) / sigma(w) for vertices of this
      // level, pushed back along incoming edges (SpMSpV over A^T).
      SpVec<double> coeff(n);
      for (std::size_t k = 0; k < wave.indices().size(); ++k) {
        const Index w = wave.indices()[k];
        const double sw = sigma[static_cast<std::size_t>(w)];
        if (sw > 0.0) {
          coeff.push_back(w, (1.0 + delta[static_cast<std::size_t>(w)]) / sw);
        }
      }
      auto pushed = la::spmspv<la::PlusTimes<double>>(coeff, at);
      const int wave_depth = depth[static_cast<std::size_t>(wave.indices()[0])];
      for (std::size_t k = 0; k < pushed.indices().size(); ++k) {
        const Index v = pushed.indices()[k];
        if (depth[static_cast<std::size_t>(v)] == wave_depth - 1) {
          delta[static_cast<std::size_t>(v)] +=
              sigma[static_cast<std::size_t>(v)] * pushed.values()[k];
        }
      }
    }
    for (std::size_t v = 0; v < nn; ++v) {
      if (static_cast<Index>(v) != s) bc[v] += delta[v];
    }
  }
  return bc;
}

std::vector<double> betweenness_centrality(const SpMat<double>& a) {
  std::vector<Index> sources(static_cast<std::size_t>(a.rows()));
  for (Index i = 0; i < a.rows(); ++i) sources[static_cast<std::size_t>(i)] = i;
  return betweenness_centrality(a, sources);
}

std::vector<double> betweenness_brandes_baseline(
    const SpMat<double>& a, const std::vector<Index>& sources) {
  const Index n = a.rows();
  const auto nn = static_cast<std::size_t>(n);
  std::vector<double> bc(nn, 0.0);
  for (Index s : sources) {
    std::vector<std::vector<Index>> predecessors(nn);
    std::vector<double> sigma(nn, 0.0);
    std::vector<int> dist(nn, -1);
    std::vector<Index> order;
    std::queue<Index> queue;
    sigma[static_cast<std::size_t>(s)] = 1.0;
    dist[static_cast<std::size_t>(s)] = 0;
    queue.push(s);
    while (!queue.empty()) {
      const Index v = queue.front();
      queue.pop();
      order.push_back(v);
      for (Index w : a.row_cols(v)) {
        auto& dw = dist[static_cast<std::size_t>(w)];
        if (dw < 0) {
          dw = dist[static_cast<std::size_t>(v)] + 1;
          queue.push(w);
        }
        if (dw == dist[static_cast<std::size_t>(v)] + 1) {
          sigma[static_cast<std::size_t>(w)] += sigma[static_cast<std::size_t>(v)];
          predecessors[static_cast<std::size_t>(w)].push_back(v);
        }
      }
    }
    std::vector<double> delta(nn, 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const Index w = *it;
      for (Index v : predecessors[static_cast<std::size_t>(w)]) {
        delta[static_cast<std::size_t>(v)] +=
            sigma[static_cast<std::size_t>(v)] /
            sigma[static_cast<std::size_t>(w)] *
            (1.0 + delta[static_cast<std::size_t>(w)]);
      }
      if (w != s) bc[static_cast<std::size_t>(w)] += delta[static_cast<std::size_t>(w)];
    }
  }
  return bc;
}

}  // namespace graphulo::algo
