#include "algo/sssp.hpp"

#include <limits>
#include <queue>
#include <stdexcept>

#include "la/semiring.hpp"
#include "la/spmv.hpp"

namespace graphulo::algo {

using la::Dense;
using la::Index;
using la::SpMat;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

void check_square_source(const SpMat<double>& w, Index source) {
  if (w.rows() != w.cols()) throw std::invalid_argument("sssp: square matrix");
  if (source < 0 || source >= w.rows()) {
    throw std::out_of_range("sssp: source vertex");
  }
}
}  // namespace

std::vector<double> bellman_ford(const SpMat<double>& weights, Index source) {
  check_square_source(weights, source);
  using SR = la::MinPlus<double>;
  const Index n = weights.rows();
  std::vector<double> dist(static_cast<std::size_t>(n), kInf);
  dist[static_cast<std::size_t>(source)] = 0.0;
  // n-1 relaxation sweeps: dist <- min(dist, dist^T (min.+) W), the
  // tropical-semiring vector-matrix product (vspm uses row access, which
  // relaxes OUT-edges of every settled vertex).
  for (Index sweep = 0; sweep < n - 1; ++sweep) {
    const auto relaxed = la::vspm<SR>(dist, weights);
    bool changed = false;
    for (std::size_t v = 0; v < dist.size(); ++v) {
      if (relaxed[v] < dist[v]) {
        dist[v] = relaxed[v];
        changed = true;
      }
    }
    if (!changed) return dist;  // converged early
  }
  // One extra sweep detects reachable negative cycles.
  const auto extra = la::vspm<SR>(dist, weights);
  for (std::size_t v = 0; v < dist.size(); ++v) {
    if (extra[v] < dist[v]) {
      throw std::runtime_error("bellman_ford: negative cycle reachable");
    }
  }
  return dist;
}

std::vector<double> dijkstra(const SpMat<double>& weights, Index source) {
  check_square_source(weights, source);
  for (double w : weights.values()) {
    if (w < 0.0) throw std::invalid_argument("dijkstra: negative weight");
  }
  const Index n = weights.rows();
  std::vector<double> dist(static_cast<std::size_t>(n), kInf);
  dist[static_cast<std::size_t>(source)] = 0.0;
  using Item = std::pair<double, Index>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    const auto cols = weights.row_cols(u);
    const auto vals = weights.row_vals(u);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      const double candidate = d + vals[p];
      auto& dv = dist[static_cast<std::size_t>(cols[p])];
      if (candidate < dv) {
        dv = candidate;
        heap.push({candidate, cols[p]});
      }
    }
  }
  return dist;
}

Dense<double> floyd_warshall(const SpMat<double>& weights) {
  if (weights.rows() != weights.cols()) {
    throw std::invalid_argument("floyd_warshall: square matrix");
  }
  const Index n = weights.rows();
  Dense<double> dist(n, n, kInf);
  for (Index i = 0; i < n; ++i) dist(i, i) = 0.0;
  for (const auto& t : weights.to_triples()) {
    dist(t.row, t.col) = std::min(dist(t.row, t.col), t.val);
  }
  for (Index k = 0; k < n; ++k) {
    for (Index i = 0; i < n; ++i) {
      const double dik = dist(i, k);
      if (dik == kInf) continue;
      auto drow = dist.row(i);
      const auto krow = dist.row(k);
      for (Index j = 0; j < n; ++j) {
        const double via = dik + krow[j];
        if (via < drow[j]) drow[j] = via;
      }
    }
  }
  for (Index i = 0; i < n; ++i) {
    if (dist(i, i) < 0.0) {
      throw std::runtime_error("floyd_warshall: negative cycle");
    }
  }
  return dist;
}

Dense<double> johnson(const SpMat<double>& weights) {
  if (weights.rows() != weights.cols()) {
    throw std::invalid_argument("johnson: square matrix");
  }
  const Index n = weights.rows();
  // Potential h from Bellman-Ford on the graph with a virtual source
  // connected to every vertex at weight 0. Equivalent: start all-zeros
  // and run n relaxation sweeps of the original graph.
  using SR = la::MinPlus<double>;
  std::vector<double> h(static_cast<std::size_t>(n), 0.0);
  for (Index sweep = 0; sweep < n; ++sweep) {
    const auto relaxed = la::vspm<SR>(h, weights);
    bool changed = false;
    for (std::size_t v = 0; v < h.size(); ++v) {
      if (relaxed[v] < h[v]) {
        h[v] = relaxed[v];
        changed = true;
      }
    }
    if (!changed) break;
    if (sweep == n - 1) {
      throw std::runtime_error("johnson: negative cycle");
    }
  }
  // Reweight: w'(u,v) = w(u,v) + h(u) - h(v) >= 0.
  std::vector<la::Triple<double>> reweighted;
  for (const auto& t : weights.to_triples()) {
    reweighted.push_back({t.row, t.col,
                          t.val + h[static_cast<std::size_t>(t.row)] -
                              h[static_cast<std::size_t>(t.col)]});
  }
  // Note the explicit "zero" sentinel: a reweighted edge of weight 0.0
  // is a real edge under (min, +) and must not be pruned as structural.
  const auto wprime = SpMat<double>::from_triples(
      n, n, std::move(reweighted), [](double a, double) { return a; }, -kInf);
  Dense<double> dist(n, n, kInf);
  for (Index s = 0; s < n; ++s) {
    const auto d = dijkstra(wprime, s);
    for (Index v = 0; v < n; ++v) {
      const double dv = d[static_cast<std::size_t>(v)];
      dist(s, v) = dv == kInf ? kInf
                              : dv - h[static_cast<std::size_t>(s)] +
                                    h[static_cast<std::size_t>(v)];
    }
  }
  return dist;
}

}  // namespace graphulo::algo
