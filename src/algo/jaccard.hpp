#pragma once
// Jaccard vertex similarity — Algorithm 2 of the paper (Section III-C).
//
// For an unweighted undirected graph, J(i,j) = |N(i)^N(j)|/|N(i)uN(j)|.
// Algorithm 2 exploits symmetry and sparsity: with U = triu(A),
//     J = U^2 + triu(U U^T) + triu(U^T U)
// gives the upper-triangular common-neighbor counts, each nonzero is
// then divided by d_i + d_j - J_ij, and J + J^T removes the order
// dependence. Exposed alongside a naive full-A^2 formulation and a
// hash-set brute-force baseline for the bench ablation.

#include <vector>

#include "la/spmat.hpp"
#include "la/types.hpp"

namespace graphulo::algo {

/// Algorithm 2 verbatim. Input must be a symmetric 0/1 adjacency matrix
/// with empty diagonal. Returns the full symmetric matrix of Jaccard
/// coefficients (zero diagonal).
la::SpMat<double> jaccard_linalg(const la::SpMat<double>& a);

/// Naive formulation: common-neighbor counts from the full product A*A,
/// then the same degree correction. Identical output; does roughly twice
/// the multiply work and touches sub-diagonal entries — the
/// inefficiency Algorithm 2 removes.
la::SpMat<double> jaccard_naive(const la::SpMat<double>& a);

/// Brute-force baseline: per-pair sorted-neighborhood intersection over
/// pairs at distance <= 2. For tests and bench comparison.
la::SpMat<double> jaccard_baseline(const la::SpMat<double>& a);

/// The Section IV wish made concrete: "a version of matrix
/// multiplication that ... only computes the upper-triangular part of
/// pairwise statistics". A fused one-pass kernel that accumulates the
/// upper-triangular common-neighbor counts C(i,j), i < j, by wedge
/// enumeration with a dense per-row accumulator — roughly half the
/// flops of A^2 and none of the triangular bookkeeping of Algorithm 2.
/// Identical output; ablated in bench_fig2_jaccard.
la::SpMat<double> jaccard_fused(const la::SpMat<double>& a);

/// Link prediction (Section III-C motivates Jaccard via [14]): the top-k
/// non-adjacent vertex pairs ranked by Jaccard coefficient.
struct PredictedLink {
  la::Index u, v;
  double score;
};
std::vector<PredictedLink> predict_links(const la::SpMat<double>& a,
                                         std::size_t top_k);

}  // namespace graphulo::algo
