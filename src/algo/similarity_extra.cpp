#include "algo/similarity_extra.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "la/apply.hpp"
#include "la/reduce.hpp"
#include "la/spgemm.hpp"
#include "la/spmm.hpp"
#include "la/structure.hpp"

namespace graphulo::algo {

using la::Dense;
using la::Index;
using la::SpMat;
using la::Triple;

Dense<double> simrank(const SpMat<double>& a, SimRankOptions options) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("simrank: square matrix");
  }
  if (options.decay <= 0.0 || options.decay >= 1.0) {
    throw std::invalid_argument("simrank: decay in (0, 1)");
  }
  const Index n = a.rows();
  // W: column-normalized adjacency (W(i,j) = A(i,j)/indeg(j)).
  const auto in_deg = la::col_sums(a);
  std::vector<Triple<double>> w_triples;
  for (const auto& t : a.to_triples()) {
    const double d = in_deg[static_cast<std::size_t>(t.col)];
    if (d > 0.0) w_triples.push_back({t.row, t.col, t.val / d});
  }
  const auto w = SpMat<double>::from_triples(n, n, std::move(w_triples));
  const auto wt = la::transpose(w);

  Dense<double> s = Dense<double>::eye(n);
  for (int it = 0; it < options.max_iterations; ++it) {
    // S' = C * W^T S W, then force the diagonal back to 1.
    const auto ws = la::spmm(wt, s);  // W^T S  (n x n)
    const auto next = [&] {
      // (W^T S) W, streaming over W's rows (dense-times-sparse).
      Dense<double> out(n, n);
      for (Index i = 0; i < n; ++i) {
        for (Index k = 0; k < n; ++k) {
          const double v = ws(i, k);
          if (v == 0.0) continue;
          const auto cols = w.row_cols(k);
          const auto vals = w.row_vals(k);
          auto orow = out.row(i);
          for (std::size_t p = 0; p < cols.size(); ++p) {
            orow[cols[p]] += v * vals[p];
          }
        }
      }
      return out;
    }();
    double max_change = 0.0;
    for (Index i = 0; i < n; ++i) {
      for (Index j = 0; j < n; ++j) {
        double value = i == j ? 1.0 : options.decay * next(i, j);
        max_change = std::max(max_change, std::abs(value - s(i, j)));
        s(i, j) = value;
      }
    }
    if (max_change <= options.tolerance) break;
  }
  return s;
}

SpMat<double> adamic_adar(const SpMat<double>& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("adamic_adar: square matrix");
  }
  // D_aa = diag(1/log deg) over vertices with deg >= 2.
  const auto deg = la::row_sums(a);
  std::vector<double> weight(deg.size(), 0.0);
  for (std::size_t v = 0; v < deg.size(); ++v) {
    if (deg[v] >= 2.0) weight[v] = 1.0 / std::log(deg[v]);
  }
  // AA = A * diag(weight) * A, off-diagonal part.
  const auto aw = la::spgemm<la::PlusTimes<double>>(
      a, la::diag_matrix(weight));
  const auto aa = la::spgemm<la::PlusTimes<double>>(aw, a);
  return la::remove_diag(aa);
}

std::vector<ScoredPair> adamic_adar_predict(const SpMat<double>& a,
                                            std::size_t top_k) {
  const auto aa = adamic_adar(a);
  std::vector<ScoredPair> pairs;
  for (const auto& t : la::triu(aa).to_triples()) {
    if (a.at(t.row, t.col) == 0.0) pairs.push_back({t.row, t.col, t.val});
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const ScoredPair& x, const ScoredPair& y) {
              if (x.score != y.score) return x.score > y.score;
              if (x.u != y.u) return x.u < y.u;
              return x.v < y.v;
            });
  if (pairs.size() > top_k) pairs.resize(top_k);
  return pairs;
}

}  // namespace graphulo::algo
