#include "algo/centrality.hpp"

#include <cmath>
#include <stdexcept>

#include "la/norms.hpp"
#include "la/reduce.hpp"
#include "la/spmv.hpp"
#include "la/structure.hpp"
#include "util/rng.hpp"

namespace graphulo::algo {

using la::Index;
using la::SpMat;

std::vector<double> out_degree_centrality(const SpMat<double>& a) {
  return la::row_sums(a);
}

std::vector<double> in_degree_centrality(const SpMat<double>& a) {
  return la::col_sums(a);
}

namespace {

std::vector<double> random_positive_vector(Index n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(0.05, 1.0);  // bounded away from 0
  return x;
}

/// The paper's convergence test: cosine of the angle between successive
/// iterates close to 1.
bool cosine_converged(const std::vector<double>& next,
                      const std::vector<double>& prev, double tolerance) {
  const double nn = la::norm2(next);
  const double np = la::norm2(prev);
  if (nn == 0.0 || np == 0.0) return true;  // degenerate: nothing moves
  return std::abs(la::dot(next, prev)) / (nn * np) >= 1.0 - tolerance;
}

}  // namespace

CentralityResult eigenvector_centrality(const SpMat<double>& a,
                                        PowerOptions options) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("eigenvector_centrality: square matrix");
  }
  CentralityResult result;
  auto x = random_positive_vector(a.rows(), options.seed);
  la::normalize2(x);
  for (int it = 0; it < options.max_iterations; ++it) {
    // Shifted power step x <- (A + I) x: same eigenvectors as A, but the
    // shift breaks the +/-lambda tie on bipartite graphs (a star would
    // make the paper's plain x <- A x oscillate forever).
    auto next = la::spmv<la::PlusTimes<double>>(a, x);
    for (std::size_t i = 0; i < next.size(); ++i) next[i] += x[i];
    result.iterations = it + 1;
    const bool done = cosine_converged(next, x, options.tolerance);
    la::normalize2(next);
    x = std::move(next);
    if (done) {
      result.converged = true;
      break;
    }
  }
  result.scores = std::move(x);
  return result;
}

CentralityResult katz_centrality(const SpMat<double>& a, double alpha,
                                 PowerOptions options) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("katz_centrality: square matrix");
  }
  if (alpha <= 0.0 || alpha >= 1.0) {
    throw std::invalid_argument("katz_centrality: alpha in (0, 1)");
  }
  CentralityResult result;
  const auto n = static_cast<std::size_t>(a.rows());
  std::vector<double> d(n, 1.0);  // d_0 = 1s, per the paper
  std::vector<double> x(n, 0.0);
  double alpha_k = alpha;
  for (int it = 0; it < options.max_iterations; ++it) {
    d = la::spmv<la::PlusTimes<double>>(a, d);
    auto next = x;
    double increment_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = alpha_k * d[i];
      next[i] += delta;
      increment_sq += delta * delta;
    }
    alpha_k *= alpha;
    result.iterations = it + 1;
    // The paper's cosine rule alone stops as soon as the DIRECTION is
    // stable, which for Katz happens immediately on regular graphs; the
    // magnitude of the series tail must also be negligible.
    const double next_norm = la::norm2(next);
    const bool magnitude_stable =
        next_norm == 0.0 ||
        std::sqrt(increment_sq) / next_norm <= std::sqrt(options.tolerance);
    if (it > 0 && magnitude_stable &&
        cosine_converged(next, x, options.tolerance)) {
      x = std::move(next);
      result.converged = true;
      break;
    }
    x = std::move(next);
  }
  result.scores = std::move(x);
  return result;
}

CentralityResult pagerank(const SpMat<double>& a, double alpha,
                          PowerOptions options) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("pagerank: square matrix");
  }
  if (alpha < 0.0 || alpha > 1.0) {
    throw std::invalid_argument("pagerank: alpha in [0, 1]");
  }
  const Index n = a.rows();
  const auto nn = static_cast<std::size_t>(n);
  CentralityResult result;
  if (n == 0) return result;

  // Column-stochastic walk matrix M = A^T D^{-1} applied as
  // y = (x^T (D^{-1} A))^T, using row access only: scale each row i of A
  // by x_i / outdeg_i and accumulate into y.
  const auto out_degree = la::row_sums(a);
  std::vector<double> x(nn, 1.0 / static_cast<double>(n));
  const double jump = alpha / static_cast<double>(n);

  for (int it = 0; it < options.max_iterations; ++it) {
    std::vector<double> y(nn, 0.0);
    double dangling_mass = 0.0;
    for (Index i = 0; i < n; ++i) {
      const double xi = x[static_cast<std::size_t>(i)];
      const double deg = out_degree[static_cast<std::size_t>(i)];
      if (deg == 0.0) {
        dangling_mass += xi;
        continue;
      }
      const double share = xi / deg;
      const auto cols = a.row_cols(i);
      const auto vals = a.row_vals(i);
      for (std::size_t p = 0; p < cols.size(); ++p) {
        y[static_cast<std::size_t>(cols[p])] += share * vals[p];
      }
    }
    // The paper's trick: multiplication by the all-ones matrix is a
    // vector sum broadcast; x sums to 1, so the jump term is uniform.
    const double uniform =
        jump + (1.0 - alpha) * dangling_mass / static_cast<double>(n);
    for (auto& v : y) v = (1.0 - alpha) * v + uniform;
    // Restore exact stochasticity against rounding drift.
    const double total = la::vec_sum(y);
    if (total > 0) {
      for (auto& v : y) v /= total;
    }
    result.iterations = it + 1;
    if (cosine_converged(y, x, options.tolerance)) {
      x = std::move(y);
      result.converged = true;
      break;
    }
    x = std::move(y);
  }
  result.scores = std::move(x);
  return result;
}

std::vector<double> closeness_centrality(const SpMat<double>& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("closeness_centrality: square matrix");
  }
  const Index n = a.rows();
  const auto nn = static_cast<std::size_t>(n);
  std::vector<double> scores(nn, 0.0);
  // One boolean-semiring BFS per source; frontier values are
  // reachability flags, distances accumulate per level.
  for (Index s = 0; s < n; ++s) {
    la::SpVec<double> frontier(n);
    frontier.push_back(s, 1.0);
    std::vector<char> visited(nn, 0);
    visited[static_cast<std::size_t>(s)] = 1;
    double dist_sum = 0.0;
    std::size_t reached = 1;
    int level = 0;
    while (!frontier.empty()) {
      ++level;
      const auto expanded = la::spmspv<la::OrAndDouble>(frontier, a);
      la::SpVec<double> next(n);
      for (Index v : expanded.indices()) {
        if (!visited[static_cast<std::size_t>(v)]) {
          visited[static_cast<std::size_t>(v)] = 1;
          next.push_back(v, 1.0);
          dist_sum += level;
          ++reached;
        }
      }
      frontier = std::move(next);
    }
    if (reached > 1 && dist_sum > 0.0) {
      // Wasserman-Faust correction scales by the reachable fraction so
      // small components do not dominate.
      const double fraction = static_cast<double>(reached - 1) /
                              static_cast<double>(n - 1);
      scores[static_cast<std::size_t>(s)] =
          fraction * static_cast<double>(reached - 1) / dist_sum;
    }
  }
  return scores;
}

std::vector<double> pagerank_dense_reference(const SpMat<double>& a,
                                             double alpha, int iterations) {
  const Index n = a.rows();
  const auto nn = static_cast<std::size_t>(n);
  // Build G = (alpha/N) 11^T + (1-alpha) A^T D^{-1} densely.
  std::vector<double> g(nn * nn, alpha / static_cast<double>(n));
  const auto deg = la::row_sums(a);
  for (Index i = 0; i < n; ++i) {
    const double d = deg[static_cast<std::size_t>(i)];
    if (d == 0.0) {
      // Dangling column: uniform.
      for (Index j = 0; j < n; ++j) {
        g[static_cast<std::size_t>(j) * nn + static_cast<std::size_t>(i)] +=
            (1.0 - alpha) / static_cast<double>(n);
      }
      continue;
    }
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      g[static_cast<std::size_t>(cols[p]) * nn + static_cast<std::size_t>(i)] +=
          (1.0 - alpha) * vals[p] / d;
    }
  }
  std::vector<double> x(nn, 1.0 / static_cast<double>(n));
  for (int it = 0; it < iterations; ++it) {
    std::vector<double> y(nn, 0.0);
    for (std::size_t r = 0; r < nn; ++r) {
      double acc = 0.0;
      for (std::size_t c = 0; c < nn; ++c) acc += g[r * nn + c] * x[c];
      y[r] = acc;
    }
    const double total = la::vec_sum(y);
    for (auto& v : y) v /= total;
    x = std::move(y);
  }
  return x;
}

}  // namespace graphulo::algo
