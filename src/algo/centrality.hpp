#pragma once
// Centrality metrics in GraphBLAS form — Section III-A of the paper.
// Degree centrality is a Reduce; eigenvector centrality, Katz centrality
// and PageRank are iterated SpMV with the paper's cosine-style stopping
// rule |x_{k+1}.x_k| / (||x_{k+1}|| ||x_k||) -> 1.

#include <cstdint>
#include <vector>

#include "la/spmat.hpp"

namespace graphulo::algo {

/// Result of an iterative centrality computation.
struct CentralityResult {
  std::vector<double> scores;  ///< per-vertex centrality
  int iterations = 0;          ///< SpMV sweeps performed
  bool converged = false;
};

/// Degree centrality (Section III-A): out-degree = row reduction,
/// in-degree = column reduction of the adjacency matrix.
std::vector<double> out_degree_centrality(const la::SpMat<double>& a);
std::vector<double> in_degree_centrality(const la::SpMat<double>& a);

/// Options shared by the iterative metrics.
struct PowerOptions {
  int max_iterations = 200;
  /// Stop when |x_{k+1}.x_k|/(||x_{k+1}||||x_k||) >= 1 - tolerance.
  double tolerance = 1e-10;
  std::uint64_t seed = 7;  ///< for the random positive start vector
};

/// Eigenvector centrality via the power method from a random positive
/// start, normalized each sweep; the iteration uses the shifted step
/// x_{k+1} = (A + I) x_k, which has the same eigenvectors as the
/// paper's x_{k+1} = A x_k but also converges on bipartite graphs
/// (where the plain step oscillates between +/-lambda modes). Scores
/// are scaled to unit 2-norm.
CentralityResult eigenvector_centrality(const la::SpMat<double>& a,
                                        PowerOptions options = {});

/// Katz centrality (Section III-A): d_{k+1} = A d_k,
/// x_{k+1} = x_k + alpha^k d_{k+1}, d_0 = 1. `alpha` must be below
/// 1/lambda_max for the series to converge; the implementation also
/// stops on the cosine criterion.
CentralityResult katz_centrality(const la::SpMat<double>& a, double alpha,
                                 PowerOptions options = {});

/// PageRank (Section III-A): the principal eigenvector of
/// (alpha/N) 11^T + (1 - alpha) A^T D^{-1}, computed by the power
/// method; the rank-one jump term is applied with the paper's
/// "sum-the-entries" trick, never materializing the dense matrix.
/// Dangling vertices (out-degree 0) redistribute uniformly. Scores sum
/// to 1.
CentralityResult pagerank(const la::SpMat<double>& a, double alpha = 0.15,
                          PowerOptions options = {});

/// Dense-reference PageRank (explicitly builds the N x N Google matrix);
/// for tests and the centrality bench only.
std::vector<double> pagerank_dense_reference(const la::SpMat<double>& a,
                                             double alpha, int iterations);

/// Closeness centrality — the metric Section III-A defers to future
/// work, built here from the kernels the paper already has: per-source
/// BFS distances (unweighted) give
///   closeness(v) = (reachable(v) - 1) / sum of distances from v,
/// the Wasserman-Faust form that stays comparable on disconnected
/// graphs. Vertices reaching nothing score 0.
std::vector<double> closeness_centrality(const la::SpMat<double>& a);

}  // namespace graphulo::algo
