#pragma once
// Truncated SVD by power iteration with deflation — Table I lists PCA /
// SVD under Community Detection; this computes the top-k singular
// triplets of a sparse matrix using only SpMV-shaped products (A v and
// A^T u), the same building blocks as the paper's other iterative
// methods.

#include <cstdint>
#include <vector>

#include "la/dense.hpp"
#include "la/spmat.hpp"

namespace graphulo::algo {

/// One singular triplet.
struct SingularTriplet {
  double sigma = 0.0;
  std::vector<double> u;  ///< left singular vector (size rows)
  std::vector<double> v;  ///< right singular vector (size cols)
};

/// Options for the truncated SVD.
struct SvdOptions {
  int rank = 2;             ///< number of triplets
  int max_iterations = 300; ///< power sweeps per triplet
  double tolerance = 1e-10; ///< sigma relative change stop
  std::uint64_t seed = 29;
};

/// Computes the top-`rank` singular triplets of A by power iteration on
/// A^T A with hotelling deflation (previous components projected out of
/// each iterate). Singular values are returned in descending order.
std::vector<SingularTriplet> svd_truncated(const la::SpMat<double>& a,
                                           SvdOptions options = {});

/// Rank-k reconstruction error ||A - U S V^T||_F for the given triplets.
double svd_residual(const la::SpMat<double>& a,
                    const std::vector<SingularTriplet>& triplets);

}  // namespace graphulo::algo
