#pragma once
// Umbrella header for the graph algorithm layer: every algorithm class
// of the paper's Table I, in the GraphBLAS formulations of Section III,
// with classical baselines.

#include "algo/betweenness.hpp"  // Centrality (shortest-path based)
#include "algo/centrality.hpp"   // Centrality (degree/eigen/Katz/PageRank)
#include "algo/components.hpp"   // Community structure (components)
#include "algo/inverse.hpp"      // Algorithm 4 (Newton-Schulz)
#include "algo/jaccard.hpp"      // Similarity (Algorithm 2) + prediction
#include "algo/ktruss.hpp"       // Subgraph detection (Algorithm 1)
#include "algo/nmf.hpp"          // Community detection (Algorithms 3/5)
#include "algo/nomination.hpp"   // Vertex nomination
#include "algo/similarity_extra.hpp"  // Similarity: SimRank, Adamic-Adar
#include "algo/spectral.hpp"     // Community: spectral bisection
#include "algo/sssp.hpp"         // Shortest paths
#include "algo/svd.hpp"          // Community: truncated SVD / PCA
#include "algo/traversal.hpp"    // Exploration & traversal
#include "algo/tricount.hpp"     // Triangles
