#pragma once
// Matrix inverse by Newton-Schulz iteration — Algorithm 4 of the paper:
//     X_1     = A^T / (||A||_row * ||A||_col)
//     X_{t+1} = X_t (2 I - A X_t)
// iterated until ||X_{t+1} - X_t||_F <= eps. Uses only multiply/add/
// scale, i.e. GraphBLAS kernels, which is the paper's point: it makes
// the NMF least-squares solves expressible inside the database. A
// Gauss-Jordan baseline is provided for validation and the bench's
// cost/density ablation (Section IV discusses the fill-in concern).

#include "la/dense.hpp"

namespace graphulo::algo {

/// Outcome of a Newton-Schulz run.
struct InverseResult {
  la::Dense<double> inverse;
  int iterations = 0;
  bool converged = false;
  double final_delta = 0.0;  ///< ||X_{t+1} - X_t||_F at exit
};

/// Algorithm 4 on a dense square matrix. `epsilon` is the Frobenius
/// stopping threshold; `max_iterations` bounds the loop (the iteration
/// diverges for singular/ill-scaled inputs — converged=false then).
InverseResult newton_inverse(const la::Dense<double>& a, double epsilon = 1e-12,
                             int max_iterations = 200);

/// Gauss-Jordan elimination with partial pivoting (baseline). Throws
/// std::runtime_error on singular input.
la::Dense<double> gauss_jordan_inverse(const la::Dense<double>& a);

}  // namespace graphulo::algo
