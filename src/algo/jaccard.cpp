#include "algo/jaccard.hpp"

#include <algorithm>
#include <stdexcept>

#include "la/apply.hpp"
#include "la/ewise.hpp"
#include "la/reduce.hpp"
#include "la/spgemm.hpp"
#include "la/structure.hpp"

namespace graphulo::algo {

using la::Index;
using la::SpMat;
using la::Triple;

namespace {

void check_adjacency(const SpMat<double>& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("jaccard: square matrix required");
  }
  for (Index i = 0; i < a.rows(); ++i) {
    if (a.at(i, i) != 0.0) {
      throw std::invalid_argument("jaccard: diagonal must be empty");
    }
  }
}

/// Divides each nonzero J_ij (upper triangular common-neighbor count) by
/// d_i + d_j - J_ij, then symmetrizes: the tail of Algorithm 2.
SpMat<double> degree_correct_and_mirror(const SpMat<double>& j_counts,
                                        const std::vector<double>& d) {
  std::vector<Triple<double>> out;
  out.reserve(static_cast<std::size_t>(j_counts.nnz()) * 2);
  for (const auto& t : j_counts.to_triples()) {
    const double denom = d[static_cast<std::size_t>(t.row)] +
                         d[static_cast<std::size_t>(t.col)] - t.val;
    if (denom <= 0.0) continue;
    const double coeff = t.val / denom;
    out.push_back({t.row, t.col, coeff});
    out.push_back({t.col, t.row, coeff});  // J = J + J^T
  }
  return SpMat<double>::from_triples(j_counts.rows(), j_counts.cols(),
                                     std::move(out));
}

}  // namespace

SpMat<double> jaccard_linalg(const SpMat<double>& a) {
  check_adjacency(a);
  // d = sum(A); U = triu(A).
  const auto d = la::row_sums(a);
  const auto u = la::triu(a);
  const auto ut = la::transpose(u);
  // X = U U^T, Y = U^T U; J = U^2 + triu(X) + triu(Y).
  const auto u2 = la::spgemm<la::PlusTimes<double>>(u, u);
  const auto x = la::spgemm<la::PlusTimes<double>>(u, ut);
  const auto y = la::spgemm<la::PlusTimes<double>>(ut, u);
  auto j = la::add(u2, la::add(la::triu(x), la::triu(y)));
  // J = J - diag(J): triangular pieces can place degree counts on the
  // diagonal; Algorithm 2 removes them.
  j = la::remove_diag(j);
  return degree_correct_and_mirror(j, d);
}

SpMat<double> jaccard_naive(const SpMat<double>& a) {
  check_adjacency(a);
  const auto d = la::row_sums(a);
  // Full common-neighbor counts, then keep the upper triangle.
  const auto a2 = la::spgemm<la::PlusTimes<double>>(a, a);
  const auto counts = la::triu(a2);
  return degree_correct_and_mirror(counts, d);
}

SpMat<double> jaccard_baseline(const SpMat<double>& a) {
  check_adjacency(a);
  const Index n = a.rows();
  std::vector<Triple<double>> out;
  for (Index i = 0; i < n; ++i) {
    // Candidate j's: vertices at distance exactly 2 or adjacent — i.e.
    // sharing at least one neighbor. Enumerate via neighbors of
    // neighbors to stay near-linear in practice.
    std::vector<Index> candidates;
    for (Index k : a.row_cols(i)) {
      for (Index j : a.row_cols(k)) {
        if (j > i) candidates.push_back(j);
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    const auto ni = a.row_cols(i);
    for (Index j : candidates) {
      const auto nj = a.row_cols(j);
      std::size_t p = 0, q = 0, common = 0;
      while (p < ni.size() && q < nj.size()) {
        if (ni[p] < nj[q]) {
          ++p;
        } else if (ni[p] > nj[q]) {
          ++q;
        } else {
          ++common;
          ++p;
          ++q;
        }
      }
      if (common == 0) continue;
      const double denom =
          static_cast<double>(ni.size() + nj.size() - common);
      out.push_back({i, j, static_cast<double>(common) / denom});
      out.push_back({j, i, static_cast<double>(common) / denom});
    }
  }
  return SpMat<double>::from_triples(n, n, std::move(out));
}

SpMat<double> jaccard_fused(const SpMat<double>& a) {
  check_adjacency(a);
  const Index n = a.rows();
  const auto d = la::row_sums(a);
  std::vector<Triple<double>> out;
  // Dense SPA reused across rows; only entries j > i are accumulated.
  std::vector<double> counts(static_cast<std::size_t>(n), 0.0);
  std::vector<Index> touched;
  for (Index i = 0; i < n; ++i) {
    for (Index k : a.row_cols(i)) {
      for (Index j : a.row_cols(k)) {
        if (j <= i) continue;  // upper triangle only: half the additions
        if (counts[static_cast<std::size_t>(j)] == 0.0) touched.push_back(j);
        counts[static_cast<std::size_t>(j)] += 1.0;
      }
    }
    for (Index j : touched) {
      const double c = counts[static_cast<std::size_t>(j)];
      counts[static_cast<std::size_t>(j)] = 0.0;
      const double denom = d[static_cast<std::size_t>(i)] +
                           d[static_cast<std::size_t>(j)] - c;
      if (denom > 0.0) {
        out.push_back({i, j, c / denom});
        out.push_back({j, i, c / denom});
      }
    }
    touched.clear();
  }
  return SpMat<double>::from_triples(n, n, std::move(out));
}

std::vector<PredictedLink> predict_links(const SpMat<double>& a,
                                         std::size_t top_k) {
  const auto j = jaccard_linalg(a);
  std::vector<PredictedLink> links;
  for (const auto& t : la::triu(j).to_triples()) {
    if (a.at(t.row, t.col) == 0.0) {
      links.push_back({t.row, t.col, t.val});
    }
  }
  std::sort(links.begin(), links.end(),
            [](const PredictedLink& x, const PredictedLink& y) {
              if (x.score != y.score) return x.score > y.score;
              if (x.u != y.u) return x.u < y.u;
              return x.v < y.v;
            });
  if (links.size() > top_k) links.resize(top_k);
  return links;
}

}  // namespace graphulo::algo
