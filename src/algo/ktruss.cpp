#include "algo/ktruss.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>

#include "la/apply.hpp"
#include "la/ewise.hpp"
#include "la/reduce.hpp"
#include "la/spgemm.hpp"
#include "la/spref.hpp"
#include "la/structure.hpp"

namespace graphulo::algo {

using la::Index;
using la::SpMat;
using la::Triple;

SpMat<double> incidence_from_adjacency(const SpMat<double>& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("incidence_from_adjacency: square matrix");
  }
  std::vector<Triple<double>> entries;
  Index edge = 0;
  for (const auto& t : la::triu(a).to_triples()) {
    entries.push_back({edge, t.row, 1.0});
    entries.push_back({edge, t.col, 1.0});
    ++edge;
  }
  return SpMat<double>::from_triples(edge, a.cols(), std::move(entries));
}

SpMat<double> adjacency_from_incidence(const SpMat<double>& e, Index n) {
  // A = E^T E - diag(sum(E)) — the identity the paper derives.
  auto ete = la::spgemm<la::PlusTimes<double>>(la::transpose(e), e);
  (void)n;
  return la::subtract(ete, la::diag_matrix(la::col_sums(e)));
}

namespace {

/// s = (R == 2) * 1 : per-edge triangle support.
std::vector<double> edge_support(const SpMat<double>& r) {
  return la::row_sums(la::equals_indicator(r, 2.0));
}

/// x = find(s < k - 2) over the row index space.
std::vector<Index> low_support_edges(const std::vector<double>& s, int k) {
  std::vector<Index> x;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] < static_cast<double>(k - 2)) x.push_back(static_cast<Index>(i));
  }
  return x;
}

}  // namespace

SpMat<double> ktruss_incidence(const SpMat<double>& e_in, int k,
                               KTrussStats* stats,
                               bool use_incremental_update) {
  if (k < 3) {
    // Every graph is a 2-truss (Section III-B); nothing to remove.
    if (stats) *stats = {};
    return e_in;
  }
  SpMat<double> e = e_in;
  KTrussStats local;

  // Initialization per Algorithm 1.
  auto d = la::col_sums(e);
  auto a = la::subtract(la::spgemm<la::PlusTimes<double>>(la::transpose(e), e),
                        la::diag_matrix(d));
  auto r = la::spgemm<la::PlusTimes<double>>(e, a);
  auto s = edge_support(r);
  auto x = low_support_edges(s, k);

  while (!x.empty()) {
    ++local.rounds;
    local.edges_removed += static_cast<Index>(x.size());
    const auto xc = la::complement(x, e.rows());
    const auto ex = la::spref_rows(e, x);
    e = la::spref_rows(e, xc);
    if (use_incremental_update) {
      // R <- R(xc, :) - E [ E_x^T E_x - diag(d_x) ]
      const auto dx = la::col_sums(ex);
      r = la::spref_rows(r, xc);
      auto update = la::subtract(
          la::spgemm<la::PlusTimes<double>>(la::transpose(ex), ex),
          la::diag_matrix(dx));
      r = la::subtract(r, la::spgemm<la::PlusTimes<double>>(e, update));
    } else {
      // Ablation arm: recompute R = E * A from the shrunken graph.
      const auto d2 = la::col_sums(e);
      const auto a2 = la::subtract(
          la::spgemm<la::PlusTimes<double>>(la::transpose(e), e),
          la::diag_matrix(d2));
      r = la::spgemm<la::PlusTimes<double>>(e, a2);
    }
    s = edge_support(r);
    x = low_support_edges(s, k);
  }
  if (stats) *stats = local;
  return e;
}

SpMat<double> ktruss_adjacency(const SpMat<double>& a, int k,
                               KTrussStats* stats) {
  const auto e = incidence_from_adjacency(la::pattern(la::remove_diag(a)));
  const auto ek = ktruss_incidence(e, k, stats);
  return adjacency_from_incidence(ek, a.cols());
}

SpMat<double> ktruss_peeling_baseline(const SpMat<double>& a, int k) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("ktruss_peeling_baseline: square matrix");
  }
  const Index n = a.rows();
  // Adjacency sets (simple graph, no loops).
  std::vector<std::set<Index>> adj(static_cast<std::size_t>(n));
  for (const auto& t : a.to_triples()) {
    if (t.row != t.col) adj[static_cast<std::size_t>(t.row)].insert(t.col);
  }
  auto edge_key = [](Index u, Index v) {
    return std::pair<Index, Index>{std::min(u, v), std::max(u, v)};
  };
  // Support = number of triangles through the edge.
  std::map<std::pair<Index, Index>, int> support;
  for (Index u = 0; u < n; ++u) {
    for (Index v : adj[static_cast<std::size_t>(u)]) {
      if (u >= v) continue;
      int count = 0;
      const auto& nu = adj[static_cast<std::size_t>(u)];
      const auto& nv = adj[static_cast<std::size_t>(v)];
      const auto& smaller = nu.size() < nv.size() ? nu : nv;
      const auto& larger = nu.size() < nv.size() ? nv : nu;
      for (Index w : smaller) {
        if (larger.count(w)) ++count;
      }
      support[edge_key(u, v)] = count;
    }
  }
  // Peel edges with support < k-2, lowest first (Wang-Cheng order).
  std::queue<std::pair<Index, Index>> peel;
  for (const auto& [edge, sup] : support) {
    if (sup < k - 2) peel.push(edge);
  }
  std::set<std::pair<Index, Index>> removed;
  while (!peel.empty()) {
    const auto [u, v] = peel.front();
    peel.pop();
    if (removed.count({u, v})) continue;
    removed.insert({u, v});
    adj[static_cast<std::size_t>(u)].erase(v);
    adj[static_cast<std::size_t>(v)].erase(u);
    // Every common neighbor w loses a triangle on edges (u,w) and (v,w).
    for (Index w : adj[static_cast<std::size_t>(u)]) {
      if (adj[static_cast<std::size_t>(v)].count(w)) {
        for (auto affected : {edge_key(u, w), edge_key(v, w)}) {
          auto it = support.find(affected);
          if (it != support.end() && !removed.count(affected)) {
            if (--it->second < k - 2) peel.push(affected);
          }
        }
      }
    }
  }
  std::vector<Triple<double>> out;
  for (Index u = 0; u < n; ++u) {
    for (Index v : adj[static_cast<std::size_t>(u)]) {
      out.push_back({u, v, 1.0});
    }
  }
  return SpMat<double>::from_triples(n, n, std::move(out));
}

std::vector<double> ktruss_support_fused(
    const SpMat<double>& a,
    const std::vector<std::pair<Index, Index>>& edges) {
  std::vector<double> support(edges.size(), 0.0);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto [u, v] = edges[i];
    const auto nu = a.row_cols(u);
    const auto nv = a.row_cols(v);
    std::size_t p = 0, q = 0, common = 0;
    while (p < nu.size() && q < nv.size()) {
      if (nu[p] < nv[q]) {
        ++p;
      } else if (nu[p] > nv[q]) {
        ++q;
      } else {
        ++common;
        ++p;
        ++q;
      }
    }
    support[i] = static_cast<double>(common);
  }
  return support;
}

SpMat<double> ktruss_adjacency_fused(const SpMat<double>& a_in, int k,
                                     KTrussStats* stats) {
  KTrussStats local;
  SpMat<double> a = la::pattern(la::remove_diag(a_in));
  if (k < 3) {
    if (stats) *stats = local;
    return a;
  }
  const double min_support = static_cast<double>(k - 2);
  while (true) {
    // Edge list = upper triangle of the current adjacency.
    std::vector<std::pair<Index, Index>> edges;
    for (const auto& t : la::triu(a).to_triples()) {
      edges.emplace_back(t.row, t.col);
    }
    if (edges.empty()) break;
    const auto support = ktruss_support_fused(a, edges);
    std::vector<Triple<double>> keep;
    std::size_t removed = 0;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (support[i] >= min_support) {
        keep.push_back({edges[i].first, edges[i].second, 1.0});
        keep.push_back({edges[i].second, edges[i].first, 1.0});
      } else {
        ++removed;
      }
    }
    if (removed == 0) break;
    ++local.rounds;
    local.edges_removed += static_cast<Index>(removed);
    a = SpMat<double>::from_triples(a.rows(), a.cols(), std::move(keep));
  }
  if (stats) *stats = local;
  return a;
}

TrussDecomposition truss_decomposition(const SpMat<double>& a) {
  TrussDecomposition out;
  // Edge order = upper-triangle order used by incidence_from_adjacency.
  for (const auto& t : la::triu(la::pattern(la::remove_diag(a))).to_triples()) {
    out.edges.emplace_back(t.row, t.col);
  }
  out.truss_number.assign(out.edges.size(), 2);

  // Map from (u, v) to position in out.edges for marking.
  std::map<std::pair<Index, Index>, std::size_t> edge_pos;
  for (std::size_t i = 0; i < out.edges.size(); ++i) edge_pos[out.edges[i]] = i;

  auto e = incidence_from_adjacency(la::pattern(la::remove_diag(a)));
  int k = 3;
  while (e.nnz() > 0) {
    auto ek = ktruss_incidence(e, k);
    // Edges surviving at level k have truss number >= k.
    for (Index row = 0; row < ek.rows(); ++row) {
      const auto cols = ek.row_cols(row);
      if (cols.size() == 2) {
        const auto key = std::pair<Index, Index>{cols[0], cols[1]};
        out.truss_number[edge_pos.at(key)] = k;
      }
    }
    if (ek.nnz() > 0) out.max_k = k;
    e = std::move(ek);
    ++k;
  }
  return out;
}

}  // namespace graphulo::algo
