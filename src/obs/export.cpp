#include "obs/export.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/table_printer.hpp"

namespace graphulo::obs {

namespace {

/// Metric names use '.' as a separator; the exposition format allows
/// only [a-zA-Z0-9_:].
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.') c = '_';
  }
  return out;
}

/// Label-value escaping per the exposition format: backslash, double
/// quote, and newline.
std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Shortest faithful rendering: integers print without a fraction,
/// everything else with enough digits to round-trip through strtod.
std::string format_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007199e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string format_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += "\"";
  }
  out += "}";
  return out;
}

const char* type_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

/// HELP text escaping: backslash and newline.
std::string escape_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& family : snapshot.families) {
    const std::string name = prometheus_name(family.name);
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + escape_help(family.help) + "\n";
    }
    out += "# TYPE " + name + " " + type_name(family.kind) + "\n";
    for (const auto& series : family.series) {
      if (family.kind != MetricKind::kHistogram) {
        out += name + format_labels(series.labels) + " " +
               format_double(series.value) + "\n";
        continue;
      }
      // Cumulative buckets, then the mandatory +Inf, _sum, _count.
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < series.bounds.size(); ++i) {
        cumulative += series.bucket_counts[i];
        Labels with_le = series.labels;
        with_le.emplace_back("le", format_double(series.bounds[i]));
        out += name + "_bucket" + format_labels(with_le) + " " +
               std::to_string(cumulative) + "\n";
      }
      cumulative += series.bucket_counts.empty()
                        ? 0
                        : series.bucket_counts.back();
      Labels inf = series.labels;
      inf.emplace_back("le", "+Inf");
      out += name + "_bucket" + format_labels(inf) + " " +
             std::to_string(cumulative) + "\n";
      out += name + "_sum" + format_labels(series.labels) + " " +
             format_double(series.sum) + "\n";
      out += name + "_count" + format_labels(series.labels) + " " +
             std::to_string(series.count) + "\n";
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string labels_json(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + json_escape(k) + "\": \"" + json_escape(v) + "\"";
  }
  out += "}";
  return out;
}

// -- minimal JSON value parser (only what from_json needs) ------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* get(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

struct JsonParser {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (p >= end) return false;
    switch (*p) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.str);
      case 't':
        if (end - p >= 4 && std::string(p, 4) == "true") {
          out.type = JsonValue::Type::kBool;
          out.boolean = true;
          p += 4;
          return true;
        }
        return false;
      case 'f':
        if (end - p >= 5 && std::string(p, 5) == "false") {
          out.type = JsonValue::Type::kBool;
          out.boolean = false;
          p += 5;
          return true;
        }
        return false;
      case 'n':
        if (end - p >= 4 && std::string(p, 4) == "null") {
          out.type = JsonValue::Type::kNull;
          p += 4;
          return true;
        }
        return false;
      default: return parse_number(out);
    }
  }

  bool parse_string(std::string& out) {
    if (p >= end || *p != '"') return false;
    ++p;
    out.clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return false;
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (end - p < 5) return false;
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char c = p[i];
              code <<= 4;
              if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
              else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
              else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
              else return false;
            }
            // Only the escapes json_escape emits (< 0x20) need support.
            if (code > 0x7f) return false;
            out += static_cast<char>(code);
            p += 4;
            break;
          }
          default: return false;
        }
        ++p;
      } else {
        out += *p++;
      }
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }

  bool parse_number(JsonValue& out) {
    char* num_end = nullptr;
    out.number = std::strtod(p, &num_end);
    if (num_end == p) return false;
    out.type = JsonValue::Type::kNumber;
    p = num_end;
    return true;
  }

  bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++p;  // '['
    skip_ws();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    while (true) {
      JsonValue item;
      if (!parse_value(item)) return false;
      out.array.push_back(std::move(item));
      skip_ws();
      if (p >= end) return false;
      if (*p == ',') {
        ++p;
        continue;
      }
      if (*p == ']') {
        ++p;
        return true;
      }
      return false;
    }
  }

  bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++p;  // '{'
    skip_ws();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (p >= end || *p != ':') return false;
      ++p;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (p >= end) return false;
      if (*p == ',') {
        ++p;
        continue;
      }
      if (*p == '}') {
        ++p;
        return true;
      }
      return false;
    }
  }
};

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"families\": [";
  bool first_family = true;
  for (const auto& family : snapshot.families) {
    if (!first_family) out += ",";
    first_family = false;
    out += "\n {\"name\": \"" + json_escape(family.name) + "\", \"help\": \"" +
           json_escape(family.help) + "\", \"type\": \"" +
           type_name(family.kind) + "\", \"series\": [";
    bool first_series = true;
    for (const auto& series : family.series) {
      if (!first_series) out += ",";
      first_series = false;
      out += "\n  {\"labels\": " + labels_json(series.labels);
      if (family.kind != MetricKind::kHistogram) {
        out += ", \"value\": " + format_double(series.value) + "}";
        continue;
      }
      out += ", \"count\": " + std::to_string(series.count) +
             ", \"sum\": " + format_double(series.sum) + ", \"bounds\": [";
      for (std::size_t i = 0; i < series.bounds.size(); ++i) {
        if (i) out += ", ";
        out += format_double(series.bounds[i]);
      }
      out += "], \"bucket_counts\": [";
      for (std::size_t i = 0; i < series.bucket_counts.size(); ++i) {
        if (i) out += ", ";
        out += std::to_string(series.bucket_counts[i]);
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

bool from_json(const std::string& json, MetricsSnapshot& out) {
  JsonParser parser{json.data(), json.data() + json.size()};
  JsonValue root;
  if (!parser.parse_value(root)) return false;
  if (root.type != JsonValue::Type::kObject) return false;
  const JsonValue* families = root.get("families");
  if (!families || families->type != JsonValue::Type::kArray) return false;

  out.families.clear();
  for (const auto& fv : families->array) {
    if (fv.type != JsonValue::Type::kObject) return false;
    FamilySnapshot family;
    const JsonValue* name = fv.get("name");
    const JsonValue* help = fv.get("help");
    const JsonValue* type = fv.get("type");
    const JsonValue* series = fv.get("series");
    if (!name || name->type != JsonValue::Type::kString) return false;
    if (!type || type->type != JsonValue::Type::kString) return false;
    if (!series || series->type != JsonValue::Type::kArray) return false;
    family.name = name->str;
    if (help && help->type == JsonValue::Type::kString) family.help = help->str;
    if (type->str == "counter") family.kind = MetricKind::kCounter;
    else if (type->str == "gauge") family.kind = MetricKind::kGauge;
    else if (type->str == "histogram") family.kind = MetricKind::kHistogram;
    else return false;

    for (const auto& sv : series->array) {
      if (sv.type != JsonValue::Type::kObject) return false;
      SeriesSnapshot s;
      const JsonValue* labels = sv.get("labels");
      if (!labels || labels->type != JsonValue::Type::kObject) return false;
      for (const auto& [k, v] : labels->object) {
        if (v.type != JsonValue::Type::kString) return false;
        s.labels.emplace_back(k, v.str);
      }
      if (family.kind != MetricKind::kHistogram) {
        const JsonValue* value = sv.get("value");
        if (!value || value->type != JsonValue::Type::kNumber) return false;
        s.value = value->number;
      } else {
        const JsonValue* count = sv.get("count");
        const JsonValue* sum = sv.get("sum");
        const JsonValue* bounds = sv.get("bounds");
        const JsonValue* buckets = sv.get("bucket_counts");
        if (!count || count->type != JsonValue::Type::kNumber) return false;
        if (!sum || sum->type != JsonValue::Type::kNumber) return false;
        if (!bounds || bounds->type != JsonValue::Type::kArray) return false;
        if (!buckets || buckets->type != JsonValue::Type::kArray) return false;
        s.count = static_cast<std::uint64_t>(count->number);
        s.sum = sum->number;
        for (const auto& b : bounds->array) {
          if (b.type != JsonValue::Type::kNumber) return false;
          s.bounds.push_back(b.number);
        }
        for (const auto& b : buckets->array) {
          if (b.type != JsonValue::Type::kNumber) return false;
          s.bucket_counts.push_back(static_cast<std::uint64_t>(b.number));
        }
      }
      family.series.push_back(std::move(s));
    }
    out.families.push_back(std::move(family));
  }
  parser.skip_ws();
  return parser.p == parser.end;
}

// ---------------------------------------------------------------------------
// Human table
// ---------------------------------------------------------------------------

std::string metrics_table(const MetricsSnapshot& snapshot,
                          const std::string& title) {
  util::TablePrinter table(
      {"metric", "type", "labels", "value", "p50", "p95", "p99"});
  for (const auto& family : snapshot.families) {
    for (const auto& series : family.series) {
      std::string labels;
      for (const auto& [k, v] : series.labels) {
        if (!labels.empty()) labels += ",";
        labels += k + "=" + v;
      }
      if (labels.empty()) labels = "-";
      if (family.kind != MetricKind::kHistogram) {
        table.add_row({family.name, type_name(family.kind), labels,
                       format_double(series.value), "-", "-", "-"});
        continue;
      }
      // Rebuild a histogram to reuse its quantile interpolation.
      Histogram h(series.bounds);
      // quantile() only needs bucket occupancy; replay the counts with
      // representative in-bucket values.
      std::vector<std::uint64_t> counts = series.bucket_counts;
      const double mean =
          series.count > 0 ? series.sum / static_cast<double>(series.count)
                           : 0.0;
      for (std::size_t i = 0; i < counts.size(); ++i) {
        const double v = i < series.bounds.size()
                             ? series.bounds[i]
                             : (series.bounds.empty() ? 0.0
                                                      : series.bounds.back());
        for (std::uint64_t n = 0; n < counts[i]; ++n) h.observe(v);
      }
      table.add_row({family.name, "histogram", labels,
                     std::to_string(series.count) + " (mean " +
                         util::TablePrinter::fmt(mean * 1e6, 1) + "us)",
                     util::TablePrinter::fmt(h.quantile(0.50) * 1e6, 1) + "us",
                     util::TablePrinter::fmt(h.quantile(0.95) * 1e6, 1) + "us",
                     util::TablePrinter::fmt(h.quantile(0.99) * 1e6, 1) +
                         "us"});
    }
  }
  return table.to_string(title);
}

}  // namespace graphulo::obs
