#pragma once
// Umbrella header for the observability subsystem: the metrics
// registry (counters/gauges/histograms), scoped trace spans, and the
// exporters (Prometheus text, JSON, human table).

#include "obs/export.hpp"   // IWYU pragma: export
#include "obs/metrics.hpp"  // IWYU pragma: export
#include "obs/trace.hpp"    // IWYU pragma: export
