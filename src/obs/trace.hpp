#pragma once
// Scoped RAII trace spans. TRACE_SPAN("tablet.flush") at the top of a
// scope records the scope's wall time into the global histogram
// "tablet.flush.seconds"; when the bounded trace ring is enabled
// (set_trace_capacity > 0) it also appends a timeline event readable
// as a Chrome-trace JSON document (trace_json()).
//
// Cost: spans are ON by default. An enabled span pays two steady_clock
// reads plus one Histogram::observe (tens of nanoseconds — measured in
// tests/test_obs.cpp and reported in EXPERIMENTS.md); a disabled span
// (set_spans_enabled(false)) is one relaxed atomic load and a branch.
// The per-call-site histogram handle is resolved once, through a
// function-local static SpanSite.
//
// The trace ring is OFF by default and mutex-guarded when on — it is a
// debugging capture, not a production path; enabling it serializes
// span exits through one lock.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace graphulo::obs {

/// Global span switch (default on). Disabled spans skip the clock
/// reads and record nothing.
bool spans_enabled() noexcept;
void set_spans_enabled(bool enabled) noexcept;

/// One call site of TRACE_SPAN: resolves (once) the histogram the
/// site's durations land in. `name` must outlive the site (the macro
/// passes a string literal).
struct SpanSite {
  explicit SpanSite(const char* span_name)
      : name(span_name),
        histogram(&MetricsRegistry::global().histogram(
            std::string(span_name) + ".seconds",
            std::string("Wall time of ") + span_name + " spans")) {}

  const char* name;
  Histogram* histogram;
};

/// The RAII span: times construction..destruction.
class Span {
 public:
  explicit Span(SpanSite& site) noexcept
      : site_(&site), active_(spans_enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  SpanSite* site_;
  std::chrono::steady_clock::time_point start_;
  bool active_;
};

/// One completed span in the trace ring.
struct TraceEvent {
  const char* name;       ///< the span's site name (a string literal)
  std::uint64_t tid;      ///< dense per-thread index (obs::thread_stripe
                          ///< source, not striped)
  double start_us;        ///< microseconds since the first ring event
  double duration_us;
};

/// Sizes (and clears) the in-memory trace ring; 0 disables capture.
/// The ring keeps the most recent `capacity` events.
void set_trace_capacity(std::size_t capacity);

/// Completed events, oldest first.
std::vector<TraceEvent> trace_events();

/// Clears captured events (capacity unchanged).
void clear_trace();

/// The captured timeline as a Chrome-trace ("chrome://tracing", also
/// Perfetto) JSON document: an array of complete ("ph":"X") events.
std::string trace_json();

namespace detail {
void record_trace_event(const char* name,
                        std::chrono::steady_clock::time_point start,
                        std::chrono::steady_clock::time_point end);
bool trace_ring_enabled() noexcept;
}  // namespace detail

}  // namespace graphulo::obs

#define GRAPHULO_OBS_CONCAT2(a, b) a##b
#define GRAPHULO_OBS_CONCAT(a, b) GRAPHULO_OBS_CONCAT2(a, b)

/// Times the rest of the enclosing scope into "<name>.seconds".
#define TRACE_SPAN(name)                                            \
  static ::graphulo::obs::SpanSite GRAPHULO_OBS_CONCAT(             \
      graphulo_obs_site_, __LINE__)(name);                          \
  ::graphulo::obs::Span GRAPHULO_OBS_CONCAT(graphulo_obs_span_,     \
                                            __LINE__)(              \
      GRAPHULO_OBS_CONCAT(graphulo_obs_site_, __LINE__))
