#pragma once
// Process-wide metrics registry: named counters, gauges, and
// fixed-bucket histograms, optionally labeled, aggregated on read.
//
// The paper's premise — graph kernels running INSIDE the database —
// makes their cost invisible without server-side telemetry (Weale et
// al. had to bolt external measurement onto Accumulo's monitor to
// explain TableMult scaling). This registry is the in-process stand-in
// for that monitor: every hot path (WAL commit, flush/compaction,
// block cache, scan, BatchWriter, TableMult) records into it, and one
// snapshot answers "what is the system doing".
//
// Write-path cost model:
//   Counter::inc    one relaxed fetch_add on a thread-striped,
//                   cache-line-padded cell (no sharing between the
//                   stripes concurrent writers land on);
//   Gauge::set/add  one relaxed atomic op;
//   Histogram::observe
//                   a short linear scan of the fixed bucket bounds
//                   plus two relaxed atomic adds.
// Reads (snapshot/export) sum the cells under the registry mutex; they
// are NOT linearizable against concurrent writers — each cell is read
// atomically, so totals are a consistent-enough monitoring view, never
// torn values.
//
// Handle lifetime: counter()/gauge()/histogram() return references
// that stay valid for the registry's lifetime (the global registry
// lives for the process). Hot paths resolve a handle once (static
// local or member) and increment through it lock-free.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace graphulo::obs {

/// Sorted (name, value) label pairs identifying one series of a family.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Assigns each thread a small dense index (first use registers the
/// thread); counters stripe their cells by it.
std::size_t thread_stripe() noexcept;

/// Monotonically increasing event count.
class Counter {
 public:
  static constexpr std::size_t kStripes = 8;

  void inc(std::uint64_t n = 1) noexcept {
    cells_[thread_stripe() % kStripes].v.fetch_add(n,
                                                   std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kStripes> cells_;
};

/// A value that goes up and down (queue depths, in-flight counts).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram: per-bucket counts plus sum/count, Prometheus
/// cumulative-`le` semantics produced at export time. Bucket bounds are
/// fixed at registration, so observe() never allocates.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  /// Finite upper bounds; an implicit +Inf bucket follows the last.
  const std::vector<double>& bounds() const noexcept { return bounds_; }

  /// Per-bucket (non-cumulative) counts, bounds().size() + 1 entries
  /// (the final entry is the +Inf bucket).
  std::vector<std::uint64_t> bucket_counts() const;

  /// Approximate quantile (q in [0, 1]) by linear interpolation inside
  /// the bucket the rank lands in; returns 0 for an empty histogram and
  /// the largest finite bound for ranks in the +Inf bucket.
  double quantile(double q) const;

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_+1 cells
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// The default bucket scheme for latency histograms: 1-2.5-5 decades
/// from 1 microsecond to 10 seconds (22 finite buckets + Inf), wide
/// enough for a cached counter bump and a multi-second compaction in
/// the same family.
const std::vector<double>& default_latency_buckets();

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time value of one labeled series.
struct SeriesSnapshot {
  Labels labels;
  double value = 0.0;                        ///< counter/gauge
  std::uint64_t count = 0;                   ///< histogram
  double sum = 0.0;                          ///< histogram
  std::vector<double> bounds;                ///< histogram
  std::vector<std::uint64_t> bucket_counts;  ///< histogram, bounds+1
};

/// One metric family: a name, a kind, and its labeled series.
struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<SeriesSnapshot> series;  ///< sorted by labels
};

/// A full registry snapshot, families sorted by name.
struct MetricsSnapshot {
  std::vector<FamilySnapshot> families;

  /// The named series, or nullptr. Labels must match exactly
  /// (pass {} for an unlabeled series).
  const SeriesSnapshot* find(const std::string& name,
                             const Labels& labels = {}) const;

  /// Counter/gauge value of the series (0 when absent).
  double value(const std::string& name, const Labels& labels = {}) const;
};

/// Thread-safe named-metric registry. Metric names may contain
/// [a-zA-Z0-9_.] (starting with a letter or '_'); dots are separators
/// that the Prometheus exporter folds to underscores. Registering the
/// same (name, labels) twice returns the same object; registering a
/// name under two different kinds throws.
class MetricsRegistry {
 public:
  // Out of line: Family is incomplete here and the map member's
  // cleanup paths must not instantiate against it.
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem records into. Created on
  /// first use with the default collectors (fault-site mirror)
  /// installed.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name, const std::string& help = "",
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help = "",
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help = "",
                       const std::vector<double>& upper_bounds =
                           default_latency_buckets(),
                       const Labels& labels = {});

  /// Runs at snapshot time, before values are read — pull-style metrics
  /// (e.g. fault-site counters owned elsewhere) set gauges here.
  using Collector = std::function<void(MetricsRegistry&)>;
  void register_collector(Collector fn);

  /// Aggregated point-in-time view (runs collectors first).
  MetricsSnapshot snapshot() const;

  /// Zeroes every registered cell (registrations and collectors stay).
  /// Tests use this to isolate assertions against the global registry.
  void reset_values();

 private:
  struct Series;
  struct Family;

  Series& get_series(const std::string& name, const std::string& help,
                     MetricKind kind, const Labels& labels,
                     const std::vector<double>* bounds);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Family>> families_;
  std::vector<Collector> collectors_;
};

}  // namespace graphulo::obs
