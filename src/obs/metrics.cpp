#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "util/fault.hpp"

namespace graphulo::obs {

std::size_t thread_stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bucket bounds must be sorted");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) noexcept {
  // Linear scan: the default scheme has 22 bounds and latency samples
  // land in the low buckets, so this beats a branchy binary search.
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::quantile(double q) const {
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= target && counts[i] > 0) {
      if (i >= bounds_.size()) {
        // +Inf bucket: the best point estimate is the largest finite
        // bound (or 0 for a bound-less histogram).
        return bounds_.empty() ? 0.0 : bounds_.back();
      }
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac =
          (target - cumulative) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    cumulative = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& default_latency_buckets() {
  static const std::vector<double> kBuckets = {
      1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4,
      5e-4, 1e-3,   2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1,
      2.5e-1, 5e-1, 1.0,  2.5,  5.0,  10.0};
  return kBuckets;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_')) {
    return false;
  }
  for (const char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.')) {
      return false;
    }
  }
  return true;
}

bool valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_')) {
    return false;
  }
  for (const char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

struct MetricsRegistry::Series {
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct MetricsRegistry::Family {
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::map<Labels, Series> series;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Series& MetricsRegistry::get_series(
    const std::string& name, const std::string& help, MetricKind kind,
    const Labels& labels, const std::vector<double>* bounds) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("MetricsRegistry: invalid metric name '" +
                                name + "'");
  }
  for (const auto& [k, v] : labels) {
    if (!valid_label_name(k)) {
      throw std::invalid_argument("MetricsRegistry: invalid label name '" + k +
                                  "' on metric '" + name + "'");
    }
  }
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());

  std::lock_guard lock(mutex_);
  auto& family = families_[name];
  if (!family) {
    family = std::make_unique<Family>();
    family->kind = kind;
    family->help = help;
  } else if (family->kind != kind) {
    throw std::logic_error("MetricsRegistry: metric '" + name +
                           "' already registered as " +
                           kind_name(family->kind) + ", requested " +
                           kind_name(kind));
  }
  if (family->help.empty() && !help.empty()) family->help = help;
  Series& series = family->series[std::move(sorted)];
  if (!series.counter && !series.gauge && !series.histogram) {
    switch (kind) {
      case MetricKind::kCounter:
        series.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        series.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        series.histogram = std::make_unique<Histogram>(
            bounds ? *bounds : default_latency_buckets());
        break;
    }
  }
  return series;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  return *get_series(name, help, MetricKind::kCounter, labels, nullptr)
              .counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  return *get_series(name, help, MetricKind::kGauge, labels, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const std::vector<double>& upper_bounds,
                                      const Labels& labels) {
  return *get_series(name, help, MetricKind::kHistogram, labels, &upper_bounds)
              .histogram;
}

void MetricsRegistry::register_collector(Collector fn) {
  std::lock_guard lock(mutex_);
  collectors_.push_back(std::move(fn));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  // Collectors run outside the registry mutex: they typically call
  // gauge(...).set(...), which takes it.
  std::vector<Collector> collectors;
  {
    std::lock_guard lock(mutex_);
    collectors = collectors_;
  }
  for (const auto& fn : collectors) {
    fn(const_cast<MetricsRegistry&>(*this));
  }

  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  snap.families.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilySnapshot fs;
    fs.name = name;
    fs.help = family->help;
    fs.kind = family->kind;
    fs.series.reserve(family->series.size());
    for (const auto& [labels, series] : family->series) {
      SeriesSnapshot ss;
      ss.labels = labels;
      switch (family->kind) {
        case MetricKind::kCounter:
          ss.value = static_cast<double>(series.counter->value());
          break;
        case MetricKind::kGauge:
          ss.value = static_cast<double>(series.gauge->value());
          break;
        case MetricKind::kHistogram:
          ss.count = series.histogram->count();
          ss.sum = series.histogram->sum();
          ss.bounds = series.histogram->bounds();
          ss.bucket_counts = series.histogram->bucket_counts();
          break;
      }
      fs.series.push_back(std::move(ss));
    }
    snap.families.push_back(std::move(fs));
  }
  return snap;
}

void MetricsRegistry::reset_values() {
  std::lock_guard lock(mutex_);
  for (auto& [name, family] : families_) {
    for (auto& [labels, series] : family->series) {
      if (series.counter) series.counter->reset();
      if (series.gauge) series.gauge->reset();
      if (series.histogram) series.histogram->reset();
    }
  }
}

const SeriesSnapshot* MetricsSnapshot::find(const std::string& name,
                                            const Labels& labels) const {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& family : families) {
    if (family.name != name) continue;
    for (const auto& series : family.series) {
      if (series.labels == sorted) return &series;
    }
  }
  return nullptr;
}

double MetricsSnapshot::value(const std::string& name,
                              const Labels& labels) const {
  const SeriesSnapshot* s = find(name, labels);
  return s ? s->value : 0.0;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();  // never destroyed: handles outlive exit
    // Default collector: mirror the fault-injection sites' hit/fire
    // counters (owned by util::fault) into labeled gauges, so injected
    // failure traffic appears in the same export as everything else.
    r->register_collector([](MetricsRegistry& reg) {
      for (const auto& site : util::fault::all_sites()) {
        const auto stats = util::fault::stats(site);
        if (stats.hits == 0 && stats.fires == 0) continue;
        reg.gauge("fault.site.hits", "Times an armed fault site was reached",
                  {{"site", site}})
            .set(static_cast<std::int64_t>(stats.hits));
        reg.gauge("fault.site.fires", "Times a fault site threw",
                  {{"site", site}})
            .set(static_cast<std::int64_t>(stats.fires));
      }
    });
    return r;
  }();
  return *registry;
}

}  // namespace graphulo::obs
