#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace graphulo::obs {

namespace {

std::atomic<bool> g_spans_enabled{true};

// The trace ring: a bounded deque of completed events guarded by one
// mutex. Kept deliberately simple — the ring is a debugging capture
// enabled explicitly, never a steady-state path.
struct TraceRing {
  std::mutex mutex;
  std::size_t capacity = 0;
  std::size_t next = 0;  ///< ring cursor
  bool wrapped = false;
  std::vector<TraceEvent> events;
  bool have_epoch = false;
  std::chrono::steady_clock::time_point epoch;
};

TraceRing& ring() {
  static TraceRing r;
  return r;
}

std::atomic<bool> g_ring_enabled{false};

}  // namespace

bool spans_enabled() noexcept {
  return g_spans_enabled.load(std::memory_order_relaxed);
}

void set_spans_enabled(bool enabled) noexcept {
  g_spans_enabled.store(enabled, std::memory_order_relaxed);
}

bool detail::trace_ring_enabled() noexcept {
  return g_ring_enabled.load(std::memory_order_relaxed);
}

void detail::record_trace_event(const char* name,
                                std::chrono::steady_clock::time_point start,
                                std::chrono::steady_clock::time_point end) {
  TraceRing& r = ring();
  std::lock_guard lock(r.mutex);
  if (r.capacity == 0) return;
  if (!r.have_epoch) {
    r.epoch = start;
    r.have_epoch = true;
  }
  TraceEvent event;
  event.name = name;
  event.tid = static_cast<std::uint64_t>(thread_stripe());
  event.start_us =
      std::chrono::duration<double, std::micro>(start - r.epoch).count();
  event.duration_us =
      std::chrono::duration<double, std::micro>(end - start).count();
  if (r.events.size() < r.capacity) {
    r.events.push_back(event);
  } else {
    r.events[r.next] = event;
    r.wrapped = true;
  }
  r.next = (r.next + 1) % r.capacity;
}

Span::~Span() {
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  site_->histogram->observe(
      std::chrono::duration<double>(end - start_).count());
  if (detail::trace_ring_enabled()) {
    detail::record_trace_event(site_->name, start_, end);
  }
}

void set_trace_capacity(std::size_t capacity) {
  TraceRing& r = ring();
  std::lock_guard lock(r.mutex);
  r.capacity = capacity;
  r.events.clear();
  r.events.reserve(capacity);
  r.next = 0;
  r.wrapped = false;
  r.have_epoch = false;
  g_ring_enabled.store(capacity > 0, std::memory_order_relaxed);
}

std::vector<TraceEvent> trace_events() {
  TraceRing& r = ring();
  std::lock_guard lock(r.mutex);
  if (!r.wrapped) return r.events;
  // Oldest-first rotation of a wrapped ring.
  std::vector<TraceEvent> out;
  out.reserve(r.events.size());
  for (std::size_t i = 0; i < r.events.size(); ++i) {
    out.push_back(r.events[(r.next + i) % r.events.size()]);
  }
  return out;
}

void clear_trace() {
  TraceRing& r = ring();
  std::lock_guard lock(r.mutex);
  r.events.clear();
  r.next = 0;
  r.wrapped = false;
  r.have_epoch = false;
}

std::string trace_json() {
  const auto events = trace_events();
  std::string out = "[";
  bool first = true;
  char buf[64];
  for (const auto& e : events) {
    if (!first) out += ",\n ";
    first = false;
    out += "{\"name\": \"";
    out += e.name;  // site names are code literals: no escaping needed
    out += "\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
    out += std::to_string(e.tid);
    std::snprintf(buf, sizeof(buf), "%.3f", e.start_us);
    out += ", \"ts\": ";
    out += buf;
    std::snprintf(buf, sizeof(buf), "%.3f", e.duration_us);
    out += ", \"dur\": ";
    out += buf;
    out += "}";
  }
  out += "]\n";
  return out;
}

}  // namespace graphulo::obs
