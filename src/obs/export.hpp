#pragma once
// Exporters over MetricsSnapshot: Prometheus text exposition format,
// a JSON snapshot (with a parser, so dumps round-trip), and a human
// table in the style of the Accumulo monitor pages.

#include <string>

#include "obs/metrics.hpp"

namespace graphulo::obs {

/// Prometheus text exposition format (version 0.0.4): one HELP + TYPE
/// line per family, dots in metric names folded to underscores,
/// histograms expanded to cumulative `_bucket{le=...}` + `_sum` +
/// `_count` samples.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// JSON document: {"families": [{name, help, type, series: [...]}]}.
/// Counter/gauge series carry {"labels", "value"}; histogram series
/// carry {"labels", "count", "sum", "bounds", "bucket_counts"}.
std::string to_json(const MetricsSnapshot& snapshot);

/// Parses a to_json() document back into a snapshot. Returns false on
/// malformed input (out is left partially filled). to_json(parse(x))
/// reproduces x byte-for-byte for any x produced by to_json.
bool from_json(const std::string& json, MetricsSnapshot& out);

/// Renders the snapshot as an aligned console table: one row per
/// series; histograms show count, mean, and approximate p50/p95/p99.
std::string metrics_table(const MetricsSnapshot& snapshot,
                          const std::string& title = "metrics");

}  // namespace graphulo::obs
