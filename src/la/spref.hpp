#pragma once
// SpRef / SpAsgn: sparse reference to and assignment of a sub-matrix,
// i.e. MATLAB's A(rows, cols) read and write. Algorithm 1 uses SpRef
// heavily: E(x, :) extracts the rows of the incidence matrix for the
// edges being removed, E(xc, :) keeps the complement.

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "la/spmat.hpp"
#include "la/types.hpp"

namespace graphulo::la {

/// B = A(rows, cols). `rows` and `cols` are index lists (need not be
/// sorted; duplicates allowed, exactly like MATLAB indexing). The result
/// has shape |rows| x |cols| with B(i, j) = A(rows[i], cols[j]).
template <class T>
SpMat<T> spref(const SpMat<T>& a, const std::vector<Index>& rows,
               const std::vector<Index>& cols) {
  for (Index r : rows) {
    if (r < 0 || r >= a.rows()) throw std::out_of_range("spref: row index");
  }
  // Column renumbering: old column -> list of new positions.
  std::vector<std::vector<Index>> col_map(static_cast<std::size_t>(a.cols()));
  for (std::size_t j = 0; j < cols.size(); ++j) {
    if (cols[j] < 0 || cols[j] >= a.cols()) {
      throw std::out_of_range("spref: col index");
    }
    col_map[static_cast<std::size_t>(cols[j])].push_back(static_cast<Index>(j));
  }

  std::vector<Triple<T>> triples;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto rc = a.row_cols(rows[i]);
    const auto rv = a.row_vals(rows[i]);
    for (std::size_t p = 0; p < rc.size(); ++p) {
      for (Index new_col : col_map[static_cast<std::size_t>(rc[p])]) {
        triples.push_back({static_cast<Index>(i), new_col, rv[p]});
      }
    }
  }
  return SpMat<T>::from_triples(static_cast<Index>(rows.size()),
                                static_cast<Index>(cols.size()),
                                std::move(triples));
}

/// B = A(rows, :) — row subset, all columns.
template <class T>
SpMat<T> spref_rows(const SpMat<T>& a, const std::vector<Index>& rows) {
  std::vector<Offset> row_ptr(rows.size() + 1, 0);
  std::vector<Index> cols;
  std::vector<T> vals;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] < 0 || rows[i] >= a.rows()) {
      throw std::out_of_range("spref_rows: row index");
    }
    const auto rc = a.row_cols(rows[i]);
    const auto rv = a.row_vals(rows[i]);
    cols.insert(cols.end(), rc.begin(), rc.end());
    vals.insert(vals.end(), rv.begin(), rv.end());
    row_ptr[i + 1] = static_cast<Offset>(cols.size());
  }
  return SpMat<T>::from_csr(static_cast<Index>(rows.size()), a.cols(),
                            std::move(row_ptr), std::move(cols), std::move(vals));
}

/// B = A(:, cols) — column subset, all rows.
template <class T>
SpMat<T> spref_cols(const SpMat<T>& a, const std::vector<Index>& cols) {
  std::vector<Index> all_rows(static_cast<std::size_t>(a.rows()));
  for (Index i = 0; i < a.rows(); ++i) all_rows[static_cast<std::size_t>(i)] = i;
  return spref(a, all_rows, cols);
}

/// SpAsgn: C = A with C(rows, cols) = B. `rows`/`cols` must contain no
/// duplicates (assignment would be ambiguous). Entries of A inside the
/// (rows x cols) cross-product that B leaves unset are cleared, matching
/// MATLAB's A(r,c) = B semantics.
template <class T>
SpMat<T> spasgn(const SpMat<T>& a, const std::vector<Index>& rows,
                const std::vector<Index>& cols, const SpMat<T>& b) {
  if (static_cast<Index>(rows.size()) != b.rows() ||
      static_cast<Index>(cols.size()) != b.cols()) {
    throw std::invalid_argument("spasgn: shape of B vs index lists");
  }
  std::vector<char> row_sel(static_cast<std::size_t>(a.rows()), 0);
  std::vector<char> col_sel(static_cast<std::size_t>(a.cols()), 0);
  for (Index r : rows) {
    if (r < 0 || r >= a.rows()) throw std::out_of_range("spasgn: row index");
    if (row_sel[static_cast<std::size_t>(r)]) {
      throw std::invalid_argument("spasgn: duplicate row index");
    }
    row_sel[static_cast<std::size_t>(r)] = 1;
  }
  for (Index c : cols) {
    if (c < 0 || c >= a.cols()) throw std::out_of_range("spasgn: col index");
    if (col_sel[static_cast<std::size_t>(c)]) {
      throw std::invalid_argument("spasgn: duplicate col index");
    }
    col_sel[static_cast<std::size_t>(c)] = 1;
  }

  std::vector<Triple<T>> triples;
  // Keep A entries outside the assigned cross-product.
  for (const auto& t : a.to_triples()) {
    if (!(row_sel[static_cast<std::size_t>(t.row)] &&
          col_sel[static_cast<std::size_t>(t.col)])) {
      triples.push_back(t);
    }
  }
  // Insert B entries mapped through the index lists.
  for (const auto& t : b.to_triples()) {
    triples.push_back({rows[static_cast<std::size_t>(t.row)],
                       cols[static_cast<std::size_t>(t.col)], t.val});
  }
  return SpMat<T>::from_triples(a.rows(), a.cols(), std::move(triples));
}

/// The complement of an index set within [0, n): the paper's `xc`.
std::vector<Index> inline complement(const std::vector<Index>& x, Index n) {
  std::vector<char> in_x(static_cast<std::size_t>(n), 0);
  for (Index i : x) {
    if (i < 0 || i >= n) throw std::out_of_range("complement: index");
    in_x[static_cast<std::size_t>(i)] = 1;
  }
  std::vector<Index> xc;
  xc.reserve(static_cast<std::size_t>(n) - x.size());
  for (Index i = 0; i < n; ++i) {
    if (!in_x[static_cast<std::size_t>(i)]) xc.push_back(i);
  }
  return xc;
}

}  // namespace graphulo::la
