#pragma once
// Apply / Scale / Select.
//
// Apply maps a unary function over stored entries (the GraphBLAS Apply
// kernel); results equal to the structural zero are dropped, which is
// exactly how Algorithm 1 turns R into its "(R == 2)" indicator. Scale
// is SpEWiseX with a scalar. Select keeps entries satisfying a
// predicate on (row, col, value) — the generalization the paper uses for
// triu via a user-defined Hadamard function (Section III-C).

#include <functional>
#include <vector>

#include "la/spmat.hpp"
#include "la/types.hpp"

namespace graphulo::la {

/// C(i,j) = f(A(i,j)) on stored entries; entries mapping to `zero` are
/// dropped from the result.
template <class T, class F>
SpMat<T> apply(const SpMat<T>& a, F f, T zero = T{}) {
  std::vector<Offset> row_ptr(static_cast<std::size_t>(a.rows()) + 1, 0);
  std::vector<Index> cols;
  std::vector<T> vals;
  cols.reserve(static_cast<std::size_t>(a.nnz()));
  vals.reserve(static_cast<std::size_t>(a.nnz()));
  for (Index i = 0; i < a.rows(); ++i) {
    const auto rc = a.row_cols(i);
    const auto rv = a.row_vals(i);
    for (std::size_t p = 0; p < rc.size(); ++p) {
      const T v = f(rv[p]);
      if (v != zero) {
        cols.push_back(rc[p]);
        vals.push_back(v);
      }
    }
    row_ptr[static_cast<std::size_t>(i) + 1] = static_cast<Offset>(cols.size());
  }
  return SpMat<T>::from_csr(a.rows(), a.cols(), std::move(row_ptr),
                            std::move(cols), std::move(vals));
}

/// Scale: C = alpha * A (SpEWiseX with a scalar). alpha == 0 empties C.
template <class T>
SpMat<T> scale(const SpMat<T>& a, T alpha) {
  return apply(a, [alpha](T v) { return alpha * v; });
}

/// Select: keep entries where pred(row, col, value) holds.
template <class T, class Pred>
SpMat<T> select(const SpMat<T>& a, Pred pred) {
  std::vector<Offset> row_ptr(static_cast<std::size_t>(a.rows()) + 1, 0);
  std::vector<Index> cols;
  std::vector<T> vals;
  for (Index i = 0; i < a.rows(); ++i) {
    const auto rc = a.row_cols(i);
    const auto rv = a.row_vals(i);
    for (std::size_t p = 0; p < rc.size(); ++p) {
      if (pred(i, rc[p], rv[p])) {
        cols.push_back(rc[p]);
        vals.push_back(rv[p]);
      }
    }
    row_ptr[static_cast<std::size_t>(i) + 1] = static_cast<Offset>(cols.size());
  }
  return SpMat<T>::from_csr(a.rows(), a.cols(), std::move(row_ptr),
                            std::move(cols), std::move(vals));
}

/// Indicator of equality: C(i,j) = 1 where A(i,j) == target — the
/// "(R == 2)" step of Algorithm 1.
template <class T>
SpMat<T> equals_indicator(const SpMat<T>& a, T target) {
  return apply(a, [target](T v) { return v == target ? T{1} : T{0}; });
}

}  // namespace graphulo::la
