#pragma once
// Fundamental index types for the sparse linear algebra layer.
//
// Indices are 32-bit (a matrix dimension may not exceed ~2.1e9), while
// row-pointer offsets are 64-bit so that nnz may exceed 2^31. This is
// the convention used by most GraphBLAS implementations.

#include <cstdint>

namespace graphulo::la {

/// Row/column index.
using Index = std::int32_t;

/// Offset into the nonzero arrays (CSR row pointers).
using Offset = std::int64_t;

}  // namespace graphulo::la
