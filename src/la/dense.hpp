#pragma once
// Small dense matrices.
//
// NMF (Algorithms 3/5) factors a sparse m-by-n matrix into dense
// W (m-by-k) and H (k-by-n) with k tiny (the topic count), and the
// Newton-Schulz inverse (Algorithm 4) runs on k-by-k Gram matrices, so a
// simple row-major dense type with textbook GEMM is all that is needed.

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "la/types.hpp"

namespace graphulo::la {

/// Row-major dense matrix of doubles-or-similar.
template <class T>
class Dense {
 public:
  using value_type = T;

  Dense() = default;

  /// rows-by-cols matrix filled with `fill`.
  Dense(Index rows, Index cols, T fill = T{})
      : rows_(rows),
        cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              fill) {
    if (rows < 0 || cols < 0) throw std::invalid_argument("Dense: shape");
  }

  /// Builds from a row-major initializer.
  static Dense from_rows(Index rows, Index cols, std::vector<T> data) {
    if (data.size() !=
        static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
      throw std::invalid_argument("Dense::from_rows: size mismatch");
    }
    Dense m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_ = std::move(data);
    return m;
  }

  /// n-by-n identity.
  static Dense eye(Index n) {
    Dense m(n, n);
    for (Index i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  Index rows() const noexcept { return rows_; }
  Index cols() const noexcept { return cols_; }

  T& operator()(Index i, Index j) {
    return data_[static_cast<std::size_t>(i) * cols_ + static_cast<std::size_t>(j)];
  }
  T operator()(Index i, Index j) const {
    return data_[static_cast<std::size_t>(i) * cols_ + static_cast<std::size_t>(j)];
  }

  std::span<T> row(Index i) {
    return std::span<T>(data_).subspan(
        static_cast<std::size_t>(i) * cols_, static_cast<std::size_t>(cols_));
  }
  std::span<const T> row(Index i) const {
    return std::span<const T>(data_).subspan(
        static_cast<std::size_t>(i) * cols_, static_cast<std::size_t>(cols_));
  }

  std::span<T> data() noexcept { return data_; }
  std::span<const T> data() const noexcept { return data_; }

  /// Transposed copy.
  Dense transposed() const {
    Dense t(cols_, rows_);
    for (Index i = 0; i < rows_; ++i) {
      for (Index j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    }
    return t;
  }

  friend bool operator==(const Dense&, const Dense&) = default;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<T> data_;
};

/// C = A * B (textbook ikj GEMM; shapes validated).
template <class T>
Dense<T> matmul(const Dense<T>& a, const Dense<T>& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: shape");
  Dense<T> c(a.rows(), b.cols());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index k = 0; k < a.cols(); ++k) {
      const T aik = a(i, k);
      if (aik == T{}) continue;
      const auto brow = b.row(k);
      auto crow = c.row(i);
      for (Index j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

/// C = alpha * A + beta * B, elementwise; shapes must match.
template <class T>
Dense<T> lincomb(T alpha, const Dense<T>& a, T beta, const Dense<T>& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("lincomb: shape");
  }
  Dense<T> c(a.rows(), a.cols());
  for (std::size_t i = 0; i < c.data().size(); ++i) {
    c.data()[i] = alpha * a.data()[i] + beta * b.data()[i];
  }
  return c;
}

/// Frobenius norm.
template <class T>
double fro_norm(const Dense<T>& a) {
  double s = 0.0;
  for (T v : a.data()) s += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(s);
}

/// Frobenius norm of (a - b).
template <class T>
double fro_diff(const Dense<T>& a, const Dense<T>& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("fro_diff: shape");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const double d = static_cast<double>(a.data()[i]) -
                     static_cast<double>(b.data()[i]);
    s += d * d;
  }
  return std::sqrt(s);
}

/// Max row sum: ||A||_inf style norm used to scale the Newton-Schulz
/// starting iterate (Algorithm 4's ||A_row||).
template <class T>
double max_row_sum(const Dense<T>& a) {
  double best = 0.0;
  for (Index i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (T v : a.row(i)) s += std::abs(static_cast<double>(v));
    best = std::max(best, s);
  }
  return best;
}

/// Max column sum (||A||_1 style; Algorithm 4's ||A_col||).
template <class T>
double max_col_sum(const Dense<T>& a) {
  std::vector<double> sums(static_cast<std::size_t>(a.cols()), 0.0);
  for (Index i = 0; i < a.rows(); ++i) {
    const auto r = a.row(i);
    for (Index j = 0; j < a.cols(); ++j) {
      sums[static_cast<std::size_t>(j)] += std::abs(static_cast<double>(r[j]));
    }
  }
  double best = 0.0;
  for (double s : sums) best = std::max(best, s);
  return best;
}

}  // namespace graphulo::la
