#pragma once
// SpMV and SpMSpV: sparse matrix times (dense | sparse) vector over an
// arbitrary semiring — the GraphBLAS SpM{Sp}V kernel. All of the
// paper's centrality metrics (Section III-A) reduce to iterated SpMV;
// BFS and Bellman-Ford use the sparse-vector form.

#include <stdexcept>
#include <vector>

#include "la/semiring.hpp"
#include "la/spmat.hpp"
#include "la/spvec.hpp"
#include "util/parallel.hpp"

namespace graphulo::la {

/// y = A (+.x) x with dense x; y is dense (size = rows of A), initialized
/// to the semiring zero.
template <SemiringPolicy SR>
std::vector<typename SR::value_type> spmv(
    const SpMat<typename SR::value_type>& a,
    const std::vector<typename SR::value_type>& x,
    util::ParallelOptions par = {.grain = 4096}) {
  using T = typename SR::value_type;
  if (static_cast<Index>(x.size()) != a.cols()) {
    throw std::invalid_argument("spmv: dimension mismatch");
  }
  std::vector<T> y(static_cast<std::size_t>(a.rows()), SR::zero());
  util::parallel_for_blocked(
      0, static_cast<std::size_t>(a.rows()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const auto cols = a.row_cols(static_cast<Index>(i));
          const auto vals = a.row_vals(static_cast<Index>(i));
          T acc = SR::zero();
          for (std::size_t p = 0; p < cols.size(); ++p) {
            acc = SR::add(acc,
                          SR::mul(vals[p], x[static_cast<std::size_t>(cols[p])]));
          }
          y[i] = acc;
        }
      },
      par);
  return y;
}

/// y = x^T (+.x) A for dense x (i.e. a column-space product using row
/// access only); returns a dense vector of size cols(A). This is how a
/// row-major store multiplies "vector times matrix" without a transpose.
template <SemiringPolicy SR>
std::vector<typename SR::value_type> vspm(
    const std::vector<typename SR::value_type>& x,
    const SpMat<typename SR::value_type>& a) {
  using T = typename SR::value_type;
  if (static_cast<Index>(x.size()) != a.rows()) {
    throw std::invalid_argument("vspm: dimension mismatch");
  }
  std::vector<T> y(static_cast<std::size_t>(a.cols()), SR::zero());
  for (Index i = 0; i < a.rows(); ++i) {
    const T xi = x[static_cast<std::size_t>(i)];
    if (is_zero<SR>(xi)) continue;
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      auto& slot = y[static_cast<std::size_t>(cols[p])];
      slot = SR::add(slot, SR::mul(xi, vals[p]));
    }
  }
  return y;
}

/// y = x^T (+.x) A with *sparse* x: the SpMSpV kernel. Only rows of A
/// named by x's nonzeros are touched, so the cost is proportional to the
/// frontier's out-edges — the property BFS depends on. Returns a sparse
/// vector of dimension cols(A).
template <SemiringPolicy SR>
SpVec<typename SR::value_type> spmspv(
    const SpVec<typename SR::value_type>& x,
    const SpMat<typename SR::value_type>& a) {
  using T = typename SR::value_type;
  if (x.dim() != a.rows()) {
    throw std::invalid_argument("spmspv: dimension mismatch");
  }
  std::vector<std::pair<Index, T>> products;
  const auto& xi = x.indices();
  const auto& xv = x.values();
  for (std::size_t k = 0; k < xi.size(); ++k) {
    const Index i = xi[k];
    const T v = xv[k];
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      products.emplace_back(cols[p], SR::mul(v, vals[p]));
    }
  }
  return SpVec<T>::from_pairs(a.cols(), std::move(products),
                              [](T p, T q) { return SR::add(p, q); },
                              SR::zero());
}

}  // namespace graphulo::la
