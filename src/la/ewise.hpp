#pragma once
// SpEWiseX and eWiseAdd: element-wise sparse ops.
//
// eWiseMult (the paper's SpEWiseX) works on the *intersection* of the
// two patterns; eWiseAdd on the *union*. Section II observes that
// "addition of two arrays represents a union, and multiplication
// represents a correlation" — these two kernels are that statement.

#include <stdexcept>
#include <vector>

#include "la/semiring.hpp"
#include "la/spmat.hpp"
#include "la/types.hpp"

namespace graphulo::la {

/// C(i,j) = op(A(i,j), B(i,j)) wherever BOTH are stored (pattern
/// intersection). Entries that evaluate to `zero` are dropped.
template <class T, class Op>
SpMat<T> ewise_mult(const SpMat<T>& a, const SpMat<T>& b, Op op, T zero = T{}) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("ewise_mult: shape mismatch");
  }
  std::vector<Offset> row_ptr(static_cast<std::size_t>(a.rows()) + 1, 0);
  std::vector<Index> cols;
  std::vector<T> vals;
  for (Index i = 0; i < a.rows(); ++i) {
    const auto ac = a.row_cols(i);
    const auto av = a.row_vals(i);
    const auto bc = b.row_cols(i);
    const auto bv = b.row_vals(i);
    std::size_t p = 0, q = 0;
    while (p < ac.size() && q < bc.size()) {
      if (ac[p] < bc[q]) {
        ++p;
      } else if (ac[p] > bc[q]) {
        ++q;
      } else {
        const T v = op(av[p], bv[q]);
        if (v != zero) {
          cols.push_back(ac[p]);
          vals.push_back(v);
        }
        ++p;
        ++q;
      }
    }
    row_ptr[static_cast<std::size_t>(i) + 1] = static_cast<Offset>(cols.size());
  }
  return SpMat<T>::from_csr(a.rows(), a.cols(), std::move(row_ptr),
                            std::move(cols), std::move(vals));
}

/// C(i,j) = A(i,j) op B(i,j) over the pattern *union*; where only one
/// operand is stored its value passes through unchanged (op applied with
/// the implicit `zero` would change semantics for non-monoid ops, so the
/// single-operand case copies, which matches GraphBLAS eWiseAdd).
template <class T, class Op>
SpMat<T> ewise_add(const SpMat<T>& a, const SpMat<T>& b, Op op, T zero = T{}) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("ewise_add: shape mismatch");
  }
  std::vector<Offset> row_ptr(static_cast<std::size_t>(a.rows()) + 1, 0);
  std::vector<Index> cols;
  std::vector<T> vals;
  auto emit = [&](Index c, T v) {
    if (v != zero) {
      cols.push_back(c);
      vals.push_back(v);
    }
  };
  for (Index i = 0; i < a.rows(); ++i) {
    const auto ac = a.row_cols(i);
    const auto av = a.row_vals(i);
    const auto bc = b.row_cols(i);
    const auto bv = b.row_vals(i);
    std::size_t p = 0, q = 0;
    while (p < ac.size() || q < bc.size()) {
      if (q >= bc.size() || (p < ac.size() && ac[p] < bc[q])) {
        emit(ac[p], av[p]);
        ++p;
      } else if (p >= ac.size() || bc[q] < ac[p]) {
        emit(bc[q], bv[q]);
        ++q;
      } else {
        emit(ac[p], op(av[p], bv[q]));
        ++p;
        ++q;
      }
    }
    row_ptr[static_cast<std::size_t>(i) + 1] = static_cast<Offset>(cols.size());
  }
  return SpMat<T>::from_csr(a.rows(), a.cols(), std::move(row_ptr),
                            std::move(cols), std::move(vals));
}

/// A + B in ordinary arithmetic.
template <class T>
SpMat<T> add(const SpMat<T>& a, const SpMat<T>& b) {
  return ewise_add(a, b, [](T x, T y) { return x + y; });
}

/// A - B in ordinary arithmetic.
template <class T>
SpMat<T> subtract(const SpMat<T>& a, const SpMat<T>& b) {
  // Union semantics: entries only in B must be negated, which the
  // pass-through rule of ewise_add would get wrong; negate B first.
  SpMat<T> neg = b;
  for (auto& v : neg.values_mut()) v = -v;
  return add(a, neg);
}

/// Hadamard (elementwise) product in ordinary arithmetic.
template <class T>
SpMat<T> hadamard(const SpMat<T>& a, const SpMat<T>& b) {
  return ewise_mult(a, b, [](T x, T y) { return x * y; });
}

}  // namespace graphulo::la
