#pragma once
// Semiring policy types.
//
// Every GraphBLAS kernel in this library is templated on a semiring
// (V, add, mul, zero, one):
//   * `add` is associative and commutative with identity `zero`,
//   * `mul` is associative with identity `one`,
//   * `zero` annihilates under `mul`,
// exactly as defined in Section II of the paper for associative arrays.
// A semiring here is a stateless policy struct; the compiler inlines the
// operations, so semiring genericity costs nothing at runtime.
//
// Section IV of the paper notes that useful graph operations sometimes
// fall *outside* the semiring axioms (e.g. pairing ordinary + with
// logical AND to count exact-overlap entries in the k-truss support
// computation). We expose those as `PlusAnd`-style policies too; the
// kernels only require the operations and identities, not a proof of the
// axioms. The axiom-checking property tests in tests/test_semiring.cpp
// document which policies are honest semirings.

#include <algorithm>
#include <concepts>
#include <limits>
#include <type_traits>

namespace graphulo::la {

/// A semiring policy: value type, add/mul, identities.
template <class SR>
concept SemiringPolicy = requires(typename SR::value_type a,
                                  typename SR::value_type b) {
  typename SR::value_type;
  { SR::zero() } -> std::convertible_to<typename SR::value_type>;
  { SR::one() } -> std::convertible_to<typename SR::value_type>;
  { SR::add(a, b) } -> std::convertible_to<typename SR::value_type>;
  { SR::mul(a, b) } -> std::convertible_to<typename SR::value_type>;
};

/// The conventional arithmetic semiring (+, *, 0, 1).
template <class T>
struct PlusTimes {
  using value_type = T;
  static constexpr T zero() noexcept { return T{0}; }
  static constexpr T one() noexcept { return T{1}; }
  static constexpr T add(T a, T b) noexcept { return a + b; }
  static constexpr T mul(T a, T b) noexcept { return a * b; }
};

/// The tropical (min, +) semiring used for shortest paths. zero() is
/// +infinity (no path), one() is 0 (empty path).
template <class T>
struct MinPlus {
  using value_type = T;
  static constexpr T zero() noexcept {
    return std::numeric_limits<T>::has_infinity
               ? std::numeric_limits<T>::infinity()
               : std::numeric_limits<T>::max();
  }
  static constexpr T one() noexcept { return T{0}; }
  static constexpr T add(T a, T b) noexcept { return std::min(a, b); }
  static constexpr T mul(T a, T b) noexcept {
    // Saturating +: infinity must annihilate.
    if (a == zero() || b == zero()) return zero();
    return a + b;
  }
};

/// The (max, +) semiring (longest paths on DAGs, critical paths).
template <class T>
struct MaxPlus {
  using value_type = T;
  static constexpr T zero() noexcept {
    return std::numeric_limits<T>::has_infinity
               ? -std::numeric_limits<T>::infinity()
               : std::numeric_limits<T>::lowest();
  }
  static constexpr T one() noexcept { return T{0}; }
  static constexpr T add(T a, T b) noexcept { return std::max(a, b); }
  static constexpr T mul(T a, T b) noexcept {
    if (a == zero() || b == zero()) return zero();
    return a + b;
  }
};

/// Boolean (OR, AND) semiring: reachability / unweighted BFS.
struct OrAnd {
  using value_type = bool;
  static constexpr bool zero() noexcept { return false; }
  static constexpr bool one() noexcept { return true; }
  static constexpr bool add(bool a, bool b) noexcept { return a || b; }
  static constexpr bool mul(bool a, bool b) noexcept { return a && b; }
};

/// The boolean (OR, AND) semiring over double storage (0.0 / 1.0):
/// structure-only products on matrices that carry numeric values.
struct OrAndDouble {
  using value_type = double;
  static constexpr double zero() noexcept { return 0.0; }
  static constexpr double one() noexcept { return 1.0; }
  static constexpr double add(double a, double b) noexcept {
    return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
  }
  static constexpr double mul(double a, double b) noexcept {
    return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
  }
};

/// (min, max) semiring: bottleneck / minimax paths.
template <class T>
struct MinMax {
  using value_type = T;
  static constexpr T zero() noexcept {
    return std::numeric_limits<T>::has_infinity
               ? std::numeric_limits<T>::infinity()
               : std::numeric_limits<T>::max();
  }
  static constexpr T one() noexcept {
    return std::numeric_limits<T>::has_infinity
               ? -std::numeric_limits<T>::infinity()
               : std::numeric_limits<T>::lowest();
  }
  static constexpr T add(T a, T b) noexcept { return std::min(a, b); }
  static constexpr T mul(T a, T b) noexcept { return std::max(a, b); }
};

/// (+, AND) pairing from the paper's Discussion (Section IV): multiply is
/// a logical AND (both operands nonzero -> 1), accumulate with ordinary
/// addition, so C(i,j) counts positions where row i of A and column j of
/// B are *both* nonzero. This computes the k-truss edge-support overlap
/// directly, skipping additions that cannot produce the value 2.
/// NOT a semiring (mul lacks an identity consistent with the axioms) --
/// the kernels accept it anyway.
template <class T>
struct PlusAnd {
  using value_type = T;
  static constexpr T zero() noexcept { return T{0}; }
  static constexpr T one() noexcept { return T{1}; }
  static constexpr T add(T a, T b) noexcept { return a + b; }
  static constexpr T mul(T a, T b) noexcept {
    return (a != T{0} && b != T{0}) ? T{1} : T{0};
  }
};

/// (+, min) pairing used e.g. for weighted overlap accumulation.
template <class T>
struct PlusMin {
  using value_type = T;
  static constexpr T zero() noexcept { return T{0}; }
  static constexpr T one() noexcept { return std::numeric_limits<T>::max(); }
  static constexpr T add(T a, T b) noexcept { return a + b; }
  static constexpr T mul(T a, T b) noexcept { return std::min(a, b); }
};

/// (max, min): widest-path / fuzzy-logic pairing.
template <class T>
struct MaxMin {
  using value_type = T;
  static constexpr T zero() noexcept { return std::numeric_limits<T>::lowest(); }
  static constexpr T one() noexcept { return std::numeric_limits<T>::max(); }
  static constexpr T add(T a, T b) noexcept { return std::max(a, b); }
  static constexpr T mul(T a, T b) noexcept { return std::min(a, b); }
};

/// True when `v` equals the semiring's additive identity; such entries
/// are "structural zeros" and are pruned from sparse results.
template <SemiringPolicy SR>
constexpr bool is_zero(typename SR::value_type v) noexcept {
  return v == SR::zero();
}

}  // namespace graphulo::la
