#pragma once
// Mixed sparse-dense products used by NMF (Algorithms 3/5):
//   * Dense = SpMat * Dense   (e.g. A * H^T pieces)
//   * Dense = Dense * SpMat   (e.g. W^T * A)
// k (the dense dimension) is small, so these are row-streaming loops
// over the sparse operand with dense accumulation.

#include <stdexcept>

#include "la/dense.hpp"
#include "la/spmat.hpp"
#include "util/parallel.hpp"

namespace graphulo::la {

/// C (m x k) = A (m x n, sparse) * B (n x k, dense).
template <class T>
Dense<T> spmm(const SpMat<T>& a, const Dense<T>& b,
              util::ParallelOptions par = {.grain = 2048}) {
  if (a.cols() != b.rows()) throw std::invalid_argument("spmm: inner dims");
  Dense<T> c(a.rows(), b.cols());
  util::parallel_for_blocked(
      0, static_cast<std::size_t>(a.rows()),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const auto cols = a.row_cols(static_cast<Index>(i));
          const auto vals = a.row_vals(static_cast<Index>(i));
          auto crow = c.row(static_cast<Index>(i));
          for (std::size_t p = 0; p < cols.size(); ++p) {
            const T v = vals[p];
            const auto brow = b.row(cols[p]);
            for (Index j = 0; j < b.cols(); ++j) crow[j] += v * brow[j];
          }
        }
      },
      par);
  return c;
}

/// C (k x n) = B (k x m, dense) * A (m x n, sparse).
template <class T>
Dense<T> mmsp(const Dense<T>& b, const SpMat<T>& a) {
  if (b.cols() != a.rows()) throw std::invalid_argument("mmsp: inner dims");
  Dense<T> c(b.rows(), a.cols());
  for (Index i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (Index r = 0; r < b.rows(); ++r) {
      const T bri = b(r, i);
      if (bri == T{}) continue;
      auto crow = c.row(r);
      for (std::size_t p = 0; p < cols.size(); ++p) {
        crow[cols[p]] += bri * vals[p];
      }
    }
  }
  return c;
}

/// ||A - W*H||_F without materializing W*H densely when A is much
/// sparser than m*n: iterates over the full (i, j) grid blockwise but
/// only needs O(k) work per cell; adequate for the NMF problem sizes in
/// the paper's Fig. 3 experiment. For very large m*n use
/// `fro_diff_sampled` below.
template <class T>
double fro_diff_sparse_dense(const SpMat<T>& a, const Dense<T>& w,
                             const Dense<T>& h) {
  if (w.rows() != a.rows() || h.cols() != a.cols() || w.cols() != h.rows()) {
    throw std::invalid_argument("fro_diff_sparse_dense: shapes");
  }
  const Index k = w.cols();
  double total = 0.0;
  for (Index i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    std::size_t p = 0;
    const auto wrow = w.row(i);
    for (Index j = 0; j < a.cols(); ++j) {
      double wh = 0.0;
      for (Index t = 0; t < k; ++t) {
        wh += static_cast<double>(wrow[t]) * static_cast<double>(h(t, j));
      }
      double aij = 0.0;
      if (p < cols.size() && cols[p] == j) {
        aij = static_cast<double>(vals[p]);
        ++p;
      }
      const double d = aij - wh;
      total += d * d;
    }
  }
  return std::sqrt(total);
}

}  // namespace graphulo::la
