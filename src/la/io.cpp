#include "la/io.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace graphulo::la {

bool write_matrix_market(const SpMat<double>& a, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  for (const auto& t : a.to_triples()) {
    out << (t.row + 1) << ' ' << (t.col + 1) << ' ' << t.val << '\n';
  }
  return static_cast<bool>(out);
}

SpMat<double> read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_matrix_market: cannot open " + path);
  std::string header;
  if (!std::getline(in, header)) {
    throw std::runtime_error("read_matrix_market: empty file");
  }
  std::istringstream hs(header);
  std::string banner, object, format, field, symmetry;
  hs >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket" || object != "matrix" ||
      format != "coordinate") {
    throw std::runtime_error("read_matrix_market: unsupported header");
  }
  const bool pattern = field == "pattern";
  if (!pattern && field != "real" && field != "integer") {
    throw std::runtime_error("read_matrix_market: unsupported field " + field);
  }
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general") {
    throw std::runtime_error("read_matrix_market: unsupported symmetry " +
                             symmetry);
  }

  std::string line;
  // Skip comment lines.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  long rows = 0, cols = 0, nnz = 0;
  if (!(dims >> rows >> cols >> nnz) || rows < 0 || cols < 0) {
    throw std::runtime_error("read_matrix_market: bad size line");
  }
  std::vector<Triple<double>> triples;
  triples.reserve(static_cast<std::size_t>(nnz));
  for (long k = 0; k < nnz; ++k) {
    long i = 0, j = 0;
    double v = 1.0;
    if (!(in >> i >> j)) {
      throw std::runtime_error("read_matrix_market: truncated entries");
    }
    if (!pattern && !(in >> v)) {
      throw std::runtime_error("read_matrix_market: missing value");
    }
    if (i < 1 || i > rows || j < 1 || j > cols) {
      throw std::runtime_error("read_matrix_market: index out of range");
    }
    triples.push_back({static_cast<Index>(i - 1), static_cast<Index>(j - 1), v});
    if (symmetric && i != j) {
      triples.push_back(
          {static_cast<Index>(j - 1), static_cast<Index>(i - 1), v});
    }
  }
  return SpMat<double>::from_triples(static_cast<Index>(rows),
                                     static_cast<Index>(cols),
                                     std::move(triples));
}

bool write_edge_tsv(const SpMat<double>& a, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const auto& t : a.to_triples()) {
    out << t.row << '\t' << t.col << '\t' << t.val << '\n';
  }
  return static_cast<bool>(out);
}

SpMat<double> read_edge_tsv(const std::string& path, Index n) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_edge_tsv: cannot open " + path);
  std::vector<Triple<double>> triples;
  Index max_id = -1;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    long u = 0, v = 0;
    double w = 1.0;
    if (!(ls >> u >> v)) {
      throw std::runtime_error("read_edge_tsv: bad line: " + line);
    }
    ls >> w;  // optional weight
    if (u < 0 || v < 0) {
      throw std::runtime_error("read_edge_tsv: negative vertex id");
    }
    triples.push_back({static_cast<Index>(u), static_cast<Index>(v), w});
    max_id = std::max({max_id, static_cast<Index>(u), static_cast<Index>(v)});
  }
  const Index dim = n > 0 ? n : max_id + 1;
  return SpMat<double>::from_triples(dim, dim, std::move(triples));
}

}  // namespace graphulo::la
