#pragma once
// Reduce: fold the stored entries of each row / each column / the whole
// matrix with a monoid. Degree centrality (Section III-A) is exactly a
// row or column Reduce of the adjacency matrix; Algorithm 1's
// `d = sum(E)` is a column Reduce of the incidence matrix.

#include <vector>

#include "la/spmat.hpp"
#include "la/types.hpp"

namespace graphulo::la {

/// Row reduction: out[i] = fold of row i under `op` starting from `init`.
/// Rows with no stored entries yield `init`.
template <class T, class Op>
std::vector<T> reduce_rows(const SpMat<T>& a, Op op, T init = T{}) {
  std::vector<T> out(static_cast<std::size_t>(a.rows()), init);
  for (Index i = 0; i < a.rows(); ++i) {
    T acc = init;
    for (T v : a.row_vals(i)) acc = op(acc, v);
    out[static_cast<std::size_t>(i)] = acc;
  }
  return out;
}

/// Column reduction: out[j] = fold of column j.
template <class T, class Op>
std::vector<T> reduce_cols(const SpMat<T>& a, Op op, T init = T{}) {
  std::vector<T> out(static_cast<std::size_t>(a.cols()), init);
  const auto cols = a.col_idx();
  const auto vals = a.values();
  for (std::size_t p = 0; p < cols.size(); ++p) {
    auto& slot = out[static_cast<std::size_t>(cols[p])];
    slot = op(slot, vals[p]);
  }
  return out;
}

/// Whole-matrix reduction.
template <class T, class Op>
T reduce_all(const SpMat<T>& a, Op op, T init = T{}) {
  T acc = init;
  for (T v : a.values()) acc = op(acc, v);
  return acc;
}

/// Row sums (ordinary +). The paper's `sum(E, 2)`-style reduction.
template <class T>
std::vector<T> row_sums(const SpMat<T>& a) {
  return reduce_rows(a, [](T x, T y) { return x + y; });
}

/// Column sums (ordinary +). The paper's `d = sum(E)`.
template <class T>
std::vector<T> col_sums(const SpMat<T>& a) {
  return reduce_cols(a, [](T x, T y) { return x + y; });
}

/// Number of stored entries per row (structure-only degree).
template <class T>
std::vector<Index> row_nnz_counts(const SpMat<T>& a) {
  std::vector<Index> out(static_cast<std::size_t>(a.rows()));
  for (Index i = 0; i < a.rows(); ++i) {
    out[static_cast<std::size_t>(i)] = a.row_degree(i);
  }
  return out;
}

}  // namespace graphulo::la
