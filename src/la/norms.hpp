#pragma once
// Norms over sparse matrices and dense vectors: convergence tests for
// the power method (Section III-A), Newton-Schulz (Algorithm 4) and NMF
// (Algorithms 3/5) all reduce to these.

#include <cmath>
#include <stdexcept>
#include <vector>

#include "la/ewise.hpp"
#include "la/spmat.hpp"

namespace graphulo::la {

/// Frobenius norm of a sparse matrix.
template <class T>
double fro_norm(const SpMat<T>& a) {
  double s = 0.0;
  for (T v : a.values()) {
    s += static_cast<double>(v) * static_cast<double>(v);
  }
  return std::sqrt(s);
}

/// ||A - B||_F for sparse matrices of equal shape.
template <class T>
double fro_diff(const SpMat<T>& a, const SpMat<T>& b) {
  return fro_norm(subtract(a, b));
}

/// Euclidean norm of a dense vector.
template <class T>
double norm2(const std::vector<T>& x) {
  double s = 0.0;
  for (T v : x) s += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(s);
}

/// Dot product of dense vectors.
template <class T>
double dot(const std::vector<T>& x, const std::vector<T>& y) {
  if (x.size() != y.size()) throw std::invalid_argument("dot: size");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    s += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return s;
}

/// Sum of entries of a dense vector.
template <class T>
double vec_sum(const std::vector<T>& x) {
  double s = 0.0;
  for (T v : x) s += static_cast<double>(v);
  return s;
}

/// x / ||x||_2 in place; returns the norm. A zero vector is untouched.
template <class T>
double normalize2(std::vector<T>& x) {
  const double n = norm2(x);
  if (n > 0.0) {
    for (auto& v : x) v = static_cast<T>(static_cast<double>(v) / n);
  }
  return n;
}

}  // namespace graphulo::la
