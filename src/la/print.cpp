#include "la/print.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace graphulo::la {

namespace {

std::string fmt_value(double v, int precision) {
  char buf[64];
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  }
  return buf;
}

std::string render_grid(const std::vector<std::vector<std::string>>& cells) {
  std::size_t width = 1;
  for (const auto& row : cells) {
    for (const auto& cell : row) width = std::max(width, cell.size());
  }
  std::ostringstream out;
  for (const auto& row : cells) {
    out << "[ ";
    for (const auto& cell : row) {
      out << std::string(width - cell.size(), ' ') << cell << ' ';
    }
    out << "]\n";
  }
  return out.str();
}

}  // namespace

std::string to_pretty_string(const SpMat<double>& a, int precision) {
  std::vector<std::vector<std::string>> cells(
      static_cast<std::size_t>(a.rows()),
      std::vector<std::string>(static_cast<std::size_t>(a.cols()), "0"));
  for (const auto& t : a.to_triples()) {
    cells[static_cast<std::size_t>(t.row)][static_cast<std::size_t>(t.col)] =
        fmt_value(t.val, precision);
  }
  return render_grid(cells);
}

std::string to_pretty_string(const Dense<double>& a, int precision) {
  std::vector<std::vector<std::string>> cells(
      static_cast<std::size_t>(a.rows()),
      std::vector<std::string>(static_cast<std::size_t>(a.cols())));
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < a.cols(); ++j) {
      cells[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          fmt_value(a(i, j), precision);
    }
  }
  return render_grid(cells);
}

std::string to_pretty_string(const std::vector<double>& v, int precision) {
  std::ostringstream out;
  out << "[ ";
  for (double x : v) out << fmt_value(x, precision) << ' ';
  out << "]";
  return out.str();
}

}  // namespace graphulo::la
