#pragma once
// Human-readable rendering of small matrices — used by the worked-example
// benches to print the exact intermediate matrices from the paper's
// Figures 1 and 2.

#include <string>
#include <vector>

#include "la/dense.hpp"
#include "la/spmat.hpp"

namespace graphulo::la {

/// Renders a sparse matrix densely with aligned columns. Intended for
/// small matrices (worked examples); `precision` controls float digits,
/// and integral values print without a decimal point.
std::string to_pretty_string(const SpMat<double>& a, int precision = 3);

/// Renders a dense matrix with aligned columns.
std::string to_pretty_string(const Dense<double>& a, int precision = 3);

/// Renders a dense vector on one line.
std::string to_pretty_string(const std::vector<double>& v, int precision = 3);

}  // namespace graphulo::la
