#pragma once
// Sparse vector: sorted (index, value) pairs. Used as the frontier type
// by SpMSpV-based traversals (BFS, Bellman-Ford with sparse frontiers).

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "la/types.hpp"

namespace graphulo::la {

/// Sparse vector over value type T; indices strictly increasing.
template <class T>
class SpVec {
 public:
  using value_type = T;

  SpVec() = default;

  /// Empty sparse vector of logical dimension n.
  explicit SpVec(Index n) : dim_(n) {
    if (n < 0) throw std::invalid_argument("SpVec: negative dimension");
  }

  /// Builds from unsorted (index, value) pairs; duplicates combined with
  /// `combine`, entries equal to `zero` dropped.
  template <class Combine>
  static SpVec from_pairs(Index n, std::vector<std::pair<Index, T>> pairs,
                          Combine combine, T zero = T{}) {
    SpVec v(n);
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [i, x] : pairs) {
      if (i < 0 || i >= n) throw std::out_of_range("SpVec::from_pairs");
      if (!v.idx_.empty() && v.idx_.back() == i) {
        v.val_.back() = combine(v.val_.back(), x);
      } else {
        v.idx_.push_back(i);
        v.val_.push_back(x);
      }
    }
    // Drop zeros after combining.
    std::size_t out = 0;
    for (std::size_t k = 0; k < v.idx_.size(); ++k) {
      if (v.val_[k] != zero) {
        v.idx_[out] = v.idx_[k];
        v.val_[out] = v.val_[k];
        ++out;
      }
    }
    v.idx_.resize(out);
    v.val_.resize(out);
    return v;
  }

  static SpVec from_pairs(Index n, std::vector<std::pair<Index, T>> pairs) {
    return from_pairs(n, std::move(pairs), [](T a, T b) { return a + b; });
  }

  /// Appends an entry; index must exceed the last stored index.
  void push_back(Index i, T v) {
    if (i < 0 || i >= dim_ || (!idx_.empty() && idx_.back() >= i)) {
      throw std::invalid_argument("SpVec::push_back: index order");
    }
    idx_.push_back(i);
    val_.push_back(v);
  }

  Index dim() const noexcept { return dim_; }
  std::size_t nnz() const noexcept { return idx_.size(); }
  bool empty() const noexcept { return idx_.empty(); }

  const std::vector<Index>& indices() const noexcept { return idx_; }
  const std::vector<T>& values() const noexcept { return val_; }
  std::vector<T>& values_mut() noexcept { return val_; }

  /// Value at index i, or `zero` if absent. O(log nnz).
  T at(Index i, T zero = T{}) const {
    auto it = std::lower_bound(idx_.begin(), idx_.end(), i);
    if (it == idx_.end() || *it != i) return zero;
    return val_[static_cast<std::size_t>(it - idx_.begin())];
  }

  /// Dense copy with `zero` fill.
  std::vector<T> to_dense(T zero = T{}) const {
    std::vector<T> dense(static_cast<std::size_t>(dim_), zero);
    for (std::size_t k = 0; k < idx_.size(); ++k) {
      dense[static_cast<std::size_t>(idx_[k])] = val_[k];
    }
    return dense;
  }

  friend bool operator==(const SpVec&, const SpVec&) = default;

 private:
  Index dim_ = 0;
  std::vector<Index> idx_;
  std::vector<T> val_;
};

}  // namespace graphulo::la
