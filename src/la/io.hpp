#pragma once
// Sparse matrix file I/O: Matrix Market coordinate format (the standard
// interchange format for sparse matrices, so graphs from SuiteSparse /
// SNAP collections can be loaded) and plain TSV edge lists.

#include <string>

#include "la/spmat.hpp"

namespace graphulo::la {

/// Writes A in MatrixMarket coordinate format ("%%MatrixMarket matrix
/// coordinate real general"). Returns false on I/O failure.
bool write_matrix_market(const SpMat<double>& a, const std::string& path);

/// Reads a MatrixMarket coordinate file (real or pattern, general or
/// symmetric — symmetric entries are mirrored). Throws
/// std::runtime_error on parse errors or unsupported qualifiers.
SpMat<double> read_matrix_market(const std::string& path);

/// Writes "src<TAB>dst<TAB>weight" lines, one stored entry per line.
bool write_edge_tsv(const SpMat<double>& a, const std::string& path);

/// Reads a TSV/space-separated edge list ("src dst [weight]"), 0-based
/// vertex ids; dimension = 1 + max id unless `n` > 0 forces the shape.
/// Duplicate edges sum. Lines starting with '#' or '%' are comments.
SpMat<double> read_edge_tsv(const std::string& path, Index n = 0);

}  // namespace graphulo::la
