#pragma once
// Kronecker product of sparse matrices over a semiring's multiply.
// The Graph500/R-MAT generator family is defined by iterated Kronecker
// products of a small seed matrix; gen/rmat.cpp samples that
// distribution, and this explicit kernel lets tests cross-check small
// instances against the exact product.

#include <limits>
#include <stdexcept>
#include <vector>

#include "la/spmat.hpp"
#include "la/types.hpp"

namespace graphulo::la {

/// C = A (x) B, shape (rowsA*rowsB) x (colsA*colsB), with
/// C(ia*rowsB + ib, ja*colsB + jb) = mul(A(ia,ja), B(ib,jb)).
template <class T, class Mul>
SpMat<T> kron(const SpMat<T>& a, const SpMat<T>& b, Mul mul) {
  const std::size_t out_rows =
      static_cast<std::size_t>(a.rows()) * static_cast<std::size_t>(b.rows());
  const std::size_t out_cols =
      static_cast<std::size_t>(a.cols()) * static_cast<std::size_t>(b.cols());
  if (out_rows > static_cast<std::size_t>(std::numeric_limits<Index>::max()) ||
      out_cols > static_cast<std::size_t>(std::numeric_limits<Index>::max())) {
    throw std::invalid_argument("kron: result dimension overflows Index");
  }
  std::vector<Triple<T>> triples;
  triples.reserve(static_cast<std::size_t>(a.nnz()) *
                  static_cast<std::size_t>(b.nnz()));
  for (const auto& ta : a.to_triples()) {
    for (const auto& tb : b.to_triples()) {
      triples.push_back({ta.row * b.rows() + tb.row,
                         ta.col * b.cols() + tb.col, mul(ta.val, tb.val)});
    }
  }
  return SpMat<T>::from_triples(static_cast<Index>(out_rows),
                                static_cast<Index>(out_cols),
                                std::move(triples));
}

/// Arithmetic Kronecker product.
template <class T>
SpMat<T> kron(const SpMat<T>& a, const SpMat<T>& b) {
  return kron(a, b, [](T x, T y) { return x * y; });
}

}  // namespace graphulo::la
