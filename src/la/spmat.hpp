#pragma once
// Compressed sparse row (CSR) matrix and the COO triple builder.
//
// The paper treats associative arrays "encoded as sparse matrices"
// (Section II-A); SpMat<T> is that encoding. Entries equal to the
// semiring zero are never stored. Column indices within each row are
// strictly increasing — every kernel relies on (and preserves) this
// invariant; `check_invariants()` asserts it in debug builds and tests.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "la/semiring.hpp"
#include "la/types.hpp"

namespace graphulo::la {

/// One (row, col, value) coordinate entry.
template <class T>
struct Triple {
  Index row;
  Index col;
  T val;

  friend bool operator==(const Triple&, const Triple&) = default;
};

/// Sparse matrix in CSR format over value type T.
template <class T>
class SpMat {
 public:
  using value_type = T;

  /// Empty 0x0 matrix.
  SpMat() = default;

  /// Matrix of the given shape with no stored entries.
  SpMat(Index rows, Index cols)
      : rows_(rows), cols_(cols), row_ptr_(static_cast<std::size_t>(rows) + 1, 0) {
    if (rows < 0 || cols < 0) {
      throw std::invalid_argument("SpMat: negative dimension");
    }
  }

  /// Builds from unordered COO triples. Duplicate coordinates are
  /// combined with `combine` (defaults to the PlusTimes add); entries
  /// equal to `zero` after combining are dropped.
  static SpMat from_triples(Index rows, Index cols,
                            std::vector<Triple<T>> triples,
                            std::function<T(T, T)> combine = nullptr,
                            T zero = T{}) {
    SpMat m(rows, cols);
    if (!combine) combine = [](T a, T b) { return a + b; };
    for (const auto& t : triples) {
      if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
        throw std::out_of_range("SpMat::from_triples: coordinate out of range");
      }
    }
    std::sort(triples.begin(), triples.end(),
              [](const Triple<T>& a, const Triple<T>& b) {
                return a.row != b.row ? a.row < b.row : a.col < b.col;
              });
    // Combine duplicates in place.
    std::size_t out = 0;
    for (std::size_t i = 0; i < triples.size(); ++i) {
      if (out > 0 && triples[out - 1].row == triples[i].row &&
          triples[out - 1].col == triples[i].col) {
        triples[out - 1].val = combine(triples[out - 1].val, triples[i].val);
      } else {
        triples[out++] = triples[i];
      }
    }
    triples.resize(out);
    // Drop zeros, then fill CSR.
    std::erase_if(triples, [&](const Triple<T>& t) { return t.val == zero; });
    m.col_.reserve(triples.size());
    m.val_.reserve(triples.size());
    for (const auto& t : triples) {
      ++m.row_ptr_[static_cast<std::size_t>(t.row) + 1];
      m.col_.push_back(t.col);
      m.val_.push_back(t.val);
    }
    std::partial_sum(m.row_ptr_.begin(), m.row_ptr_.end(), m.row_ptr_.begin());
    return m;
  }

  /// Builds directly from CSR arrays (validated).
  static SpMat from_csr(Index rows, Index cols, std::vector<Offset> row_ptr,
                        std::vector<Index> col, std::vector<T> val) {
    SpMat m(rows, cols);
    if (row_ptr.size() != static_cast<std::size_t>(rows) + 1 ||
        col.size() != val.size() ||
        row_ptr.empty() || row_ptr.front() != 0 ||
        row_ptr.back() != static_cast<Offset>(col.size())) {
      throw std::invalid_argument("SpMat::from_csr: inconsistent arrays");
    }
    m.row_ptr_ = std::move(row_ptr);
    m.col_ = std::move(col);
    m.val_ = std::move(val);
    m.check_invariants();
    return m;
  }

  /// Builds from a dense row-major array (tests and worked examples).
  static SpMat from_dense(Index rows, Index cols, std::span<const T> dense,
                          T zero = T{}) {
    if (dense.size() != static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
      throw std::invalid_argument("SpMat::from_dense: size mismatch");
    }
    std::vector<Triple<T>> triples;
    for (Index i = 0; i < rows; ++i) {
      for (Index j = 0; j < cols; ++j) {
        const T v = dense[static_cast<std::size_t>(i) * cols + j];
        if (v != zero) triples.push_back({i, j, v});
      }
    }
    return from_triples(rows, cols, std::move(triples));
  }

  Index rows() const noexcept { return rows_; }
  Index cols() const noexcept { return cols_; }
  Offset nnz() const noexcept { return static_cast<Offset>(col_.size()); }
  bool empty() const noexcept { return col_.empty(); }

  /// CSR row pointers (size rows()+1).
  std::span<const Offset> row_ptr() const noexcept { return row_ptr_; }
  /// Column indices of stored entries, row-major, ascending within a row.
  std::span<const Index> col_idx() const noexcept { return col_; }
  /// Stored values, aligned with col_idx().
  std::span<const T> values() const noexcept { return val_; }
  /// Mutable values (structure-preserving updates only).
  std::span<T> values_mut() noexcept { return val_; }

  /// Number of stored entries in row i.
  Index row_degree(Index i) const {
    bounds_check_row(i);
    return static_cast<Index>(row_ptr_[i + 1] - row_ptr_[i]);
  }

  /// Columns of row i.
  std::span<const Index> row_cols(Index i) const {
    bounds_check_row(i);
    return std::span<const Index>(col_).subspan(
        static_cast<std::size_t>(row_ptr_[i]),
        static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i]));
  }

  /// Values of row i.
  std::span<const T> row_vals(Index i) const {
    bounds_check_row(i);
    return std::span<const T>(val_).subspan(
        static_cast<std::size_t>(row_ptr_[i]),
        static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i]));
  }

  /// Value at (i, j), or `zero` when not stored. O(log nnz(row i)).
  T at(Index i, Index j, T zero = T{}) const {
    bounds_check_row(i);
    if (j < 0 || j >= cols_) throw std::out_of_range("SpMat::at: column");
    const auto cols_span = row_cols(i);
    const auto it = std::lower_bound(cols_span.begin(), cols_span.end(), j);
    if (it == cols_span.end() || *it != j) return zero;
    return val_[static_cast<std::size_t>(row_ptr_[i] + (it - cols_span.begin()))];
  }

  /// All stored entries as COO triples (row-major order).
  std::vector<Triple<T>> to_triples() const {
    std::vector<Triple<T>> out;
    out.reserve(static_cast<std::size_t>(nnz()));
    for (Index i = 0; i < rows_; ++i) {
      for (Offset p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
        out.push_back({i, col_[static_cast<std::size_t>(p)],
                       val_[static_cast<std::size_t>(p)]});
      }
    }
    return out;
  }

  /// Dense row-major copy (tests / worked examples only).
  std::vector<T> to_dense(T zero = T{}) const {
    std::vector<T> dense(
        static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_), zero);
    for (Index i = 0; i < rows_; ++i) {
      for (Offset p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
        dense[static_cast<std::size_t>(i) * cols_ +
              static_cast<std::size_t>(col_[static_cast<std::size_t>(p)])] =
            val_[static_cast<std::size_t>(p)];
      }
    }
    return dense;
  }

  /// Structural + value equality.
  friend bool operator==(const SpMat& a, const SpMat& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
           a.row_ptr_ == b.row_ptr_ && a.col_ == b.col_ && a.val_ == b.val_;
  }

  /// Verifies CSR invariants; throws std::logic_error on violation.
  void check_invariants() const {
    if (row_ptr_.size() != static_cast<std::size_t>(rows_) + 1) {
      throw std::logic_error("SpMat: row_ptr size");
    }
    if (row_ptr_.front() != 0 ||
        row_ptr_.back() != static_cast<Offset>(col_.size()) ||
        col_.size() != val_.size()) {
      throw std::logic_error("SpMat: offset bookkeeping");
    }
    for (Index i = 0; i < rows_; ++i) {
      if (row_ptr_[i] > row_ptr_[i + 1]) {
        throw std::logic_error("SpMat: row_ptr not monotone");
      }
      for (Offset p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
        const Index c = col_[static_cast<std::size_t>(p)];
        if (c < 0 || c >= cols_) throw std::logic_error("SpMat: column range");
        if (p > row_ptr_[i] && col_[static_cast<std::size_t>(p - 1)] >= c) {
          throw std::logic_error("SpMat: columns not strictly increasing");
        }
      }
    }
  }

 private:
  void bounds_check_row(Index i) const {
    if (i < 0 || i >= rows_) throw std::out_of_range("SpMat: row index");
  }

  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Offset> row_ptr_{0};
  std::vector<Index> col_;
  std::vector<T> val_;
};

/// Transpose via counting sort: O(nnz + rows + cols).
template <class T>
SpMat<T> transpose(const SpMat<T>& a) {
  std::vector<Offset> t_ptr(static_cast<std::size_t>(a.cols()) + 1, 0);
  const auto cols = a.col_idx();
  const auto vals = a.values();
  for (Index c : cols) ++t_ptr[static_cast<std::size_t>(c) + 1];
  std::partial_sum(t_ptr.begin(), t_ptr.end(), t_ptr.begin());
  std::vector<Index> t_col(cols.size());
  std::vector<T> t_val(cols.size());
  std::vector<Offset> cursor(t_ptr.begin(), t_ptr.end() - 1);
  for (Index i = 0; i < a.rows(); ++i) {
    for (Offset p = a.row_ptr()[i]; p < a.row_ptr()[i + 1]; ++p) {
      const Index c = cols[static_cast<std::size_t>(p)];
      const Offset q = cursor[static_cast<std::size_t>(c)]++;
      t_col[static_cast<std::size_t>(q)] = i;
      t_val[static_cast<std::size_t>(q)] = vals[static_cast<std::size_t>(p)];
    }
  }
  return SpMat<T>::from_csr(a.cols(), a.rows(), std::move(t_ptr),
                            std::move(t_col), std::move(t_val));
}

/// n-by-n identity (values = one).
template <class T>
SpMat<T> identity(Index n, T one = T{1}) {
  std::vector<Offset> ptr(static_cast<std::size_t>(n) + 1);
  std::vector<Index> col(static_cast<std::size_t>(n));
  std::vector<T> val(static_cast<std::size_t>(n), one);
  for (Index i = 0; i <= n; ++i) ptr[static_cast<std::size_t>(i)] = i;
  for (Index i = 0; i < n; ++i) col[static_cast<std::size_t>(i)] = i;
  return SpMat<T>::from_csr(n, n, std::move(ptr), std::move(col), std::move(val));
}

}  // namespace graphulo::la
