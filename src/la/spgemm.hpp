#pragma once
// SpGEMM: sparse generalized matrix-matrix multiply, C = A (+.x) B over
// an arbitrary semiring. This is the workhorse GraphBLAS kernel the
// paper's Algorithms 1, 2 and 5 are built on.
//
// Implementation: Gustavson's row-wise algorithm. For each row i of A,
// the partial products A(i,k) (x) B(k,:) are accumulated into a sparse
// accumulator (SPA). Two SPA strategies are provided and ablated in
// bench_kernels:
//   * dense SPA  - an n_cols-sized value array + touched-index list;
//     O(cols) memory per thread, fastest when rows of C are not tiny
//     relative to cols.
//   * hash SPA   - open-addressing table sized to the row's upper-bound
//     fill; better when cols is huge and rows are very sparse.
// The row loop is parallelized over blocks of rows; each task owns a
// private SPA, and the per-row result sizes are stitched into CSR with a
// prefix sum afterwards.

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "la/semiring.hpp"
#include "la/spmat.hpp"
#include "la/types.hpp"
#include "util/parallel.hpp"

namespace graphulo::la {

/// SPA strategy selector for spgemm().
enum class SpaKind {
  kAuto,   ///< dense when cols <= 1<<22, hash otherwise
  kDense,  ///< always dense accumulator
  kHash,   ///< always hash accumulator
};

namespace detail {

/// Dense sparse accumulator for one output row.
template <class SR>
class DenseSpa {
  using T = typename SR::value_type;

 public:
  explicit DenseSpa(Index cols)
      : vals_(static_cast<std::size_t>(cols), SR::zero()),
        occupied_(static_cast<std::size_t>(cols), 0) {}

  void accumulate(Index col, T v) {
    const auto c = static_cast<std::size_t>(col);
    if (!occupied_[c]) {
      occupied_[c] = 1;
      touched_.push_back(col);
      vals_[c] = v;
    } else {
      vals_[c] = SR::add(vals_[c], v);
    }
  }

  /// Emits sorted nonzero (col, val) pairs and resets the SPA.
  void harvest(std::vector<Index>& out_cols, std::vector<T>& out_vals) {
    std::sort(touched_.begin(), touched_.end());
    for (Index c : touched_) {
      const auto ci = static_cast<std::size_t>(c);
      if (!is_zero<SR>(vals_[ci])) {
        out_cols.push_back(c);
        out_vals.push_back(vals_[ci]);
      }
      occupied_[ci] = 0;
      vals_[ci] = SR::zero();
    }
    touched_.clear();
  }

 private:
  std::vector<T> vals_;
  // char, not bool: vector<bool>'s bit proxies cost a read-modify-write
  // in the innermost accumulate loop.
  std::vector<char> occupied_;
  std::vector<Index> touched_;
};

/// Open-addressing hash sparse accumulator for one output row.
template <class SR>
class HashSpa {
  using T = typename SR::value_type;
  static constexpr Index kEmpty = -1;

 public:
  /// `expected` is an upper bound on distinct columns in the row.
  explicit HashSpa(std::size_t expected) { rehash(expected); }

  void accumulate(Index col, T v) {
    if (count_ * 2 >= keys_.size()) rehash(keys_.size() * 2);
    std::size_t slot = probe(col);
    if (keys_[slot] == kEmpty) {
      keys_[slot] = col;
      vals_[slot] = v;
      ++count_;
    } else {
      vals_[slot] = SR::add(vals_[slot], v);
    }
  }

  void harvest(std::vector<Index>& out_cols, std::vector<T>& out_vals) {
    pairs_.clear();
    for (std::size_t s = 0; s < keys_.size(); ++s) {
      if (keys_[s] != kEmpty && !is_zero<SR>(vals_[s])) {
        pairs_.emplace_back(keys_[s], vals_[s]);
      }
      keys_[s] = kEmpty;
    }
    count_ = 0;
    std::sort(pairs_.begin(), pairs_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [c, v] : pairs_) {
      out_cols.push_back(c);
      out_vals.push_back(v);
    }
  }

 private:
  std::size_t probe(Index col) const {
    std::size_t slot = (static_cast<std::uint64_t>(col) * 0x9e3779b97f4a7c15ULL) &
                       (keys_.size() - 1);
    while (keys_[slot] != kEmpty && keys_[slot] != col) {
      slot = (slot + 1) & (keys_.size() - 1);
    }
    return slot;
  }

  void rehash(std::size_t want) {
    std::size_t cap = 16;
    while (cap < want * 2) cap <<= 1;
    std::vector<Index> old_keys = std::move(keys_);
    std::vector<T> old_vals = std::move(vals_);
    keys_.assign(cap, kEmpty);
    vals_.assign(cap, SR::zero());
    count_ = 0;
    for (std::size_t s = 0; s < old_keys.size(); ++s) {
      if (old_keys[s] != kEmpty) {
        const std::size_t slot = probe(old_keys[s]);
        keys_[slot] = old_keys[s];
        vals_[slot] = old_vals[s];
        ++count_;
      }
    }
  }

  std::vector<Index> keys_;
  std::vector<T> vals_;
  std::vector<std::pair<Index, T>> pairs_;
  std::size_t count_ = 0;
};

template <class SR, class Spa>
void spgemm_rows(const SpMat<typename SR::value_type>& a,
                 const SpMat<typename SR::value_type>& b, Index row_lo,
                 Index row_hi, Spa& spa, std::vector<Index>& out_cols,
                 std::vector<typename SR::value_type>& out_vals,
                 std::vector<Offset>& row_nnz) {
  for (Index i = row_lo; i < row_hi; ++i) {
    const auto a_cols = a.row_cols(i);
    const auto a_vals = a.row_vals(i);
    for (std::size_t p = 0; p < a_cols.size(); ++p) {
      const Index k = a_cols[p];
      const auto v = a_vals[p];
      const auto b_cols = b.row_cols(k);
      const auto b_vals = b.row_vals(k);
      for (std::size_t q = 0; q < b_cols.size(); ++q) {
        spa.accumulate(b_cols[q], SR::mul(v, b_vals[q]));
      }
    }
    const std::size_t before = out_cols.size();
    spa.harvest(out_cols, out_vals);
    row_nnz[static_cast<std::size_t>(i)] =
        static_cast<Offset>(out_cols.size() - before);
  }
}

}  // namespace detail

/// C = A (+.x) B over semiring SR. Inner dimensions must agree.
/// Row-parallel Gustavson; see SpaKind for accumulator choice.
template <SemiringPolicy SR>
SpMat<typename SR::value_type> spgemm(
    const SpMat<typename SR::value_type>& a,
    const SpMat<typename SR::value_type>& b, SpaKind spa_kind = SpaKind::kAuto,
    util::ParallelOptions par = {.grain = 256}) {
  using T = typename SR::value_type;
  if (a.cols() != b.rows()) throw std::invalid_argument("spgemm: inner dims");

  const Index m = a.rows();
  const Index n = b.cols();
  const bool use_dense_spa =
      spa_kind == SpaKind::kDense ||
      (spa_kind == SpaKind::kAuto && n <= (Index{1} << 22));

  std::vector<Offset> row_nnz(static_cast<std::size_t>(m), 0);

  // Each block produces a private (cols, vals) segment, written into its
  // pre-sized slot by block index — no mutex, no post-hoc sort. The
  // block size replicates parallel_for_blocked's policy (at least the
  // grain, at most 4 blocks per pool thread) so `lo / block` is the
  // block index of every sub-range the loop hands out.
  struct Segment {
    std::vector<Index> cols;
    std::vector<T> vals;
  };
  const std::size_t m_sz = static_cast<std::size_t>(m);
  util::ThreadPool& pool =
      par.pool ? *par.pool : util::ThreadPool::global();
  const std::size_t grain = par.grain == 0 ? 1 : par.grain;
  const std::size_t max_blocks = pool.size() * 4;
  const std::size_t block =
      std::max(grain, (m_sz + max_blocks - 1) / max_blocks);
  std::vector<Segment> segments(m_sz == 0 ? 0 : (m_sz - 1) / block + 1);
  util::ParallelOptions block_par = par;
  block_par.grain = block;

  util::parallel_for_blocked(
      0, m_sz,
      [&](std::size_t lo, std::size_t hi) {
        Segment& seg = segments[lo / block];
        if (use_dense_spa) {
          detail::DenseSpa<SR> spa(n);
          detail::spgemm_rows<SR>(a, b, static_cast<Index>(lo),
                                  static_cast<Index>(hi), spa, seg.cols,
                                  seg.vals, row_nnz);
        } else {
          detail::HashSpa<SR> spa(64);
          detail::spgemm_rows<SR>(a, b, static_cast<Index>(lo),
                                  static_cast<Index>(hi), spa, seg.cols,
                                  seg.vals, row_nnz);
        }
      },
      block_par);

  std::vector<Offset> row_ptr(static_cast<std::size_t>(m) + 1, 0);
  for (Index i = 0; i < m; ++i) {
    row_ptr[static_cast<std::size_t>(i) + 1] =
        row_ptr[static_cast<std::size_t>(i)] + row_nnz[static_cast<std::size_t>(i)];
  }
  const std::size_t total = static_cast<std::size_t>(row_ptr.back());
  std::vector<Index> cols;
  std::vector<T> vals;
  cols.reserve(total);
  vals.reserve(total);
  for (auto& seg : segments) {
    cols.insert(cols.end(), seg.cols.begin(), seg.cols.end());
    vals.insert(vals.end(), seg.vals.begin(), seg.vals.end());
  }
  return SpMat<T>::from_csr(m, n, std::move(row_ptr), std::move(cols),
                            std::move(vals));
}

/// Convenience: plain arithmetic SpGEMM.
template <class T>
SpMat<T> spgemm_arith(const SpMat<T>& a, const SpMat<T>& b) {
  return spgemm<PlusTimes<T>>(a, b);
}

/// Masked SpGEMM: C<M> = A (+.x) B — only entries where the mask M is
/// stored are computed (GraphBLAS-style structural mask). For each
/// output row i, only the columns in M(i, :) are accumulated, so the
/// cost is proportional to the mask's fill rather than the full
/// product's. This is the kernel shape that makes per-edge statistics
/// (k-truss support, masked triangle counting) cheap: the mask is the
/// edge set itself.
template <SemiringPolicy SR>
SpMat<typename SR::value_type> spgemm_masked(
    const SpMat<typename SR::value_type>& a,
    const SpMat<typename SR::value_type>& b,
    const SpMat<typename SR::value_type>& mask) {
  using T = typename SR::value_type;
  if (a.cols() != b.rows()) throw std::invalid_argument("spgemm_masked: dims");
  if (mask.rows() != a.rows() || mask.cols() != b.cols()) {
    throw std::invalid_argument("spgemm_masked: mask shape");
  }
  const Index m = a.rows();
  std::vector<Offset> row_ptr(static_cast<std::size_t>(m) + 1, 0);
  std::vector<Index> out_cols;
  std::vector<T> out_vals;
  // Per-row: gather the mask columns, accumulate only into those slots.
  std::vector<T> acc;
  std::vector<char> in_mask(static_cast<std::size_t>(b.cols()), 0);
  std::vector<Offset> slot_of(static_cast<std::size_t>(b.cols()), 0);
  for (Index i = 0; i < m; ++i) {
    const auto mask_cols = mask.row_cols(i);
    acc.assign(mask_cols.size(), SR::zero());
    for (std::size_t s = 0; s < mask_cols.size(); ++s) {
      in_mask[static_cast<std::size_t>(mask_cols[s])] = 1;
      slot_of[static_cast<std::size_t>(mask_cols[s])] = static_cast<Offset>(s);
    }
    const auto a_cols = a.row_cols(i);
    const auto a_vals = a.row_vals(i);
    for (std::size_t p = 0; p < a_cols.size(); ++p) {
      const Index k = a_cols[p];
      const T av = a_vals[p];
      const auto b_cols = b.row_cols(k);
      const auto b_vals = b.row_vals(k);
      for (std::size_t q = 0; q < b_cols.size(); ++q) {
        const auto c = static_cast<std::size_t>(b_cols[q]);
        if (in_mask[c]) {
          auto& slot = acc[static_cast<std::size_t>(slot_of[c])];
          slot = SR::add(slot, SR::mul(av, b_vals[q]));
        }
      }
    }
    for (std::size_t s = 0; s < mask_cols.size(); ++s) {
      in_mask[static_cast<std::size_t>(mask_cols[s])] = 0;
      if (!is_zero<SR>(acc[s])) {
        out_cols.push_back(mask_cols[s]);
        out_vals.push_back(acc[s]);
      }
    }
    row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<Offset>(out_cols.size());
  }
  return SpMat<T>::from_csr(m, b.cols(), std::move(row_ptr),
                            std::move(out_cols), std::move(out_vals));
}

/// Masked SpGEMM with mask polarity: complement_mask = false is
/// spgemm_masked() above; complement_mask = true computes C<!M> —
/// entries where M is stored are EXCLUDED (GraphBLAS complemented
/// structural mask). The complemented form cannot bound its work by the
/// mask's fill, so it runs Gustavson with a dense accumulator that
/// skips masked columns.
template <SemiringPolicy SR>
SpMat<typename SR::value_type> spgemm_masked(
    const SpMat<typename SR::value_type>& a,
    const SpMat<typename SR::value_type>& b,
    const SpMat<typename SR::value_type>& mask, bool complement_mask) {
  using T = typename SR::value_type;
  if (!complement_mask) return spgemm_masked<SR>(a, b, mask);
  if (a.cols() != b.rows()) throw std::invalid_argument("spgemm_masked: dims");
  if (mask.rows() != a.rows() || mask.cols() != b.cols()) {
    throw std::invalid_argument("spgemm_masked: mask shape");
  }
  const Index m = a.rows();
  std::vector<Offset> row_ptr(static_cast<std::size_t>(m) + 1, 0);
  std::vector<Index> out_cols;
  std::vector<T> out_vals;
  detail::DenseSpa<SR> spa(b.cols());
  std::vector<char> in_mask(static_cast<std::size_t>(b.cols()), 0);
  for (Index i = 0; i < m; ++i) {
    const auto mask_cols = mask.row_cols(i);
    for (Index c : mask_cols) in_mask[static_cast<std::size_t>(c)] = 1;
    const auto a_cols = a.row_cols(i);
    const auto a_vals = a.row_vals(i);
    for (std::size_t p = 0; p < a_cols.size(); ++p) {
      const Index k = a_cols[p];
      const T av = a_vals[p];
      const auto b_cols = b.row_cols(k);
      const auto b_vals = b.row_vals(k);
      for (std::size_t q = 0; q < b_cols.size(); ++q) {
        if (in_mask[static_cast<std::size_t>(b_cols[q])]) continue;
        spa.accumulate(b_cols[q], SR::mul(av, b_vals[q]));
      }
    }
    spa.harvest(out_cols, out_vals);
    for (Index c : mask_cols) in_mask[static_cast<std::size_t>(c)] = 0;
    row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<Offset>(out_cols.size());
  }
  return SpMat<T>::from_csr(m, b.cols(), std::move(row_ptr),
                            std::move(out_cols), std::move(out_vals));
}

}  // namespace graphulo::la
