#pragma once
// Structural helpers: triangular extraction, diagonals, pattern,
// symmetrization. Algorithm 2 (Jaccard) is built on triu; Algorithm 1
// (k-truss) on diag; both are expressible as Select/Apply per the paper
// ("triu(A) = A (x) 1 with f(i,j) keeping i <= j").

#include <stdexcept>
#include <vector>

#include "la/apply.hpp"
#include "la/ewise.hpp"
#include "la/spmat.hpp"
#include "la/types.hpp"

namespace graphulo::la {

/// Strictly upper-triangular part (k-th superdiagonal and above;
/// `diag_offset` = 1 excludes the main diagonal, 0 includes it).
template <class T>
SpMat<T> triu(const SpMat<T>& a, Index diag_offset = 1) {
  return select(a, [diag_offset](Index i, Index j, T) {
    return j - i >= diag_offset;
  });
}

/// Lower-triangular counterpart: keeps j - i <= -diag_offset.
template <class T>
SpMat<T> tril(const SpMat<T>& a, Index diag_offset = 1) {
  return select(a, [diag_offset](Index i, Index j, T) {
    return i - j >= diag_offset;
  });
}

/// Main diagonal as a dense vector (square matrices).
template <class T>
std::vector<T> diag_vector(const SpMat<T>& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("diag_vector: square");
  std::vector<T> d(static_cast<std::size_t>(a.rows()), T{});
  for (Index i = 0; i < a.rows(); ++i) d[static_cast<std::size_t>(i)] = a.at(i, i);
  return d;
}

/// Diagonal matrix from a vector: diag(d).
template <class T>
SpMat<T> diag_matrix(const std::vector<T>& d) {
  std::vector<Triple<T>> triples;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d[i] != T{}) {
      triples.push_back({static_cast<Index>(i), static_cast<Index>(i), d[i]});
    }
  }
  return SpMat<T>::from_triples(static_cast<Index>(d.size()),
                                static_cast<Index>(d.size()), std::move(triples));
}

/// A with its main diagonal removed: the paper's A = E^T E - diag(d).
template <class T>
SpMat<T> remove_diag(const SpMat<T>& a) {
  return select(a, [](Index i, Index j, T) { return i != j; });
}

/// Pattern of A: every stored entry becomes `one`.
template <class T>
SpMat<T> pattern(const SpMat<T>& a, T one = T{1}) {
  return apply(a, [one](T) { return one; });
}

/// max(A, A^T) as a pattern — makes a directed graph undirected.
template <class T>
SpMat<T> symmetrize(const SpMat<T>& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("symmetrize: square");
  return ewise_add(a, transpose(a), [](T x, T y) { return x > y ? x : y; });
}

/// True iff A equals its transpose exactly.
template <class T>
bool is_symmetric(const SpMat<T>& a) {
  return a.rows() == a.cols() && a == transpose(a);
}

}  // namespace graphulo::la
