#pragma once
// Umbrella header for the sparse linear algebra layer: the GraphBLAS
// kernel set of the paper (SpGEMM, SpM{Sp}V, SpEWiseX, SpRef, SpAsgn,
// Scale, Apply, Reduce) plus the structural helpers they compose with.

#include "la/apply.hpp"      // Apply, Scale, Select
#include "la/dense.hpp"      // dense matrices for NMF factors
#include "la/ewise.hpp"      // SpEWiseX (intersection) and eWiseAdd (union)
#include "la/io.hpp"         // Matrix Market / TSV file I/O
#include "la/kron.hpp"       // Kronecker product
#include "la/norms.hpp"      // convergence metrics
#include "la/print.hpp"      // worked-example rendering
#include "la/reduce.hpp"     // Reduce
#include "la/semiring.hpp"   // semiring policies
#include "la/spgemm.hpp"     // SpGEMM
#include "la/spmat.hpp"      // CSR storage
#include "la/spmm.hpp"       // sparse*dense products
#include "la/spmv.hpp"       // SpMV / SpMSpV
#include "la/spref.hpp"      // SpRef / SpAsgn
#include "la/spvec.hpp"      // sparse vectors
#include "la/structure.hpp"  // triu/tril/diag/pattern
#include "la/types.hpp"
