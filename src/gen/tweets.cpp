#include "gen/tweets.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/zipf.hpp"

namespace graphulo::gen {

namespace {

// Topic-specific word pools, semantically matching the five topics the
// paper reports in Fig. 3 (ASCII transliterations for the Turkish and
// Spanish pools).
const std::vector<std::string> kTurkish = {
    "merhaba", "selam",   "nasilsin", "tesekkurler", "gunaydin", "arkadas",
    "sevgili", "guzel",   "turkiye",  "istanbul",    "ankara",   "kahve",
    "deniz",   "gunes",   "mutlu",    "hayat",       "askim",    "canim",
    "evet",    "hayir",   "simdi",    "bugun",       "yarin",    "gece",
    "sabah",   "iyi",     "cok",      "biraz",       "belki",    "tamam"};

const std::vector<std::string> kDating = {
    "date",     "love",    "single",  "crush",    "romance", "dating",
    "cute",     "heart",   "kiss",    "match",    "profile", "swipe",
    "flirt",    "dinner",  "movie",   "valentine", "couple", "chemistry",
    "butterflies", "text", "call",    "meet",     "coffee",  "spark",
    "soulmate", "first",   "shy",     "smile",    "eyes",    "forever"};

const std::vector<std::string> kGuitar = {
    "guitar",  "acoustic", "strings",  "chord",   "concert",  "atlanta",
    "competition", "stage", "melody",  "riff",    "strum",    "fingerstyle",
    "capo",    "fret",     "tuning",   "amp",     "song",     "solo",
    "band",    "festival", "audience", "winner",  "judges",   "perform",
    "practice", "pick",    "bridge",   "georgia", "contest",  "luthier"};

const std::vector<std::string> kSpanish = {
    "hola",    "amigo",  "fiesta",  "gracias", "noche",   "corazon",
    "bueno",   "vamos",  "siempre", "musica",  "baile",   "feliz",
    "amor",    "playa",  "sol",     "familia", "comida",  "casa",
    "tiempo",  "manana", "tarde",   "mucho",   "poco",    "nunca",
    "contigo", "porque", "donde",   "quiero",  "vida",    "suerte"};

const std::vector<std::string> kEnglish = {
    "today",   "great",  "time",    "people",  "world",   "happy",
    "work",    "life",   "good",    "day",     "news",    "weather",
    "morning", "night",  "weekend", "friends", "family",  "home",
    "school",  "game",   "team",    "city",    "music",   "food",
    "coffee",  "sleep",  "week",    "year",    "best",    "thing"};

// Topic-neutral filler ("stop") words shared across all tweets; these
// are the high-document-frequency noise terms NMF has to look past.
const std::vector<std::string> kStopwords = {
    "rt",  "the", "a",   "to",  "and", "of",  "in",  "is",
    "it",  "you", "i",   "for", "on",  "my",  "me",  "so",
    "at",  "be",  "this", "that"};

const std::vector<std::string> kTopicNames = {"turkish", "dating",
                                              "guitar-atlanta", "spanish",
                                              "english"};

const std::vector<const std::vector<std::string>*> kPools = {
    &kTurkish, &kDating, &kGuitar, &kSpanish, &kEnglish};

}  // namespace

int tweet_topic_count() { return static_cast<int>(kPools.size()); }

const std::string& tweet_topic_name(int topic) {
  if (topic < 0 || topic >= tweet_topic_count()) {
    throw std::out_of_range("tweet_topic_name");
  }
  return kTopicNames[static_cast<std::size_t>(topic)];
}

const std::vector<std::string>& tweet_topic_pool(int topic) {
  if (topic < 0 || topic >= tweet_topic_count()) {
    throw std::out_of_range("tweet_topic_pool");
  }
  return *kPools[static_cast<std::size_t>(topic)];
}

TweetCorpus generate_tweets(const TweetParams& params) {
  if (params.words_min < 1 || params.words_max < params.words_min) {
    throw std::invalid_argument("generate_tweets: word count range");
  }
  if (params.topic_word_prob + params.stopword_prob > 1.0) {
    throw std::invalid_argument("generate_tweets: probabilities exceed 1");
  }
  util::Xoshiro256 rng(params.seed);

  std::vector<util::ZipfSampler> pool_samplers;
  pool_samplers.reserve(kPools.size());
  for (const auto* pool : kPools) {
    pool_samplers.emplace_back(pool->size(), params.zipf_exponent);
  }
  util::ZipfSampler stop_sampler(kStopwords.size(), params.zipf_exponent);

  TweetCorpus corpus;
  corpus.topic_names = kTopicNames;
  corpus.tweets.reserve(params.num_tweets);

  const int id_width = 7;
  const auto topics = static_cast<std::uint64_t>(tweet_topic_count());
  for (std::size_t t = 0; t < params.num_tweets; ++t) {
    Tweet tweet;
    tweet.id = "tweet|" + util::zero_pad(t, id_width);
    tweet.true_topic = static_cast<int>(rng.uniform_int(topics));
    const int len = params.words_min +
                    static_cast<int>(rng.uniform_int(static_cast<std::uint64_t>(
                        params.words_max - params.words_min + 1)));
    tweet.words.reserve(static_cast<std::size_t>(len));
    for (int w = 0; w < len; ++w) {
      const double u = rng.uniform();
      int pool_topic;
      if (u < params.topic_word_prob) {
        pool_topic = tweet.true_topic;
      } else if (u < params.topic_word_prob + params.stopword_prob) {
        tweet.words.push_back(kStopwords[stop_sampler.sample(rng)]);
        continue;
      } else {
        pool_topic = static_cast<int>(rng.uniform_int(topics));
      }
      const auto& pool = *kPools[static_cast<std::size_t>(pool_topic)];
      tweet.words.push_back(
          pool[pool_samplers[static_cast<std::size_t>(pool_topic)].sample(rng)]);
    }
    corpus.tweets.push_back(std::move(tweet));
  }

  for (const auto* pool : kPools) {
    corpus.vocabulary.insert(corpus.vocabulary.end(), pool->begin(), pool->end());
  }
  corpus.vocabulary.insert(corpus.vocabulary.end(), kStopwords.begin(),
                           kStopwords.end());
  std::sort(corpus.vocabulary.begin(), corpus.vocabulary.end());
  corpus.vocabulary.erase(
      std::unique(corpus.vocabulary.begin(), corpus.vocabulary.end()),
      corpus.vocabulary.end());
  return corpus;
}

}  // namespace graphulo::gen
