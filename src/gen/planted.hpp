#pragma once
// Planted-structure graphs for the subgraph detection experiments
// (Section III-B motivates k-truss with planted clique / planted cluster
// detection): a background Erdos-Renyi graph with a dense subgraph
// planted on a known vertex subset, so detection quality is measurable.

#include <cstdint>
#include <vector>

#include "la/spmat.hpp"
#include "la/types.hpp"

namespace graphulo::gen {

/// A planted graph and the ground-truth planted vertex set.
struct PlantedGraph {
  la::SpMat<double> adjacency;         ///< simple undirected graph (0/1)
  std::vector<la::Index> planted_set;  ///< vertices of the planted part
};

/// Background G(n, p_background) plus a clique on `clique_size` randomly
/// chosen vertices. A clique of size s is an s-truss, so k-truss with
/// k <= s isolates it from a sparse background.
PlantedGraph planted_clique(la::Index n, la::Index clique_size,
                            double p_background, std::uint64_t seed);

/// Planted partition: `communities` blocks of equal size; edge
/// probability p_in within a block, p_out across blocks. Ground truth
/// set = block 0 (representative community).
PlantedGraph planted_partition(la::Index n, int communities, double p_in,
                               double p_out, std::uint64_t seed);

/// Community label of every vertex for a planted_partition graph with
/// the same parameters (vertex v belongs to block v / (n/communities)).
std::vector<int> partition_labels(la::Index n, int communities);

}  // namespace graphulo::gen
