#include "gen/planted.hpp"

#include <numeric>
#include <stdexcept>

#include "gen/erdos.hpp"
#include "la/ewise.hpp"
#include "la/structure.hpp"
#include "util/rng.hpp"

namespace graphulo::gen {

using la::Index;
using la::SpMat;
using la::Triple;

PlantedGraph planted_clique(Index n, Index clique_size, double p_background,
                            std::uint64_t seed) {
  if (clique_size > n) {
    throw std::invalid_argument("planted_clique: clique larger than graph");
  }
  util::Xoshiro256 rng(seed);

  // Choose the planted vertices: partial Fisher-Yates.
  std::vector<Index> ids(static_cast<std::size_t>(n));
  std::iota(ids.begin(), ids.end(), Index{0});
  for (Index i = 0; i < clique_size; ++i) {
    const auto j = static_cast<std::size_t>(i) +
                   rng.uniform_int(static_cast<std::uint64_t>(n - i));
    std::swap(ids[static_cast<std::size_t>(i)], ids[j]);
  }
  std::vector<Index> planted(ids.begin(), ids.begin() + clique_size);

  SpMat<double> background = erdos_renyi_gnp(n, p_background, seed + 1, true);
  std::vector<Triple<double>> clique_edges;
  for (Index i = 0; i < clique_size; ++i) {
    for (Index j = i + 1; j < clique_size; ++j) {
      const Index u = planted[static_cast<std::size_t>(i)];
      const Index v = planted[static_cast<std::size_t>(j)];
      clique_edges.push_back({u, v, 1.0});
      clique_edges.push_back({v, u, 1.0});
    }
  }
  auto clique = SpMat<double>::from_triples(n, n, std::move(clique_edges));
  PlantedGraph out;
  out.adjacency = la::pattern(la::add(background, clique));
  out.planted_set = std::move(planted);
  return out;
}

std::vector<int> partition_labels(Index n, int communities) {
  if (communities < 1) throw std::invalid_argument("partition_labels");
  const Index block = n / communities;
  std::vector<int> labels(static_cast<std::size_t>(n));
  for (Index v = 0; v < n; ++v) {
    labels[static_cast<std::size_t>(v)] =
        std::min(communities - 1, static_cast<int>(block == 0 ? 0 : v / block));
  }
  return labels;
}

PlantedGraph planted_partition(Index n, int communities, double p_in,
                               double p_out, std::uint64_t seed) {
  if (communities < 1 || p_in < 0 || p_in > 1 || p_out < 0 || p_out > 1) {
    throw std::invalid_argument("planted_partition: bad parameters");
  }
  const auto labels = partition_labels(n, communities);
  util::Xoshiro256 rng(seed);
  std::vector<Triple<double>> edges;
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < n; ++j) {
      const double p = labels[static_cast<std::size_t>(i)] ==
                               labels[static_cast<std::size_t>(j)]
                           ? p_in
                           : p_out;
      if (rng.uniform() < p) {
        edges.push_back({i, j, 1.0});
        edges.push_back({j, i, 1.0});
      }
    }
  }
  PlantedGraph out;
  out.adjacency = SpMat<double>::from_triples(n, n, std::move(edges));
  const Index block = n / communities;
  for (Index v = 0; v < std::max(Index{1}, block); ++v) {
    out.planted_set.push_back(v);
  }
  return out;
}

}  // namespace graphulo::gen
