#pragma once
// Synthetic tweet corpus with known latent topics.
//
// The paper's Fig. 3 applies NMF (Algorithm 5) to ~20,000 real tweets
// and finds 5 topics: Turkish-language tweets, dating, an acoustic
// guitar competition in Atlanta, Spanish-language tweets, and generic
// English. We cannot ship that corpus, so this generator produces a
// corpus with the same *structure*: 5 topic-specific word pools (with
// the same semantic flavors), Zipf-distributed word frequencies within
// each pool, a shared stop-word pool, and per-tweet topic mixtures.
// Because ground-truth topic labels are known, the reproduction can
// report a quantitative topic-purity score on top of the qualitative
// top-words table the paper shows.

#include <cstdint>
#include <string>
#include <vector>

namespace graphulo::gen {

/// One synthetic tweet.
struct Tweet {
  std::string id;                  ///< "tweet|0000042"-style sortable id
  int true_topic;                  ///< ground-truth dominant topic
  std::vector<std::string> words;  ///< tokenized text (duplicates kept)
};

/// A generated corpus.
struct TweetCorpus {
  std::vector<Tweet> tweets;
  std::vector<std::string> topic_names;  ///< size = #topics
  /// Union of all word pools (stop words last); handy for dictionaries.
  std::vector<std::string> vocabulary;
};

/// Generator parameters; the defaults mirror the Fig. 3 experiment.
struct TweetParams {
  std::size_t num_tweets = 20000;
  int words_min = 6;    ///< min words per tweet
  int words_max = 14;   ///< max words per tweet
  /// Probability that a word is drawn from the tweet's own topic pool
  /// (the rest come from the shared stop-word pool or a random topic).
  double topic_word_prob = 0.7;
  double stopword_prob = 0.2;
  double zipf_exponent = 1.0;  ///< word-frequency skew inside a pool
  std::uint64_t seed = 42;
};

/// Number of built-in topics (fixed at 5 to match Fig. 3).
int tweet_topic_count();

/// Name of a built-in topic, e.g. "turkish", "dating".
const std::string& tweet_topic_name(int topic);

/// The word pool of a built-in topic (distinct, topic-specific words).
const std::vector<std::string>& tweet_topic_pool(int topic);

/// Generates the corpus. Tweets are assigned topics round-robin-random
/// with equal probability; word draws follow TweetParams.
TweetCorpus generate_tweets(const TweetParams& params);

}  // namespace graphulo::gen
