#pragma once
// Erdos-Renyi random graphs: the no-structure baseline workload for the
// kernel and algorithm sweeps.

#include <cstdint>

#include "la/spmat.hpp"
#include "la/types.hpp"

namespace graphulo::gen {

/// G(n, p): each ordered pair (i, j), i != j, is an edge independently
/// with probability p. `undirected` samples only i < j and mirrors.
/// Sampling uses geometric skips, so the cost is O(#edges), not O(n^2).
la::SpMat<double> erdos_renyi_gnp(la::Index n, double p, std::uint64_t seed,
                                  bool undirected = true);

/// G(n, m): exactly m distinct edges chosen uniformly (i < j, mirrored
/// when undirected).
la::SpMat<double> erdos_renyi_gnm(la::Index n, std::size_t m,
                                  std::uint64_t seed, bool undirected = true);

/// Watts-Strogatz small-world graph: a ring lattice where each vertex
/// connects to its k/2 nearest neighbors on each side, with every
/// lattice edge rewired to a random endpoint with probability beta.
/// beta = 0 is the pure lattice (high clustering, long paths); beta = 1
/// approaches G(n, nk/2). k must be even and < n.
la::SpMat<double> watts_strogatz(la::Index n, int k, double beta,
                                 std::uint64_t seed);

}  // namespace graphulo::gen
