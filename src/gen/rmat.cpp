#include "gen/rmat.hpp"

#include <numeric>
#include <stdexcept>

#include "la/structure.hpp"
#include "util/rng.hpp"

namespace graphulo::gen {

using la::Index;
using la::SpMat;
using la::Triple;

std::vector<std::pair<Index, Index>> rmat_edges(const RmatParams& params) {
  if (params.scale < 1 || params.scale > 30) {
    throw std::invalid_argument("rmat: scale out of range [1, 30]");
  }
  const double d = 1.0 - params.a - params.b - params.c;
  if (params.a < 0 || params.b < 0 || params.c < 0 || d < 0) {
    throw std::invalid_argument("rmat: probabilities must be nonnegative");
  }
  const Index n = Index{1} << params.scale;
  const auto m = static_cast<std::size_t>(params.edge_factor *
                                          static_cast<double>(n));
  util::Xoshiro256 rng(params.seed);

  // Optional id scramble: a random permutation of [0, n).
  std::vector<Index> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), Index{0});
  if (params.scramble_ids) {
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.uniform_int(i)]);
    }
  }

  std::vector<std::pair<Index, Index>> edges;
  edges.reserve(m);
  const double ab = params.a + params.b;
  const double a_norm = params.a / ab;
  const double c_norm = params.c / (params.c + d);
  while (edges.size() < m) {
    Index u = 0, v = 0;
    for (int bit = 0; bit < params.scale; ++bit) {
      const bool down = rng.uniform() > ab;        // descend to bottom half
      const double right_prob = down ? c_norm : a_norm;
      const bool right = rng.uniform() > right_prob;
      u = (u << 1) | static_cast<Index>(down);
      v = (v << 1) | static_cast<Index>(right);
    }
    if (params.remove_self_loops && u == v) continue;
    edges.emplace_back(perm[static_cast<std::size_t>(u)],
                       perm[static_cast<std::size_t>(v)]);
  }
  return edges;
}

SpMat<double> rmat_adjacency(const RmatParams& params) {
  const Index n = Index{1} << params.scale;
  auto edges = rmat_edges(params);
  std::vector<Triple<double>> triples;
  triples.reserve(edges.size() * (params.undirected ? 2 : 1));
  for (auto [u, v] : edges) {
    triples.push_back({u, v, 1.0});
    if (params.undirected && u != v) triples.push_back({v, u, 1.0});
  }
  return SpMat<double>::from_triples(n, n, std::move(triples));
}

SpMat<double> rmat_simple_adjacency(const RmatParams& params) {
  return la::pattern(rmat_adjacency(params));
}

}  // namespace graphulo::gen
