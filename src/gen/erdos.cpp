#include "gen/erdos.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/rng.hpp"

namespace graphulo::gen {

using la::Index;
using la::SpMat;
using la::Triple;

namespace {

/// Emits each j in [lo, hi) independently with probability p using
/// geometric skips, so the cost is O(p * (hi - lo)).
template <class Emit>
void sample_row(util::Xoshiro256& rng, Index lo, Index hi, double p,
                double log1mp, Emit&& emit) {
  if (p >= 1.0) {
    for (Index j = lo; j < hi; ++j) emit(j);
    return;
  }
  double jf = static_cast<double>(lo);
  while (true) {
    const double u = rng.uniform();
    jf += std::floor(std::log1p(-u) / log1mp);
    if (jf >= static_cast<double>(hi)) return;
    emit(static_cast<Index>(jf));
    jf += 1.0;
    if (jf >= static_cast<double>(hi)) return;
  }
}

}  // namespace

SpMat<double> erdos_renyi_gnp(Index n, double p, std::uint64_t seed,
                              bool undirected) {
  if (n < 0 || p < 0.0 || p > 1.0) {
    throw std::invalid_argument("erdos_renyi_gnp: bad parameters");
  }
  util::Xoshiro256 rng(seed);
  std::vector<Triple<double>> triples;
  if (p > 0.0 && n > 1) {
    const double log1mp = p < 1.0 ? std::log(1.0 - p) : -1.0;
    for (Index i = 0; i < n; ++i) {
      if (undirected) {
        sample_row(rng, i + 1, n, p, log1mp, [&](Index j) {
          triples.push_back({i, j, 1.0});
          triples.push_back({j, i, 1.0});
        });
      } else {
        sample_row(rng, 0, n, p, log1mp, [&](Index j) {
          if (j != i) triples.push_back({i, j, 1.0});
        });
      }
    }
  }
  return SpMat<double>::from_triples(n, n, std::move(triples),
                                     [](double a, double) { return a; });
}

SpMat<double> erdos_renyi_gnm(Index n, std::size_t m, std::uint64_t seed,
                              bool undirected) {
  if (n < 2) throw std::invalid_argument("erdos_renyi_gnm: n < 2");
  const auto nn = static_cast<std::uint64_t>(n);
  const std::uint64_t max_edges =
      undirected ? nn * (nn - 1) / 2 : nn * (nn - 1);
  if (m > max_edges) throw std::invalid_argument("erdos_renyi_gnm: m too large");

  util::Xoshiro256 rng(seed);
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(m * 2);
  std::vector<Triple<double>> triples;
  while (chosen.size() < m) {
    auto u = static_cast<Index>(rng.uniform_int(nn));
    auto v = static_cast<Index>(rng.uniform_int(nn));
    if (u == v) continue;
    if (undirected && u > v) std::swap(u, v);
    const std::uint64_t key = static_cast<std::uint64_t>(u) * nn +
                              static_cast<std::uint64_t>(v);
    if (!chosen.insert(key).second) continue;
    triples.push_back({u, v, 1.0});
    if (undirected) triples.push_back({v, u, 1.0});
  }
  return SpMat<double>::from_triples(n, n, std::move(triples));
}

SpMat<double> watts_strogatz(Index n, int k, double beta, std::uint64_t seed) {
  if (k <= 0 || k % 2 != 0 || k >= n) {
    throw std::invalid_argument("watts_strogatz: k must be even, 0 < k < n");
  }
  if (beta < 0.0 || beta > 1.0) {
    throw std::invalid_argument("watts_strogatz: beta in [0, 1]");
  }
  util::Xoshiro256 rng(seed);
  // Edge set as (min, max) pairs for O(1) duplicate checks during
  // rewiring.
  std::unordered_set<std::uint64_t> edges;
  const auto nn = static_cast<std::uint64_t>(n);
  auto key = [nn](Index u, Index v) {
    if (u > v) std::swap(u, v);
    return static_cast<std::uint64_t>(u) * nn + static_cast<std::uint64_t>(v);
  };
  for (Index u = 0; u < n; ++u) {
    for (int hop = 1; hop <= k / 2; ++hop) {
      edges.insert(key(u, static_cast<Index>((u + hop) % n)));
    }
  }
  // Rewire: each lattice edge (u, u+hop) keeps u and redraws the far
  // endpoint with probability beta (skipping loops and duplicates).
  for (Index u = 0; u < n; ++u) {
    for (int hop = 1; hop <= k / 2; ++hop) {
      if (rng.uniform() >= beta) continue;
      const auto v = static_cast<Index>((u + hop) % n);
      const auto old_key = key(u, v);
      if (!edges.count(old_key)) continue;  // already rewired away
      // Try a few times to find a fresh endpoint; give up rather than
      // loop forever on dense corner cases.
      for (int attempt = 0; attempt < 16; ++attempt) {
        const auto w = static_cast<Index>(rng.uniform_int(nn));
        if (w == u || edges.count(key(u, w))) continue;
        edges.erase(old_key);
        edges.insert(key(u, w));
        break;
      }
    }
  }
  std::vector<Triple<double>> triples;
  triples.reserve(edges.size() * 2);
  for (std::uint64_t e : edges) {
    const auto u = static_cast<Index>(e / nn);
    const auto v = static_cast<Index>(e % nn);
    triples.push_back({u, v, 1.0});
    triples.push_back({v, u, 1.0});
  }
  return SpMat<double>::from_triples(n, n, std::move(triples));
}

}  // namespace graphulo::gen
