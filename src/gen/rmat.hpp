#pragma once
// R-MAT / Graph500-style Kronecker graph sampler.
//
// Real graphs the paper targets (social media, Twitter) have power-law
// degree distributions; R-MAT reproduces that shape by recursively
// descending a 2x2 probability matrix (a, b; c, d) to choose each edge's
// endpoints. scale = log2(#vertices); edge_factor = edges per vertex.

#include <cstdint>
#include <vector>

#include "la/spmat.hpp"
#include "la/types.hpp"

namespace graphulo::gen {

/// Parameters for the R-MAT sampler. Defaults are the Graph500 values.
struct RmatParams {
  int scale = 10;          ///< number of vertices = 2^scale
  double edge_factor = 16; ///< average edges per vertex (before dedup)
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  // d = 1 - a - b - c
  bool undirected = true;    ///< mirror each edge
  bool remove_self_loops = true;
  std::uint64_t seed = 1;
  /// Randomly permute vertex ids so the heavy vertices are not clustered
  /// at the low indices (Graph500 does this too).
  bool scramble_ids = true;
};

/// Samples an R-MAT graph and returns its adjacency matrix. Duplicate
/// edges are summed, so values are edge multiplicities, matching the
/// paper's adjacency matrix definition "A(i,j) = # edges from vi to vj".
la::SpMat<double> rmat_adjacency(const RmatParams& params);

/// Same sample with every stored entry set to 1 (simple graph pattern) —
/// the form the k-truss and Jaccard algorithms expect.
la::SpMat<double> rmat_simple_adjacency(const RmatParams& params);

/// Raw sampled edge list (u, v) before dedup; exposed for ingest
/// benchmarks that want a stream of mutations rather than a matrix.
std::vector<std::pair<la::Index, la::Index>> rmat_edges(const RmatParams& params);

}  // namespace graphulo::gen
