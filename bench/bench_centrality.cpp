// Section III-A reproduction: the centrality metrics as iterated
// GraphBLAS kernels. Sweeps graph size; reports iterations-to-converge
// under the paper's cosine stopping rule, runtime, and cross-checks
// (PageRank vs dense reference; betweenness LA vs Brandes baseline;
// rank agreement between eigenvector and Katz).

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "algo/betweenness.hpp"
#include "algo/centrality.hpp"
#include "gen/rmat.hpp"
#include "la/la.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

#include "bench_metrics.hpp"

using namespace graphulo;

namespace {

/// Spearman-style agreement: fraction of top-10 overlap.
double top10_overlap(const std::vector<double>& x,
                     const std::vector<double>& y) {
  auto top10 = [](const std::vector<double>& v) {
    std::vector<std::size_t> idx(v.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::partial_sort(idx.begin(), idx.begin() + std::min<std::size_t>(10, idx.size()),
                      idx.end(),
                      [&](std::size_t a, std::size_t b) { return v[a] > v[b]; });
    idx.resize(std::min<std::size_t>(10, idx.size()));
    std::sort(idx.begin(), idx.end());
    return idx;
  };
  const auto tx = top10(x);
  const auto ty = top10(y);
  std::vector<std::size_t> common;
  std::set_intersection(tx.begin(), tx.end(), ty.begin(), ty.end(),
                        std::back_inserter(common));
  return static_cast<double>(common.size()) /
         static_cast<double>(std::max<std::size_t>(1, tx.size()));
}

}  // namespace

int main(int argc, char** argv) {
  graphulo::bench::MetricsDump metrics_dump(argc, argv);
  util::TablePrinter table({"n", "edges", "metric", "iters", "time_ms",
                            "validation"});
  for (int scale : {8, 10, 12}) {
    gen::RmatParams p;
    p.scale = scale;
    p.edge_factor = 8;
    const auto a = gen::rmat_simple_adjacency(p);
    const auto n = std::to_string(a.rows());
    const auto m = std::to_string(a.nnz() / 2);
    util::Timer t;

    // Degree: one Reduce.
    t.reset();
    const auto deg = algo::out_degree_centrality(a);
    table.add_row({n, m, "degree", "1", util::TablePrinter::fmt(t.millis(), 2),
                   "max deg " + util::TablePrinter::fmt(
                                    *std::max_element(deg.begin(), deg.end()), 0)});

    // Eigenvector centrality.
    t.reset();
    const auto eig = algo::eigenvector_centrality(a);
    table.add_row({n, m, "eigenvector", std::to_string(eig.iterations),
                   util::TablePrinter::fmt(t.millis(), 2),
                   eig.converged ? "converged" : "NOT CONVERGED"});

    // Katz.
    t.reset();
    const auto katz = algo::katz_centrality(a, 0.85 / *std::max_element(
                                                   deg.begin(), deg.end()));
    table.add_row({n, m, "katz", std::to_string(katz.iterations),
                   util::TablePrinter::fmt(t.millis(), 2),
                   "top10 overlap w/ eig " +
                       util::TablePrinter::fmt(
                           top10_overlap(katz.scores, eig.scores), 1)});

    // PageRank, validated against the dense reference at small n.
    t.reset();
    const auto pr = algo::pagerank(a);
    const double pr_ms = t.millis();  // before the dense validation pass
    std::string validation = "sum=1";
    if (a.rows() <= 1024) {
      const auto dense = algo::pagerank_dense_reference(a, 0.15, 200);
      double max_err = 0;
      for (std::size_t v = 0; v < dense.size(); ++v) {
        max_err = std::max(max_err, std::abs(dense[v] - pr.scores[v]));
      }
      validation = "max err vs dense " + util::TablePrinter::fmt(max_err, 8);
    }
    table.add_row({n, m, "pagerank", std::to_string(pr.iterations),
                   util::TablePrinter::fmt(pr_ms, 2), validation});

    // Betweenness from a source sample, LA vs Brandes.
    std::vector<la::Index> sources;
    for (la::Index s = 0; s < std::min<la::Index>(a.rows(), 32); ++s) {
      sources.push_back(s);
    }
    t.reset();
    const auto bc_fast = algo::betweenness_centrality(a, sources);
    const double fast_ms = t.millis();
    t.reset();
    const auto bc_base = algo::betweenness_brandes_baseline(a, sources);
    const double base_ms = t.millis();
    double max_err = 0;
    for (std::size_t v = 0; v < bc_fast.size(); ++v) {
      max_err = std::max(max_err, std::abs(bc_fast[v] - bc_base[v]));
    }
    table.add_row({n, m, "betweenness (32 srcs)", "-",
                   util::TablePrinter::fmt(fast_ms, 2),
                   "err vs Brandes " + util::TablePrinter::fmt(max_err, 6) +
                       ", baseline " + util::TablePrinter::fmt(base_ms, 1) +
                       "ms"});
  }
  table.print("Section III-A: centrality metrics");
  return 0;
}
