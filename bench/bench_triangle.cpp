// Triangle counting against database tables, following the methodology
// of Weale's Graphulo triangle/truss benchmarking (and the Graphulo
// "Distributed Triangle Counting" follow-up, 1709.01054): sweep RMAT
// adjacency matrices over increasing scales, and for each scale run
//
//   masked    — sum(L .* (L·U)) as ONE fused table_mult_reduce on the
//               adjacency table itself: strict-upper scan filters read
//               both inputs as U in place, the table doubles as its own
//               strict-lower mask, the reduction folds in the workers.
//               Nothing is materialized.
//   trace     — trace(A^3)/6: a full unmasked TableMult materializes
//               the wedge table W = A'A (every open wedge is a partial
//               product), then eWise-intersects with A and sums. This
//               is the ablation baseline the mask prunes.
//   incidence — the k-truss machinery: build the transposed incidence
//               table E', one TableMult R = E·A, count entries == 2.
//
// Reported per scale: triangles, per-method wall time, edge rate
// (nnz / s — the rate-vs-nnz curve), partial products emitted and
// pruned, and the emitted-partials ratio trace/masked (the masking
// win; the acceptance bar is >= 5x at the largest scale). Every count
// is checked against the in-memory oracles (algo::triangle_count_*).
// Emits BENCH_triangle.json; --smoke shrinks the sweep for CI.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "algo/tricount.hpp"
#include "assoc/table_io.hpp"
#include "core/table_algos.hpp"
#include "gen/rmat.hpp"
#include "la/la.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

#include "bench_metrics.hpp"

using namespace graphulo;

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  graphulo::bench::MetricsDump metrics_dump(argc, argv);
  const std::vector<int> scales =
      smoke ? std::vector<int>{7, 8} : std::vector<int>{10, 11, 12, 13};

  util::TablePrinter table({"scale", "n", "nnz", "triangles", "masked_ms",
                            "trace_ms", "incid_ms", "masked_edges/s",
                            "emitted", "pruned", "trace_emitted", "ratio",
                            "agree"});
  std::string rows = "[";
  bool first = true;
  double max_scale_ratio = 0.0;
  bool all_agree = true;
  for (int scale : scales) {
    gen::RmatParams p;
    p.scale = scale;
    p.edge_factor = 6;
    const auto a = gen::rmat_simple_adjacency(p);

    constexpr int kTablets = 4;
    nosql::Instance db(kTablets);
    assoc::write_matrix(db, "G", a);
    std::vector<std::string> splits;
    for (int s = 1; s < kTablets; ++s) {
      splits.push_back(assoc::vertex_key(a.rows() * s / kTablets));
    }
    db.add_splits("G", splits);

    // In-memory oracles on the same matrix.
    const std::uint64_t oracle = algo::triangle_count_masked(a);
    const std::uint64_t oracle_baseline = algo::triangle_count_baseline(a);

    util::Timer t;
    core::TableMultStats masked_stats;
    const auto masked = core::table_triangle_count_masked(db, "G",
                                                          &masked_stats);
    const double masked_ms = t.millis();

    t.reset();
    core::TableMultStats trace_stats;
    const auto trace = core::table_triangle_count_trace(db, "G", &trace_stats);
    const double trace_ms = t.millis();

    t.reset();
    const auto incidence = core::table_triangle_count_incidence(db, "G");
    const double incidence_ms = t.millis();

    const bool agree = masked == oracle && trace == oracle &&
                       incidence == oracle && oracle_baseline == oracle;
    all_agree = all_agree && agree;
    const double ratio =
        static_cast<double>(trace_stats.partial_products) /
        static_cast<double>(std::max<std::size_t>(
            std::size_t{1}, masked_stats.partial_products));
    max_scale_ratio = ratio;  // scales ascend; the last row is the largest
    const double masked_rate =
        masked_ms > 0 ? static_cast<double>(a.nnz()) / (masked_ms / 1e3) : 0.0;

    table.add_row({std::to_string(scale), std::to_string(a.rows()),
                   std::to_string(a.nnz()), std::to_string(masked),
                   util::TablePrinter::fmt(masked_ms, 1),
                   util::TablePrinter::fmt(trace_ms, 1),
                   util::TablePrinter::fmt(incidence_ms, 1),
                   util::TablePrinter::fmt(masked_rate / 1e3, 1) + "K",
                   std::to_string(masked_stats.partial_products),
                   std::to_string(masked_stats.partial_products_pruned),
                   std::to_string(trace_stats.partial_products),
                   util::TablePrinter::fmt(ratio, 1) + "x",
                   agree ? "yes" : "NO"});
    if (!first) rows += ", ";
    first = false;
    rows += "{\"scale\": " + std::to_string(scale) +
            ", \"n\": " + std::to_string(a.rows()) +
            ", \"nnz\": " + std::to_string(a.nnz()) +
            ", \"triangles\": " + std::to_string(masked) +
            ", \"oracle\": " + std::to_string(oracle) +
            ", \"agree\": " + (agree ? "true" : "false") +
            ", \"masked\": {\"ms\": " + util::TablePrinter::fmt(masked_ms, 3) +
            ", \"edges_per_s\": " + std::to_string(masked_rate) +
            ", \"partials_emitted\": " +
            std::to_string(masked_stats.partial_products) +
            ", \"partials_pruned\": " +
            std::to_string(masked_stats.partial_products_pruned) + "}" +
            ", \"trace\": {\"ms\": " + util::TablePrinter::fmt(trace_ms, 3) +
            ", \"partials_emitted\": " +
            std::to_string(trace_stats.partial_products) + "}" +
            ", \"incidence\": {\"ms\": " +
            util::TablePrinter::fmt(incidence_ms, 3) +
            ", \"count\": " + std::to_string(incidence) + "}" +
            ", \"partial_ratio_trace_over_masked\": " +
            util::TablePrinter::fmt(ratio, 2) + "}";
  }
  rows += "]";
  table.print(
      "Table-level triangle counting (masked fused vs trace(A^3)/6 vs "
      "incidence)");

  std::ofstream("BENCH_triangle.json")
      << "{\"bench\": \"triangle\", \"smoke\": " << (smoke ? "true" : "false")
      << ", \"rows\": " << rows
      << ", \"max_scale_partial_ratio\": "
      << util::TablePrinter::fmt(max_scale_ratio, 2)
      << ", \"all_agree\": " << (all_agree ? "true" : "false") << "}\n";
  std::printf("wrote BENCH_triangle.json (max-scale partial ratio %.1fx, %s)\n",
              max_scale_ratio, all_agree ? "all counts agree" : "DISAGREEMENT");
  return all_agree ? 0 : 1;
}
