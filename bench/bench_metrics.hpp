#pragma once
// Shared --metrics-json support for the bench mains. Construct a
// MetricsDump at the top of main(); if the command line carries
// `--metrics-json <path>` (or `--metrics-json=<path>`, or the bench
// passes a default path), the destructor writes a JSON snapshot of the
// global metrics registry there when the bench exits — one flag, one
// dump format, every bench.

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace graphulo::bench {

class MetricsDump {
 public:
  /// Scans argv for --metrics-json; `default_path` (may be empty = no
  /// dump) applies when the flag is absent.
  MetricsDump(int argc, char** argv, std::string default_path = "")
      : path_(std::move(default_path)) {
    const std::string flag = "--metrics-json";
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == flag && i + 1 < argc) {
        path_ = argv[i + 1];
      } else if (arg.rfind(flag + "=", 0) == 0) {
        path_ = arg.substr(flag.size() + 1);
      }
    }
  }

  MetricsDump(const MetricsDump&) = delete;
  MetricsDump& operator=(const MetricsDump&) = delete;

  ~MetricsDump() {
    if (path_.empty()) return;
    const auto snapshot = obs::MetricsRegistry::global().snapshot();
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "metrics dump: cannot open %s\n", path_.c_str());
      return;
    }
    out << obs::to_json(snapshot);
    std::printf("wrote metrics snapshot to %s\n", path_.c_str());
  }

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

}  // namespace graphulo::bench
