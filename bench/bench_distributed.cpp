// Local-vs-distributed comparison for the socket-RPC mode: spawns 3
// graphulo_tsd daemons (the real binary, fork/exec, ephemeral ports)
// and measures, against a single-process Instance baseline:
//
//   scan       full-table drain throughput (cells/s) at several
//              kScanContinue batch sizes — the lease/batch knob's cost
//              curve (EXPERIMENTS.md knob table),
//   write      exactly-once remote writer vs local BatchWriter
//              (mutations/s; remote acks are WAL-synced on the server),
//   tablemult  C += A^T*A on an RMAT adjacency: the unchanged kernel on
//              a LocalDataPlane vs the same kernel against the fleet
//              through ClusterDataPlane.
//
// The distributed product is checked cell-for-cell against the local
// one (small-integer sums are exact); the bench exits nonzero on any
// disagreement, so CI smoke doubles as an equivalence gate. Emits
// BENCH_distributed.json; --smoke shrinks sizes for CI.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "assoc/table_io.hpp"
#include "core/tablemult.hpp"
#include "distributed/cluster.hpp"
#include "gen/rmat.hpp"
#include "la/la.hpp"
#include "nosql/batch_writer.hpp"
#include "nosql/codec.hpp"
#include "nosql/instance.hpp"
#include "nosql/scanner.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

#include "bench_metrics.hpp"

using namespace graphulo;

namespace {

/// One forked tablet-server daemon (stdout piped for the LISTENING
/// handshake). Hard-killed at destruction.
class Daemon {
 public:
  Daemon(const std::string& data_dir, std::uint32_t server_index,
         const std::vector<std::string>& boundaries) {
    std::string joined;
    for (const auto& b : boundaries) {
      if (!joined.empty()) joined += ',';
      joined += b;
    }
    int fds[2];
    if (::pipe(fds) != 0) {
      std::perror("pipe");
      std::exit(1);
    }
    pid_ = ::fork();
    if (pid_ < 0) {
      std::perror("fork");
      std::exit(1);
    }
    if (pid_ == 0) {
      ::close(fds[0]);
      ::dup2(fds[1], STDOUT_FILENO);
      ::close(fds[1]);
      const std::string index = std::to_string(server_index);
      std::vector<const char*> argv = {GRAPHULO_TSD_PATH,
                                       "--port",         "0",
                                       "--server-index", index.c_str(),
                                       "--data-dir",     data_dir.c_str()};
      if (!joined.empty()) {
        argv.push_back("--boundaries");
        argv.push_back(joined.c_str());
      }
      argv.push_back(nullptr);
      ::execv(GRAPHULO_TSD_PATH, const_cast<char* const*>(argv.data()));
      ::perror("execv graphulo_tsd");
      ::_exit(127);
    }
    ::close(fds[1]);
    std::string out;
    char buf[256];
    while (true) {
      const ssize_t n = ::read(fds[0], buf, sizeof(buf));
      if (n <= 0) {
        std::fprintf(stderr, "daemon handshake not seen: %s\n", out.c_str());
        std::exit(1);
      }
      out.append(buf, static_cast<std::size_t>(n));
      const auto at = out.find("GRAPHULO_TSD LISTENING port=");
      if (at != std::string::npos && out.find('\n', at) != std::string::npos) {
        port_ = static_cast<std::uint16_t>(
            std::stoul(out.substr(at + 28, out.find('\n', at) - (at + 28))));
        break;
      }
    }
    out_fd_ = fds[0];
  }

  ~Daemon() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
    if (out_fd_ >= 0) ::close(out_fd_);
  }

  distributed::Endpoint endpoint() const { return {"127.0.0.1", port_}; }

 private:
  pid_t pid_ = -1;
  int out_fd_ = -1;
  std::uint16_t port_ = 0;
};

struct CellTally {
  std::size_t cells = 0;
  double value_sum = 0;

  bool operator==(const CellTally&) const = default;
};

CellTally tally_local(nosql::Instance& db, const std::string& table) {
  CellTally t;
  nosql::Scanner scan(db, table);
  scan.for_each([&t](const nosql::Key&, const nosql::Value& v) {
    ++t.cells;
    t.value_sum += nosql::decode_double(v).value_or(0.0);
  });
  return t;
}

CellTally tally_remote(distributed::Cluster& cluster,
                       const std::string& table) {
  CellTally t;
  auto it = cluster.scan(table, nosql::Range::all());
  while (it->has_top()) {
    ++t.cells;
    t.value_sum += nosql::decode_double(it->top_value()).value_or(0.0);
    it->next();
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::MetricsDump metrics_dump(argc, argv);

  const int scan_rows = smoke ? 20000 : 200000;
  const int rmat_scale = smoke ? 7 : 9;

  // ---- fleet ------------------------------------------------------------
  gen::RmatParams params;
  params.scale = rmat_scale;
  params.edge_factor = 8;
  const auto a = gen::rmat_simple_adjacency(params);
  const la::Index n = a.rows();

  const int key_span = std::max<int>(scan_rows, n);
  const std::vector<std::string> boundaries = {
      assoc::vertex_key(key_span / 3), assoc::vertex_key(2 * key_span / 3)};
  const std::string base =
      std::filesystem::temp_directory_path().string() + "/graphulo_bench_tsd_" +
      std::to_string(::getpid());
  std::filesystem::remove_all(base);
  std::vector<std::unique_ptr<Daemon>> fleet;
  for (std::uint32_t i = 0; i < 3; ++i) {
    fleet.push_back(std::make_unique<Daemon>(base + "/s" + std::to_string(i),
                                             i, boundaries));
  }
  const auto make_cluster = [&](std::uint32_t scan_batch) {
    distributed::ClusterOptions options;
    options.scan_batch_cells = scan_batch;
    std::vector<distributed::Endpoint> endpoints;
    for (const auto& d : fleet) endpoints.push_back(d->endpoint());
    return distributed::Cluster(std::move(endpoints), boundaries, options);
  };

  std::string json = "{\"bench\": \"distributed\", \"smoke\": ";
  json += smoke ? "true" : "false";
  json += ", \"servers\": 3";

  // ---- write: local BatchWriter vs exactly-once remote writer -----------
  nosql::Instance local;
  local.create_table("S");
  double local_write_ms = 0;
  {
    util::Timer timer;
    nosql::BatchWriter writer(local, "S");
    for (int i = 0; i < scan_rows; ++i) {
      nosql::Mutation m(assoc::vertex_key(i));
      m.put("f", "q", nosql::encode_double(i % 97));
      writer.add_mutation(std::move(m));
    }
    writer.close();
    local_write_ms = timer.millis();
  }
  auto cluster = make_cluster(2048);
  cluster.ensure_table("S", false);
  double remote_write_ms = 0;
  {
    util::Timer timer;
    auto writer = cluster.writer("S", "bench-loader");
    for (int i = 0; i < scan_rows; ++i) {
      nosql::Mutation m(assoc::vertex_key(i));
      m.put("f", "q", nosql::encode_double(i % 97));
      writer->add_mutation(std::move(m));
    }
    writer->close();
    remote_write_ms = timer.millis();
  }
  util::TablePrinter wtable({"mode", "mutations", "ms", "mutations_per_s"});
  const auto rate = [](int count, double ms) {
    return ms > 0 ? count / (ms / 1e3) : 0.0;
  };
  wtable.add_row({"local", std::to_string(scan_rows),
                  util::TablePrinter::fmt(local_write_ms, 1),
                  util::TablePrinter::fmt(rate(scan_rows, local_write_ms), 0)});
  wtable.add_row({"remote", std::to_string(scan_rows),
                  util::TablePrinter::fmt(remote_write_ms, 1),
                  util::TablePrinter::fmt(rate(scan_rows, remote_write_ms), 0)});
  wtable.print("Write path (local BatchWriter vs remote exactly-once writer)");
  json += ", \"write\": {\"mutations\": " + std::to_string(scan_rows) +
          ", \"local_ms\": " + util::TablePrinter::fmt(local_write_ms, 3) +
          ", \"remote_ms\": " + util::TablePrinter::fmt(remote_write_ms, 3) +
          "}";

  // ---- scan: drain throughput vs kScanContinue batch size ---------------
  util::TablePrinter stable({"mode", "batch_cells", "cells", "ms", "cells_per_s"});
  double local_scan_ms = 0;
  std::size_t scan_cells = 0;
  {
    util::Timer timer;
    scan_cells = tally_local(local, "S").cells;
    local_scan_ms = timer.millis();
  }
  stable.add_row({"local", "-", std::to_string(scan_cells),
                  util::TablePrinter::fmt(local_scan_ms, 1),
                  util::TablePrinter::fmt(
                      rate(static_cast<int>(scan_cells), local_scan_ms), 0)});
  json += ", \"scan\": {\"cells\": " + std::to_string(scan_cells) +
          ", \"local_ms\": " + util::TablePrinter::fmt(local_scan_ms, 3) +
          ", \"remote\": [";
  bool first = true;
  for (const std::uint32_t batch : {256u, 2048u, 8192u}) {
    auto batched = make_cluster(batch);
    util::Timer timer;
    const auto tally = tally_remote(batched, "S");
    const double ms = timer.millis();
    stable.add_row({"remote", std::to_string(batch),
                    std::to_string(tally.cells),
                    util::TablePrinter::fmt(ms, 1),
                    util::TablePrinter::fmt(
                        rate(static_cast<int>(tally.cells), ms), 0)});
    if (!first) json += ", ";
    first = false;
    json += "{\"batch_cells\": " + std::to_string(batch) +
            ", \"ms\": " + util::TablePrinter::fmt(ms, 3) + "}";
    if (tally.cells != scan_cells) {
      std::fprintf(stderr, "remote scan cell count mismatch: %zu vs %zu\n",
                   tally.cells, scan_cells);
      return 1;
    }
  }
  json += "]}";
  stable.print("Scan drain (local iterator vs leased remote scan)");

  // ---- tablemult: LocalDataPlane vs the 3-server fleet ------------------
  assoc::write_matrix(local, "A", a);
  const auto local_stats =
      core::table_mult(local, "A", "A", "C", {.compact_result = true});
  cluster.ensure_table("A", false);
  {
    auto writer = cluster.writer("A", "matrix-loader");
    for (const auto& t : a.to_triples()) {
      nosql::Mutation m(assoc::vertex_key(t.row));
      m.put(assoc::kValueFamily, assoc::vertex_key(t.col),
            nosql::encode_double(t.val));
      writer->add_mutation(std::move(m));
    }
    writer->close();
  }
  const auto remote_stats = distributed::table_mult(cluster, "A", "A", "C",
                                                    {.compact_result = true});
  const auto local_tally = tally_local(local, "C");
  const auto remote_tally = tally_remote(cluster, "C");
  const bool agree = local_tally == remote_tally;

  util::TablePrinter mtable(
      {"mode", "n", "nnz", "ms", "partials", "result_cells", "agree"});
  mtable.add_row({"local", std::to_string(n), std::to_string(a.nnz()),
                  util::TablePrinter::fmt(local_stats.seconds * 1e3, 1),
                  std::to_string(local_stats.partial_products),
                  std::to_string(local_tally.cells), agree ? "yes" : "NO"});
  mtable.add_row({"remote", std::to_string(n), std::to_string(a.nnz()),
                  util::TablePrinter::fmt(remote_stats.seconds * 1e3, 1),
                  std::to_string(remote_stats.partial_products),
                  std::to_string(remote_tally.cells), agree ? "yes" : "NO"});
  mtable.print("TableMult C += A^T*A (one process vs 3-server fleet)");
  json += ", \"tablemult\": {\"scale\": " + std::to_string(rmat_scale) +
          ", \"nnz\": " + std::to_string(a.nnz()) +
          ", \"local_ms\": " +
          util::TablePrinter::fmt(local_stats.seconds * 1e3, 3) +
          ", \"remote_ms\": " +
          util::TablePrinter::fmt(remote_stats.seconds * 1e3, 3) +
          ", \"result_cells\": " + std::to_string(remote_tally.cells) +
          ", \"agree\": " + (agree ? "true" : "false") + "}";

  json += "}\n";
  std::ofstream("BENCH_distributed.json") << json;
  std::printf("wrote BENCH_distributed.json (%s)\n",
              agree ? "local and distributed products agree"
                    : "DISAGREEMENT between local and distributed products");
  fleet.clear();
  std::filesystem::remove_all(base);
  return agree ? 0 : 1;
}
