// Fig. 3 reproduction: NMF topic modeling of ~20,000 tweets into 5
// topics via Algorithm 5 (ALS with Newton-Schulz inverses, Algorithm 4)
// on the D4M-exploded term-document incidence array. The paper's
// artifact is qualitative (a table of topics: Turkish, dating, guitar
// competition in Atlanta, Spanish, English); the synthetic corpus has
// those same five flavors with known labels, so this bench also reports
// topic purity, and ablates the Newton-inverse ALS against
// multiplicative updates (the inverse-free alternative Section IV
// discusses).

#include <cstdio>

#include "algo/nmf.hpp"
#include "assoc/assoc_array.hpp"
#include "assoc/schemas.hpp"
#include "gen/tweets.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

#include "bench_metrics.hpp"

using namespace graphulo;

namespace {

void print_topics(const char* label, const algo::NmfResult& result,
                  const assoc::AssocArray& incidence,
                  const gen::TweetCorpus& corpus, double seconds) {
  std::vector<int> truth;
  truth.reserve(corpus.tweets.size());
  for (const auto& t : corpus.tweets) truth.push_back(t.true_topic);
  const double purity =
      algo::topic_purity(algo::assign_topics(result.w), truth);
  std::printf("%s: %d iterations, residual %.1f -> %.1f, purity %.3f, %.2fs\n",
              label, result.iterations, result.residual_history.front(),
              result.residual_history.back(), purity, seconds);
  const auto& cols = incidence.col_keys();
  for (int topic = 0; topic < result.h.rows(); ++topic) {
    std::printf("  Topic %d:", topic + 1);
    for (la::Index term : algo::top_terms(result.h, topic, 10)) {
      const auto& key = cols[static_cast<std::size_t>(term)];
      std::printf(" %s", key.substr(key.find('|') + 1).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  graphulo::bench::MetricsDump metrics_dump(argc, argv);
  gen::TweetParams params;
  params.num_tweets = 20000;  // the paper's corpus size
  const auto corpus = gen::generate_tweets(params);
  const auto incidence = assoc::tweets_to_incidence(corpus);
  std::printf(
      "Corpus: %zu tweets, %zu distinct terms, %lld nonzeros "
      "(synthetic stand-in for the paper's Twitter data; see DESIGN.md)\n\n",
      corpus.tweets.size(), incidence.col_count(),
      static_cast<long long>(incidence.nnz()));

  algo::NmfOptions opts;
  opts.rank = 5;  // the paper's topic count
  opts.max_iterations = 40;

  util::Timer t;
  const auto als = algo::nmf_als_newton(incidence.matrix(), opts);
  const double als_s = t.seconds();
  print_topics("Algorithm 5 (ALS + Newton-Schulz inverse)", als, incidence,
               corpus, als_s);
  std::printf("\n");

  t.reset();
  const auto mult = algo::nmf_multiplicative(incidence.matrix(), opts);
  const double mult_s = t.seconds();
  print_topics("Multiplicative updates (ablation)", mult, incidence, corpus,
               mult_s);

  // D4M degree-filter ablation: strip stop words (columns present in
  // more than 30% of tweets) before factoring — the standard Tdeg-based
  // cleanup. Topic words come out cleaner; purity stays high.
  {
    const auto filtered = assoc::filter_cols_by_degree(
        incidence, 2.0, 0.3 * static_cast<double>(corpus.tweets.size()));
    std::printf(
        "\nDegree filter: %zu -> %zu term columns (stop words removed)\n",
        incidence.col_count(), filtered.col_count());
    algo::NmfOptions fopts;
    fopts.rank = 5;
    fopts.max_iterations = 40;
    t.reset();
    const auto result = algo::nmf_als_newton(filtered.matrix(), fopts);
    print_topics("Algorithm 5 on degree-filtered terms", result, filtered,
                 corpus, t.seconds());
  }

  // Rank sensitivity: the paper fixes k = 5 (it knew the answer); this
  // sweep shows what mis-specified k costs. Purity uses 5 true labels
  // throughout, so k < 5 must merge topics and lose purity, while k > 5
  // only splits them (purity stays high).
  {
    std::vector<int> truth;
    for (const auto& tweet : corpus.tweets) truth.push_back(tweet.true_topic);
    util::TablePrinter table({"k", "residual", "purity", "iters"});
    for (int k : {3, 4, 5, 6, 8}) {
      algo::NmfOptions sweep_opts;
      sweep_opts.rank = k;
      sweep_opts.max_iterations = 25;
      const auto result = algo::nmf_als_newton(incidence.matrix(), sweep_opts);
      table.add_row({std::to_string(k),
                     util::TablePrinter::fmt(result.residual_history.back(), 1),
                     util::TablePrinter::fmt(
                         algo::topic_purity(algo::assign_topics(result.w),
                                            truth), 3),
                     std::to_string(result.iterations)});
    }
    table.print("Fig. 3 ablation: topic count k (truth has 5)");
  }

  std::printf("\nResidual trajectories (||A - WH||_F per iteration):\n");
  util::TablePrinter table({"iteration", "als_newton", "multiplicative"});
  const std::size_t rows =
      std::max(als.residual_history.size(), mult.residual_history.size());
  for (std::size_t i = 0; i < rows; ++i) {
    auto cell = [&](const std::vector<double>& h) {
      return i < h.size() ? util::TablePrinter::fmt(h[i], 2) : std::string("-");
    };
    table.add_row({std::to_string(i + 1), cell(als.residual_history),
                   cell(mult.residual_history)});
  }
  table.print("Fig. 3: NMF convergence");
  return 0;
}
