// NoSQL substrate throughput: the shape behind the paper's Accumulo
// citation [7] ("100,000,000 database inserts per second" on a large
// cluster) is that ingest scales with tablet servers and pre-splitting.
// In-process we cannot reproduce cluster numbers, but the scaling SHAPE
// is measurable: ingest/scan rate vs tablet-server count, the effect of
// pre-splitting, and the LSM knobs (flush threshold, compaction fan-in).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/tablemult.hpp"
#include "gen/rmat.hpp"
#include "nosql/nosql.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

#include "bench_metrics.hpp"

using namespace graphulo;

namespace {

/// Ingests `cells` random-ish cells and returns (ingest rate, scan rate).
std::pair<double, double> run_workload(int servers, int splits,
                                       std::size_t cells,
                                       nosql::TableConfig cfg) {
  nosql::Instance db(servers);
  db.create_table("t", std::move(cfg));
  if (splits > 1) {
    std::vector<std::string> split_rows;
    for (int s = 1; s < splits; ++s) {
      split_rows.push_back(
          util::zero_pad(static_cast<std::uint64_t>(s * 1000 / splits), 4));
    }
    db.add_splits("t", split_rows);
  }
  util::Timer t;
  {
    nosql::BatchWriter writer(db, "t");
    for (std::size_t i = 0; i < cells; ++i) {
      // Row keys spread over the split space; qualifier distinguishes.
      nosql::Mutation m(util::zero_pad(i % 1000, 4));
      m.put("f", util::zero_pad(i / 1000, 6), nosql::encode_double(1.0));
      writer.add_mutation(std::move(m));
    }
    writer.flush();
  }
  const double ingest_rate = static_cast<double>(cells) / t.seconds();

  t.reset();
  nosql::BatchScanner scanner(db, "t");
  std::atomic<std::size_t> seen{0};
  scanner.for_each([&seen](const nosql::Key&, const nosql::Value&) {
    seen.fetch_add(1, std::memory_order_relaxed);
  });
  const double scan_rate = static_cast<double>(seen.load()) / t.seconds();
  return {ingest_rate, scan_rate};
}

const char* mode_name(nosql::WalSyncMode m) {
  switch (m) {
    case nosql::WalSyncMode::kPerAppend: return "per_append";
    case nosql::WalSyncMode::kGroup: return "group";
    case nosql::WalSyncMode::kInterval: return "interval";
  }
  return "?";
}

/// One point of the asynchronous-write-path sweep: `writers` threads
/// apply mutations through a WAL in the given sync mode with background
/// compactions on, then the table is flushed and scanned twice to
/// exercise the block cache.
struct IngestPoint {
  double cells_per_s = 0.0;
  double p50_us = 0.0;  ///< per-apply latency, microseconds
  double p99_us = 0.0;
  double scan_rate = 0.0;  ///< second (cache-warm) scan
  double hit_rate = 0.0;   ///< cache hits / (hits + misses)
  nosql::TabletStats agg;  ///< summed tablet stats (cache counters once)
};

IngestPoint run_ingest_point(int writers, nosql::WalSyncMode mode,
                             bool cache_on, std::size_t total_cells,
                             std::size_t cache_bytes) {
  nosql::Instance db(2);
  const std::string wal_path = "/tmp/graphulo_bench_ingest.wal";
  std::remove(wal_path.c_str());
  nosql::TableConfig cfg;
  cfg.flush_entries = std::max<std::size_t>(1000, total_cells / 8);
  cfg.wal.sync_mode = mode;
  cfg.rfile.cache_bytes = cache_on ? cache_bytes : 0;
  db.attach_wal(std::make_shared<nosql::WriteAheadLog>(wal_path, cfg.wal));
  auto sched = std::make_shared<nosql::CompactionScheduler>(2);
  db.attach_compaction_scheduler(sched);
  db.create_table("t", cfg);

  const std::size_t per_writer = total_cells / static_cast<std::size_t>(writers);
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(writers));
  std::vector<std::thread> threads;
  util::Timer t;
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      auto& lat = latencies[static_cast<std::size_t>(w)];
      lat.reserve(per_writer);
      for (std::size_t i = 0; i < per_writer; ++i) {
        const std::size_t n = static_cast<std::size_t>(w) * per_writer + i;
        nosql::Mutation m(util::zero_pad(n % 1000, 4));
        m.put("f", util::zero_pad(n / 1000, 6), nosql::encode_double(1.0));
        util::Timer one;
        db.apply("t", m);
        lat.push_back(one.seconds() * 1e6);
      }
    });
  }
  for (auto& th : threads) th.join();
  db.sync_wal();
  const double elapsed = t.seconds();

  IngestPoint p;
  p.cells_per_s =
      static_cast<double>(per_writer * static_cast<std::size_t>(writers)) /
      elapsed;
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  const auto summary = util::summarize(all);
  p.p50_us = summary.p50;
  p.p99_us = summary.p99;

  // Push everything into files, then scan twice: the second pass
  // re-reads blocks the first inserted, so hits accumulate when
  // caching is on.
  db.flush("t");
  db.quiesce_compactions();
  for (int rep = 0; rep < 2; ++rep) {
    nosql::Scanner scanner(db, "t");
    std::size_t seen = 0;
    util::Timer st;
    scanner.for_each(
        [&seen](const nosql::Key&, const nosql::Value&) { ++seen; });
    p.scan_rate = static_cast<double>(seen) / st.seconds();
  }
  for (auto& [tablet, sid] : db.tablets_for_range("t", nosql::Range::all())) {
    const auto s = tablet->stats();
    p.agg.minor_compactions += s.minor_compactions;
    p.agg.major_compactions += s.major_compactions;
    p.agg.compactions_queued += s.compactions_queued;
    p.agg.compactions_completed += s.compactions_completed;
    p.agg.file_count += s.file_count;
    // The cache is table-wide: every tablet reports the same counters,
    // so assign rather than sum.
    p.agg.cache_hits = s.cache_hits;
    p.agg.cache_misses = s.cache_misses;
    p.agg.cache_evictions = s.cache_evictions;
  }
  const double touches =
      static_cast<double>(p.agg.cache_hits + p.agg.cache_misses);
  p.hit_rate =
      touches > 0 ? static_cast<double>(p.agg.cache_hits) / touches : 0.0;
  std::remove(wal_path.c_str());
  return p;
}

/// The asynchronous-write-path sweep: writers x WAL sync mode x cache.
/// Writes BENCH_ingest.json. `total_cells` is per configuration.
void run_ingest_sweep(std::size_t total_cells, std::size_t cache_bytes) {
  util::TablePrinter table({"writers", "sync", "cache", "ingest", "p50_us",
                            "p99_us", "bg_compactions", "hit_rate"});
  std::string json = "{\"bench\": \"ingest_sweep\", \"cells\": " +
                     std::to_string(total_cells) + ", \"results\": [";
  bool first = true;
  double per_append_8w = 0.0, group_8w = 0.0;
  for (int writers : {1, 8}) {
    for (auto mode : {nosql::WalSyncMode::kPerAppend,
                      nosql::WalSyncMode::kGroup,
                      nosql::WalSyncMode::kInterval}) {
      for (bool cache_on : {false, true}) {
        const auto p = run_ingest_point(writers, mode, cache_on, total_cells,
                                        cache_bytes);
        if (writers == 8 && !cache_on) {
          if (mode == nosql::WalSyncMode::kPerAppend) per_append_8w = p.cells_per_s;
          if (mode == nosql::WalSyncMode::kGroup) group_8w = p.cells_per_s;
        }
        table.add_row(
            {std::to_string(writers), mode_name(mode), cache_on ? "on" : "off",
             util::human_rate(p.cells_per_s),
             util::TablePrinter::fmt(p.p50_us, 1),
             util::TablePrinter::fmt(p.p99_us, 1),
             std::to_string(p.agg.compactions_completed) + "/" +
                 std::to_string(p.agg.compactions_queued),
             cache_on ? util::TablePrinter::fmt(p.hit_rate, 3) : "-"});
        if (!first) json += ", ";
        first = false;
        json += "{\"writers\": " + std::to_string(writers) +
                ", \"sync_mode\": \"" + mode_name(mode) +
                "\", \"cache\": " + (cache_on ? "true" : "false") +
                ", \"cells_per_s\": " + std::to_string(p.cells_per_s) +
                ", \"apply_p50_us\": " + util::TablePrinter::fmt(p.p50_us, 2) +
                ", \"apply_p99_us\": " + util::TablePrinter::fmt(p.p99_us, 2) +
                ", \"scan_cells_per_s\": " + std::to_string(p.scan_rate) +
                ", \"cache_hit_rate\": " + util::TablePrinter::fmt(p.hit_rate, 4) +
                ", \"cache_evictions\": " + std::to_string(p.agg.cache_evictions) +
                ", \"bg_compactions_completed\": " +
                std::to_string(p.agg.compactions_completed) + "}";
      }
    }
  }
  const double speedup = per_append_8w > 0 ? group_8w / per_append_8w : 0.0;
  json += "], \"group_vs_per_append_8w\": " +
          util::TablePrinter::fmt(speedup, 2) + "}\n";
  table.print("Async write path: WAL sync mode x writers x block cache (" +
              std::to_string(total_cells) + " cells each)");
  std::printf("group vs per_append at 8 writers: %.2fx\n", speedup);
  std::ofstream("BENCH_ingest.json") << json;
  std::printf("wrote BENCH_ingest.json\n\n");
}

/// Smoke-only: a small TableMult fed through BatchWriters, so one
/// --smoke run touches every instrumented subsystem (WAL commit,
/// flush/compaction, block cache, scan, BatchWriter, TableMult) and the
/// metrics dump carries a non-zero series from each.
void run_smoke_tablemult() {
  nosql::Instance db(2);
  const std::string wal_path = "/tmp/graphulo_bench_smoke_mult.wal";
  std::remove(wal_path.c_str());
  nosql::TableConfig cfg;
  cfg.flush_entries = 64;
  cfg.rfile.cache_bytes = 16 * 1024;
  db.attach_wal(std::make_shared<nosql::WriteAheadLog>(wal_path));
  db.create_table("A", cfg);
  db.create_table("B", cfg);
  {
    nosql::BatchWriter wa(db, "A");
    nosql::BatchWriter wb(db, "B");
    for (int k = 0; k < 24; ++k) {
      nosql::Mutation ma(util::zero_pad(static_cast<std::uint64_t>(k), 4));
      nosql::Mutation mb(util::zero_pad(static_cast<std::uint64_t>(k), 4));
      for (int j = 0; j < 6; ++j) {
        ma.put("f", "a" + std::to_string((k + j) % 8),
               nosql::encode_double(1.0 + j));
        mb.put("f", "b" + std::to_string((k * 3 + j) % 8),
               nosql::encode_double(2.0));
      }
      wa.add_mutation(std::move(ma));
      wb.add_mutation(std::move(mb));
    }
    wa.close();
    wb.close();
  }
  db.flush("A");
  db.flush("B");
  core::TableMultOptions options;
  options.num_workers = 2;
  const auto stats = core::table_mult(db, "A", "B", "C", options);
  std::printf("smoke TableMult: %zu rows joined, %zu partial products\n",
              stats.rows_joined, stats.partial_products);
  std::remove(wal_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  // --smoke always leaves a metrics dump behind (CI reads it);
  // full runs opt in with --metrics-json <path>.
  graphulo::bench::MetricsDump metrics_dump(argc, argv,
                                            smoke ? "BENCH_metrics.json" : "");
  if (smoke) {
    // Tiny sweep for sanitizer CI: every sync mode, background
    // compactions, and a cache small enough to evict.
    run_ingest_sweep(1600, 16 * 1024);
    run_smoke_tablemult();
    return 0;
  }

  const std::size_t kCells = 200000;

  // Cache sized to hold the working set: a sequential re-scan against a
  // smaller-than-data LRU evicts every block before its re-read (the
  // classic scan-thrash pattern, visible in --smoke's tiny cache).
  run_ingest_sweep(16000, 8 * 1024 * 1024);

  {
    util::TablePrinter table({"servers", "splits", "ingest", "scan"});
    for (int servers : {1, 2, 4}) {
      for (int splits : {1, servers}) {
        nosql::TableConfig cfg;
        cfg.flush_entries = 50000;
        const auto [ingest, scan] = run_workload(servers, splits, kCells, cfg);
        table.add_row({std::to_string(servers), std::to_string(splits),
                       util::human_rate(ingest), util::human_rate(scan)});
      }
    }
    table.print("Ingest/scan rate vs tablet servers and pre-splits (" +
                std::to_string(kCells) + " cells)");
  }

  {
    util::TablePrinter table({"flush_entries", "fanin", "ingest", "scan",
                              "minor_compactions"});
    for (std::size_t flush : {5000, 20000, 100000}) {
      for (std::size_t fanin : {4, 16}) {
        nosql::TableConfig cfg;
        cfg.flush_entries = flush;
        cfg.compaction_fanin = fanin;
        nosql::Instance db(1);
        db.create_table("t", cfg);
        util::Timer t;
        {
          nosql::BatchWriter writer(db, "t");
          for (std::size_t i = 0; i < kCells; ++i) {
            nosql::Mutation m(util::zero_pad(i % 997, 4));
            m.put("f", util::zero_pad(i / 997, 6), nosql::encode_double(1.0));
            writer.add_mutation(std::move(m));
          }
          writer.flush();
        }
        const double ingest = static_cast<double>(kCells) / t.seconds();
        t.reset();
        nosql::Scanner scanner(db, "t");
        std::size_t seen = 0;
        scanner.for_each(
            [&seen](const nosql::Key&, const nosql::Value&) { ++seen; });
        const double scan = static_cast<double>(seen) / t.seconds();
        std::size_t mincs = 0;
        for (auto& [tablet, sid] :
             db.tablets_for_range("t", nosql::Range::all())) {
          mincs += tablet->stats().minor_compactions;
        }
        table.add_row({std::to_string(flush), std::to_string(fanin),
                       util::human_rate(ingest), util::human_rate(scan),
                       std::to_string(mincs)});
      }
    }
    table.print("LSM tuning: flush threshold and compaction fan-in");
  }

  // Block scan sweep: full-table scan throughput vs next_block() batch
  // size. Size 1 is the legacy cell-at-a-time path (every cell pays the
  // full virtual-dispatch chain through the stack); larger blocks
  // amortize it via the run-length merge and bulk RFile copies.
  {
    nosql::Instance db(1);
    nosql::TableConfig cfg;
    cfg.flush_entries = 60000;  // several rfiles -> a real merge fan-in
    db.create_table("t", cfg);
    {
      nosql::BatchWriter writer(db, "t");
      for (std::size_t i = 0; i < 2 * kCells; ++i) {
        nosql::Mutation m(util::zero_pad(i % 4096, 4));
        m.put("f", util::zero_pad(i / 4096, 6), nosql::encode_double(1.0));
        writer.add_mutation(std::move(m));
      }
      writer.flush();
    }
    db.flush("t");

    util::TablePrinter table({"block", "scan", "speedup"});
    double base_rate = 0.0;
    std::string json = "{\"bench\": \"scan_block_sweep\", \"cells\": " +
                       std::to_string(2 * kCells) + ", \"results\": [";
    bool first = true;
    for (const std::size_t block : {1, 64, 1024, 4096}) {
      double best = 0.0;
      for (int rep = 0; rep < 3; ++rep) {  // best-of-3 per point
        nosql::Scanner scanner(db, "t");
        scanner.set_batch_size(block);
        std::size_t seen = 0;
        util::Timer t;
        scanner.for_each(
            [&seen](const nosql::Key&, const nosql::Value&) { ++seen; });
        const double rate = static_cast<double>(seen) / t.seconds();
        if (rate > best) best = rate;
      }
      if (block == 1) base_rate = best;
      const double speedup = base_rate > 0 ? best / base_rate : 1.0;
      table.add_row({std::to_string(block), util::human_rate(best),
                     util::TablePrinter::fmt(speedup, 2) + "x"});
      if (!first) json += ", ";
      first = false;
      json += "{\"block\": " + std::to_string(block) +
              ", \"cells_per_s\": " + std::to_string(best) +
              ", \"speedup_vs_block1\": " +
              util::TablePrinter::fmt(speedup, 3) + "}";
    }
    json += "]}\n";
    table.print("Scan throughput vs block size (block 1 = cell-at-a-time)");
    std::ofstream("BENCH_scan.json") << json;
    std::printf("wrote BENCH_scan.json\n\n");
  }

  // WAL overhead: journaled vs unjournaled ingest of the same workload.
  {
    util::TablePrinter table({"wal", "ingest", "overhead"});
    double base_rate = 0.0;
    for (const bool journaled : {false, true}) {
      nosql::Instance db(1);
      const std::string wal_path = "/tmp/graphulo_bench_dbops.wal";
      std::remove(wal_path.c_str());
      if (journaled) {
        db.attach_wal(std::make_shared<nosql::WriteAheadLog>(wal_path));
      }
      db.create_table("t");
      util::Timer t;
      {
        nosql::BatchWriter writer(db, "t");
        for (std::size_t i = 0; i < kCells; ++i) {
          nosql::Mutation m(util::zero_pad(i % 1000, 4));
          m.put("f", util::zero_pad(i / 1000, 6), nosql::encode_double(1.0));
          writer.add_mutation(std::move(m));
        }
        writer.flush();
      }
      db.sync_wal();
      const double rate = static_cast<double>(kCells) / t.seconds();
      if (!journaled) base_rate = rate;
      table.add_row({journaled ? "on" : "off", util::human_rate(rate),
                     journaled && base_rate > 0
                         ? util::TablePrinter::fmt(base_rate / rate, 2) + "x"
                         : "-"});
      std::remove(wal_path.c_str());
    }
    table.print("Write-ahead-log durability cost");
  }
  return 0;
}
