// NoSQL substrate throughput: the shape behind the paper's Accumulo
// citation [7] ("100,000,000 database inserts per second" on a large
// cluster) is that ingest scales with tablet servers and pre-splitting.
// In-process we cannot reproduce cluster numbers, but the scaling SHAPE
// is measurable: ingest/scan rate vs tablet-server count, the effect of
// pre-splitting, and the LSM knobs (flush threshold, compaction fan-in).

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "gen/rmat.hpp"
#include "nosql/nosql.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

using namespace graphulo;

namespace {

/// Ingests `cells` random-ish cells and returns (ingest rate, scan rate).
std::pair<double, double> run_workload(int servers, int splits,
                                       std::size_t cells,
                                       nosql::TableConfig cfg) {
  nosql::Instance db(servers);
  db.create_table("t", std::move(cfg));
  if (splits > 1) {
    std::vector<std::string> split_rows;
    for (int s = 1; s < splits; ++s) {
      split_rows.push_back(
          util::zero_pad(static_cast<std::uint64_t>(s * 1000 / splits), 4));
    }
    db.add_splits("t", split_rows);
  }
  util::Timer t;
  {
    nosql::BatchWriter writer(db, "t");
    for (std::size_t i = 0; i < cells; ++i) {
      // Row keys spread over the split space; qualifier distinguishes.
      nosql::Mutation m(util::zero_pad(i % 1000, 4));
      m.put("f", util::zero_pad(i / 1000, 6), nosql::encode_double(1.0));
      writer.add_mutation(std::move(m));
    }
    writer.flush();
  }
  const double ingest_rate = static_cast<double>(cells) / t.seconds();

  t.reset();
  nosql::BatchScanner scanner(db, "t");
  std::atomic<std::size_t> seen{0};
  scanner.for_each([&seen](const nosql::Key&, const nosql::Value&) {
    seen.fetch_add(1, std::memory_order_relaxed);
  });
  const double scan_rate = static_cast<double>(seen.load()) / t.seconds();
  return {ingest_rate, scan_rate};
}

}  // namespace

int main() {
  const std::size_t kCells = 200000;

  {
    util::TablePrinter table({"servers", "splits", "ingest", "scan"});
    for (int servers : {1, 2, 4}) {
      for (int splits : {1, servers}) {
        nosql::TableConfig cfg;
        cfg.flush_entries = 50000;
        const auto [ingest, scan] = run_workload(servers, splits, kCells, cfg);
        table.add_row({std::to_string(servers), std::to_string(splits),
                       util::human_rate(ingest), util::human_rate(scan)});
      }
    }
    table.print("Ingest/scan rate vs tablet servers and pre-splits (" +
                std::to_string(kCells) + " cells)");
  }

  {
    util::TablePrinter table({"flush_entries", "fanin", "ingest", "scan",
                              "minor_compactions"});
    for (std::size_t flush : {5000, 20000, 100000}) {
      for (std::size_t fanin : {4, 16}) {
        nosql::TableConfig cfg;
        cfg.flush_entries = flush;
        cfg.compaction_fanin = fanin;
        nosql::Instance db(1);
        db.create_table("t", cfg);
        util::Timer t;
        {
          nosql::BatchWriter writer(db, "t");
          for (std::size_t i = 0; i < kCells; ++i) {
            nosql::Mutation m(util::zero_pad(i % 997, 4));
            m.put("f", util::zero_pad(i / 997, 6), nosql::encode_double(1.0));
            writer.add_mutation(std::move(m));
          }
          writer.flush();
        }
        const double ingest = static_cast<double>(kCells) / t.seconds();
        t.reset();
        nosql::Scanner scanner(db, "t");
        std::size_t seen = 0;
        scanner.for_each(
            [&seen](const nosql::Key&, const nosql::Value&) { ++seen; });
        const double scan = static_cast<double>(seen) / t.seconds();
        std::size_t mincs = 0;
        for (auto& [tablet, sid] :
             db.tablets_for_range("t", nosql::Range::all())) {
          mincs += tablet->stats().minor_compactions;
        }
        table.add_row({std::to_string(flush), std::to_string(fanin),
                       util::human_rate(ingest), util::human_rate(scan),
                       std::to_string(mincs)});
      }
    }
    table.print("LSM tuning: flush threshold and compaction fan-in");
  }

  // Block scan sweep: full-table scan throughput vs next_block() batch
  // size. Size 1 is the legacy cell-at-a-time path (every cell pays the
  // full virtual-dispatch chain through the stack); larger blocks
  // amortize it via the run-length merge and bulk RFile copies.
  {
    nosql::Instance db(1);
    nosql::TableConfig cfg;
    cfg.flush_entries = 60000;  // several rfiles -> a real merge fan-in
    db.create_table("t", cfg);
    {
      nosql::BatchWriter writer(db, "t");
      for (std::size_t i = 0; i < 2 * kCells; ++i) {
        nosql::Mutation m(util::zero_pad(i % 4096, 4));
        m.put("f", util::zero_pad(i / 4096, 6), nosql::encode_double(1.0));
        writer.add_mutation(std::move(m));
      }
      writer.flush();
    }
    db.flush("t");

    util::TablePrinter table({"block", "scan", "speedup"});
    double base_rate = 0.0;
    std::string json = "{\"bench\": \"scan_block_sweep\", \"cells\": " +
                       std::to_string(2 * kCells) + ", \"results\": [";
    bool first = true;
    for (const std::size_t block : {1, 64, 1024, 4096}) {
      double best = 0.0;
      for (int rep = 0; rep < 3; ++rep) {  // best-of-3 per point
        nosql::Scanner scanner(db, "t");
        scanner.set_batch_size(block);
        std::size_t seen = 0;
        util::Timer t;
        scanner.for_each(
            [&seen](const nosql::Key&, const nosql::Value&) { ++seen; });
        const double rate = static_cast<double>(seen) / t.seconds();
        if (rate > best) best = rate;
      }
      if (block == 1) base_rate = best;
      const double speedup = base_rate > 0 ? best / base_rate : 1.0;
      table.add_row({std::to_string(block), util::human_rate(best),
                     util::TablePrinter::fmt(speedup, 2) + "x"});
      if (!first) json += ", ";
      first = false;
      json += "{\"block\": " + std::to_string(block) +
              ", \"cells_per_s\": " + std::to_string(best) +
              ", \"speedup_vs_block1\": " +
              util::TablePrinter::fmt(speedup, 3) + "}";
    }
    json += "]}\n";
    table.print("Scan throughput vs block size (block 1 = cell-at-a-time)");
    std::ofstream("BENCH_scan.json") << json;
    std::printf("wrote BENCH_scan.json\n\n");
  }

  // WAL overhead: journaled vs unjournaled ingest of the same workload.
  {
    util::TablePrinter table({"wal", "ingest", "overhead"});
    double base_rate = 0.0;
    for (const bool journaled : {false, true}) {
      nosql::Instance db(1);
      const std::string wal_path = "/tmp/graphulo_bench_dbops.wal";
      std::remove(wal_path.c_str());
      if (journaled) {
        db.attach_wal(std::make_shared<nosql::WriteAheadLog>(wal_path));
      }
      db.create_table("t");
      util::Timer t;
      {
        nosql::BatchWriter writer(db, "t");
        for (std::size_t i = 0; i < kCells; ++i) {
          nosql::Mutation m(util::zero_pad(i % 1000, 4));
          m.put("f", util::zero_pad(i / 1000, 6), nosql::encode_double(1.0));
          writer.add_mutation(std::move(m));
        }
        writer.flush();
      }
      db.sync_wal();
      const double rate = static_cast<double>(kCells) / t.seconds();
      if (!journaled) base_rate = rate;
      table.add_row({journaled ? "on" : "off", util::human_rate(rate),
                     journaled && base_rate > 0
                         ? util::TablePrinter::fmt(base_rate / rate, 2) + "x"
                         : "-"});
      std::remove(wal_path.c_str());
    }
    table.print("Write-ahead-log durability cost");
  }
  return 0;
}
