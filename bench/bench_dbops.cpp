// NoSQL substrate throughput: the shape behind the paper's Accumulo
// citation [7] ("100,000,000 database inserts per second" on a large
// cluster) is that ingest scales with tablet servers and pre-splitting.
// In-process we cannot reproduce cluster numbers, but the scaling SHAPE
// is measurable: ingest/scan rate vs tablet-server count, the effect of
// pre-splitting, and the LSM knobs (flush threshold, compaction fan-in).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/tablemult.hpp"
#include "gen/rmat.hpp"
#include "gen/tweets.hpp"
#include "nosql/nosql.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

#include "bench_metrics.hpp"

using namespace graphulo;

namespace {

/// Ingests `cells` random-ish cells and returns (ingest rate, scan rate).
std::pair<double, double> run_workload(int servers, int splits,
                                       std::size_t cells,
                                       nosql::TableConfig cfg) {
  nosql::Instance db(servers);
  db.create_table("t", std::move(cfg));
  if (splits > 1) {
    std::vector<std::string> split_rows;
    for (int s = 1; s < splits; ++s) {
      split_rows.push_back(
          util::zero_pad(static_cast<std::uint64_t>(s * 1000 / splits), 4));
    }
    db.add_splits("t", split_rows);
  }
  util::Timer t;
  {
    nosql::BatchWriter writer(db, "t");
    for (std::size_t i = 0; i < cells; ++i) {
      // Row keys spread over the split space; qualifier distinguishes.
      nosql::Mutation m(util::zero_pad(i % 1000, 4));
      m.put("f", util::zero_pad(i / 1000, 6), nosql::encode_double(1.0));
      writer.add_mutation(std::move(m));
    }
    writer.flush();
  }
  const double ingest_rate = static_cast<double>(cells) / t.seconds();

  t.reset();
  nosql::BatchScanner scanner(db, "t");
  std::atomic<std::size_t> seen{0};
  scanner.for_each([&seen](const nosql::Key&, const nosql::Value&) {
    seen.fetch_add(1, std::memory_order_relaxed);
  });
  const double scan_rate = static_cast<double>(seen.load()) / t.seconds();
  return {ingest_rate, scan_rate};
}

const char* mode_name(nosql::WalSyncMode m) {
  switch (m) {
    case nosql::WalSyncMode::kPerAppend: return "per_append";
    case nosql::WalSyncMode::kGroup: return "group";
    case nosql::WalSyncMode::kInterval: return "interval";
  }
  return "?";
}

/// One point of the asynchronous-write-path sweep: `writers` threads
/// apply mutations through a WAL in the given sync mode with background
/// compactions on, then the table is flushed and scanned twice to
/// exercise the block cache.
struct IngestPoint {
  double cells_per_s = 0.0;
  double p50_us = 0.0;  ///< per-apply latency, microseconds
  double p99_us = 0.0;
  double scan_rate = 0.0;  ///< second (cache-warm) scan
  double hit_rate = 0.0;   ///< cache hits / (hits + misses)
  nosql::TabletStats agg;  ///< summed tablet stats (cache counters once)
};

IngestPoint run_ingest_point(int writers, nosql::WalSyncMode mode,
                             bool cache_on, std::size_t total_cells,
                             std::size_t cache_bytes) {
  nosql::Instance db(2);
  const std::string wal_path = "/tmp/graphulo_bench_ingest.wal";
  std::remove(wal_path.c_str());
  nosql::TableConfig cfg;
  cfg.flush_entries = std::max<std::size_t>(1000, total_cells / 8);
  cfg.wal.sync_mode = mode;
  cfg.rfile.cache_bytes = cache_on ? cache_bytes : 0;
  db.attach_wal(std::make_shared<nosql::WriteAheadLog>(wal_path, cfg.wal));
  auto sched = std::make_shared<nosql::CompactionScheduler>(2);
  db.attach_compaction_scheduler(sched);
  db.create_table("t", cfg);

  const std::size_t per_writer = total_cells / static_cast<std::size_t>(writers);
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(writers));
  std::vector<std::thread> threads;
  util::Timer t;
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      auto& lat = latencies[static_cast<std::size_t>(w)];
      lat.reserve(per_writer);
      for (std::size_t i = 0; i < per_writer; ++i) {
        const std::size_t n = static_cast<std::size_t>(w) * per_writer + i;
        nosql::Mutation m(util::zero_pad(n % 1000, 4));
        m.put("f", util::zero_pad(n / 1000, 6), nosql::encode_double(1.0));
        util::Timer one;
        db.apply("t", m);
        lat.push_back(one.seconds() * 1e6);
      }
    });
  }
  for (auto& th : threads) th.join();
  db.sync_wal();
  const double elapsed = t.seconds();

  IngestPoint p;
  p.cells_per_s =
      static_cast<double>(per_writer * static_cast<std::size_t>(writers)) /
      elapsed;
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  const auto summary = util::summarize(all);
  p.p50_us = summary.p50;
  p.p99_us = summary.p99;

  // Push everything into files, then scan twice: the second pass
  // re-reads blocks the first inserted, so hits accumulate when
  // caching is on.
  db.flush("t");
  db.quiesce_compactions();
  for (int rep = 0; rep < 2; ++rep) {
    nosql::Scanner scanner(db, "t");
    std::size_t seen = 0;
    util::Timer st;
    scanner.for_each(
        [&seen](const nosql::Key&, const nosql::Value&) { ++seen; });
    p.scan_rate = static_cast<double>(seen) / st.seconds();
  }
  for (auto& [tablet, sid] : db.tablets_for_range("t", nosql::Range::all())) {
    const auto s = tablet->stats();
    p.agg.minor_compactions += s.minor_compactions;
    p.agg.major_compactions += s.major_compactions;
    p.agg.compactions_queued += s.compactions_queued;
    p.agg.compactions_completed += s.compactions_completed;
    p.agg.file_count += s.file_count;
    // The cache is table-wide: every tablet reports the same counters,
    // so assign rather than sum.
    p.agg.cache_hits = s.cache_hits;
    p.agg.cache_misses = s.cache_misses;
    p.agg.cache_evictions = s.cache_evictions;
  }
  const double touches =
      static_cast<double>(p.agg.cache_hits + p.agg.cache_misses);
  p.hit_rate =
      touches > 0 ? static_cast<double>(p.agg.cache_hits) / touches : 0.0;
  std::remove(wal_path.c_str());
  return p;
}

/// The asynchronous-write-path sweep: writers x WAL sync mode x cache.
/// Writes BENCH_ingest.json. `total_cells` is per configuration.
void run_ingest_sweep(std::size_t total_cells, std::size_t cache_bytes) {
  util::TablePrinter table({"writers", "sync", "cache", "ingest", "p50_us",
                            "p99_us", "bg_compactions", "hit_rate"});
  std::string json = "{\"bench\": \"ingest_sweep\", \"cells\": " +
                     std::to_string(total_cells) + ", \"results\": [";
  bool first = true;
  double per_append_8w = 0.0, group_8w = 0.0;
  for (int writers : {1, 8}) {
    for (auto mode : {nosql::WalSyncMode::kPerAppend,
                      nosql::WalSyncMode::kGroup,
                      nosql::WalSyncMode::kInterval}) {
      for (bool cache_on : {false, true}) {
        const auto p = run_ingest_point(writers, mode, cache_on, total_cells,
                                        cache_bytes);
        if (writers == 8 && !cache_on) {
          if (mode == nosql::WalSyncMode::kPerAppend) per_append_8w = p.cells_per_s;
          if (mode == nosql::WalSyncMode::kGroup) group_8w = p.cells_per_s;
        }
        table.add_row(
            {std::to_string(writers), mode_name(mode), cache_on ? "on" : "off",
             util::human_rate(p.cells_per_s),
             util::TablePrinter::fmt(p.p50_us, 1),
             util::TablePrinter::fmt(p.p99_us, 1),
             std::to_string(p.agg.compactions_completed) + "/" +
                 std::to_string(p.agg.compactions_queued),
             cache_on ? util::TablePrinter::fmt(p.hit_rate, 3) : "-"});
        if (!first) json += ", ";
        first = false;
        json += "{\"writers\": " + std::to_string(writers) +
                ", \"sync_mode\": \"" + mode_name(mode) +
                "\", \"cache\": " + (cache_on ? "true" : "false") +
                ", \"cells_per_s\": " + std::to_string(p.cells_per_s) +
                ", \"apply_p50_us\": " + util::TablePrinter::fmt(p.p50_us, 2) +
                ", \"apply_p99_us\": " + util::TablePrinter::fmt(p.p99_us, 2) +
                ", \"scan_cells_per_s\": " + std::to_string(p.scan_rate) +
                ", \"cache_hit_rate\": " + util::TablePrinter::fmt(p.hit_rate, 4) +
                ", \"cache_evictions\": " + std::to_string(p.agg.cache_evictions) +
                ", \"bg_compactions_completed\": " +
                std::to_string(p.agg.compactions_completed) + "}";
      }
    }
  }
  const double speedup = per_append_8w > 0 ? group_8w / per_append_8w : 0.0;
  json += "], \"group_vs_per_append_8w\": " +
          util::TablePrinter::fmt(speedup, 2) + "}\n";
  table.print("Async write path: WAL sync mode x writers x block cache (" +
              std::to_string(total_cells) + " cells each)");
  std::printf("group vs per_append at 8 writers: %.2fx\n", speedup);
  std::ofstream("BENCH_ingest.json") << json;
  std::printf("wrote BENCH_ingest.json\n\n");
}

// ---- scan sweeps (BENCH_scan.json) --------------------------------------

/// Block scan sweep: full-table scan throughput vs next_block() batch
/// size. Size 1 is the legacy cell-at-a-time path (every cell pays the
/// full virtual-dispatch chain through the stack); larger blocks
/// amortize it via the run-length merge and bulk RFile copies. Returns
/// the JSON object for the "block_sweep" key.
std::string run_scan_block_sweep(std::size_t cells) {
  nosql::Instance db(1);
  nosql::TableConfig cfg;
  cfg.flush_entries = std::max<std::size_t>(2000, cells / 7);  // real fan-in
  db.create_table("t", cfg);
  {
    nosql::BatchWriter writer(db, "t");
    for (std::size_t i = 0; i < cells; ++i) {
      nosql::Mutation m(util::zero_pad(i % 4096, 4));
      m.put("f", util::zero_pad(i / 4096, 6), nosql::encode_double(1.0));
      writer.add_mutation(std::move(m));
    }
    writer.flush();
  }
  db.flush("t");

  util::TablePrinter table({"block", "scan", "speedup"});
  double base_rate = 0.0;
  std::string json = "{\"cells\": " + std::to_string(cells) + ", \"results\": [";
  bool first = true;
  for (const std::size_t block : {1, 64, 1024, 4096}) {
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {  // best-of-3 per point
      nosql::Scanner scanner(db, "t");
      scanner.set_batch_size(block);
      std::size_t seen = 0;
      util::Timer t;
      scanner.for_each(
          [&seen](const nosql::Key&, const nosql::Value&) { ++seen; });
      const double rate = static_cast<double>(seen) / t.seconds();
      if (rate > best) best = rate;
    }
    if (block == 1) base_rate = best;
    const double speedup = base_rate > 0 ? best / base_rate : 1.0;
    table.add_row({std::to_string(block), util::human_rate(best),
                   util::TablePrinter::fmt(speedup, 2) + "x"});
    if (!first) json += ", ";
    first = false;
    json += "{\"block\": " + std::to_string(block) +
            ", \"cells_per_s\": " + std::to_string(best) +
            ", \"speedup_vs_block1\": " + util::TablePrinter::fmt(speedup, 3) +
            "}";
  }
  json += "]}";
  table.print("Scan throughput vs block size (block 1 = cell-at-a-time)");
  return json;
}

/// One table of the RFL3 encoding sweep.
struct EncodingPoint {
  std::size_t file_entries = 0;
  std::size_t file_block_bytes = 0;  ///< encoded cache cost of all blocks
  std::size_t scanned = 0;
  double cold_rate = 0.0;  ///< first scan: every block decodes
  double warm_rate = 0.0;  ///< second scan: cache-resident blocks
  double hit_rate = 0.0;
  double density = 0.0;  ///< cells held per cached byte
};

/// Ingests `entries` (row, qualifier) cells into one flushed table with
/// the given RFL3 knobs and scans it twice through the block cache.
EncodingPoint run_encoding_point(
    const std::vector<std::pair<std::string, std::string>>& entries,
    bool prefix, nosql::RFileCompressor comp) {
  nosql::Instance db(1);
  nosql::TableConfig cfg;
  cfg.flush_entries = entries.size() + 1;  // one RFile: clean density
  cfg.rfile.cache_bytes = 256 * 1024 * 1024;  // hold everything resident
  cfg.rfile.index_stride = 128;
  cfg.rfile.prefix_encode = prefix;
  cfg.rfile.compressor = comp;
  db.create_table("t", cfg);
  {
    nosql::BatchWriter writer(db, "t");
    for (const auto& [row, qual] : entries) {
      nosql::Mutation m(row);
      m.put("f", qual, nosql::encode_double(1.0));
      writer.add_mutation(std::move(m));
    }
    writer.flush();
  }
  db.flush("t");

  auto scan_once = [&db] {
    nosql::Scanner scanner(db, "t");
    scanner.set_batch_size(1024);
    std::size_t seen = 0;
    util::Timer t;
    scanner.for_each(
        [&seen](const nosql::Key&, const nosql::Value&) { ++seen; });
    return std::make_pair(seen, t.seconds());
  };
  EncodingPoint p;
  const auto [cold_seen, cold_s] = scan_once();
  const auto [warm_seen, warm_s] = scan_once();
  p.scanned = cold_seen;
  p.cold_rate = static_cast<double>(cold_seen) / cold_s;
  p.warm_rate = static_cast<double>(warm_seen) / warm_s;
  std::uint64_t hits = 0, misses = 0;
  for (auto& [tablet, sid] : db.tablets_for_range("t", nosql::Range::all())) {
    const auto s = tablet->stats();
    p.file_entries += s.file_entries;
    p.file_block_bytes += s.file_block_bytes;
    // Table-wide cache: every tablet reports the same counters.
    hits = s.cache_hits;
    misses = s.cache_misses;
  }
  p.hit_rate = hits + misses > 0
                   ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                   : 0.0;
  p.density = p.file_block_bytes > 0
                  ? static_cast<double>(p.file_entries) /
                        static_cast<double>(p.file_block_bytes)
                  : 0.0;
  return p;
}

/// Prefix-encoding sweep over two corpus shapes (R-MAT adjacency and
/// the tweet term table) x {plain, prefix, prefix+lz}. The headline
/// number is cells-per-cached-byte: how many more cells the same block
/// cache budget holds once blocks are stored encoded. Returns the JSON
/// object for the "encoding_sweep" key.
std::string run_encoding_sweep(bool smoke) {
  // R-MAT adjacency: row = source vertex, qualifier = destination.
  gen::RmatParams rp;
  rp.scale = smoke ? 8 : 13;
  std::vector<std::pair<std::string, std::string>> rmat_entries;
  for (const auto& [u, v] : gen::rmat_edges(rp)) {
    rmat_entries.emplace_back(
        "v" + util::zero_pad(static_cast<std::uint64_t>(u), 7),
        "v" + util::zero_pad(static_cast<std::uint64_t>(v), 7));
  }
  std::sort(rmat_entries.begin(), rmat_entries.end());
  // Tweet term table: row = tweet id, qualifier = word.
  gen::TweetParams tp;
  tp.num_tweets = smoke ? 300 : 4000;
  std::vector<std::pair<std::string, std::string>> tweet_entries;
  for (const auto& tweet : gen::generate_tweets(tp).tweets) {
    for (const auto& word : tweet.words) {
      tweet_entries.emplace_back(tweet.id, word);
    }
  }

  struct EncodingMode {
    const char* name;
    bool prefix;
    nosql::RFileCompressor comp;
  };
  const EncodingMode modes[] = {
      {"plain", false, nosql::RFileCompressor::kNone},
      {"prefix", true, nosql::RFileCompressor::kNone},
      {"prefix_lz", true, nosql::RFileCompressor::kLz},
  };
  const std::pair<const char*,
                  const std::vector<std::pair<std::string, std::string>>*>
      tables[] = {{"rmat", &rmat_entries}, {"tweets", &tweet_entries}};

  util::TablePrinter table({"table", "encoding", "cells", "block_bytes",
                            "cells_per_byte", "density_x", "cold_scan",
                            "warm_scan", "hit_rate"});
  std::string json = "{\"results\": [";
  bool first = true;
  double rmat_prefix_gain = 0.0, tweets_prefix_gain = 0.0;
  for (const auto& [tname, entries] : tables) {
    double plain_density = 0.0;
    for (const auto& mode : modes) {
      const auto p = run_encoding_point(*entries, mode.prefix, mode.comp);
      if (!mode.prefix) plain_density = p.density;
      const double gain = plain_density > 0 ? p.density / plain_density : 0.0;
      if (std::string(tname) == "rmat" && std::string(mode.name) == "prefix") {
        rmat_prefix_gain = gain;
      }
      if (std::string(tname) == "tweets" &&
          std::string(mode.name) == "prefix") {
        tweets_prefix_gain = gain;
      }
      table.add_row({tname, mode.name, std::to_string(p.file_entries),
                     util::human_bytes(static_cast<double>(p.file_block_bytes)),
                     util::TablePrinter::fmt(p.density, 4),
                     util::TablePrinter::fmt(gain, 2) + "x",
                     util::human_rate(p.cold_rate),
                     util::human_rate(p.warm_rate),
                     util::TablePrinter::fmt(p.hit_rate, 3)});
      if (!first) json += ", ";
      first = false;
      json += std::string("{\"table\": \"") + tname + "\", \"encoding\": \"" +
              mode.name +
              "\", \"cells\": " + std::to_string(p.file_entries) +
              ", \"file_block_bytes\": " + std::to_string(p.file_block_bytes) +
              ", \"cells_per_cached_byte\": " +
              util::TablePrinter::fmt(p.density, 6) +
              ", \"density_vs_plain\": " + util::TablePrinter::fmt(gain, 3) +
              ", \"cold_cells_per_s\": " + std::to_string(p.cold_rate) +
              ", \"warm_cells_per_s\": " + std::to_string(p.warm_rate) +
              ", \"cache_hit_rate\": " + util::TablePrinter::fmt(p.hit_rate, 4) +
              "}";
    }
  }
  json += "], \"rmat_density_prefix_vs_plain\": " +
          util::TablePrinter::fmt(rmat_prefix_gain, 3) +
          ", \"tweets_density_prefix_vs_plain\": " +
          util::TablePrinter::fmt(tweets_prefix_gain, 3) + "}";
  table.print(
      "RFL3 prefix encoding: cells per cached byte and scan rates "
      "(density_x = vs plain)");
  return json;
}

/// Writes the combined BENCH_scan.json (block-size sweep + encoding
/// sweep, one file so CI uploads a single scan artifact).
void write_scan_json(const std::string& block_sweep,
                     const std::string& encoding_sweep) {
  std::ofstream("BENCH_scan.json")
      << "{\"bench\": \"scan\", \"block_sweep\": " << block_sweep
      << ", \"encoding_sweep\": " << encoding_sweep << "}\n";
  std::printf("wrote BENCH_scan.json\n\n");
}

/// Smoke-only: a small TableMult fed through BatchWriters, so one
/// --smoke run touches every instrumented subsystem (WAL commit,
/// flush/compaction, block cache, scan, BatchWriter, TableMult) and the
/// metrics dump carries a non-zero series from each.
void run_smoke_tablemult() {
  nosql::Instance db(2);
  const std::string wal_path = "/tmp/graphulo_bench_smoke_mult.wal";
  std::remove(wal_path.c_str());
  nosql::TableConfig cfg;
  cfg.flush_entries = 64;
  cfg.rfile.cache_bytes = 16 * 1024;
  db.attach_wal(std::make_shared<nosql::WriteAheadLog>(wal_path));
  db.create_table("A", cfg);
  db.create_table("B", cfg);
  {
    nosql::BatchWriter wa(db, "A");
    nosql::BatchWriter wb(db, "B");
    for (int k = 0; k < 24; ++k) {
      nosql::Mutation ma(util::zero_pad(static_cast<std::uint64_t>(k), 4));
      nosql::Mutation mb(util::zero_pad(static_cast<std::uint64_t>(k), 4));
      for (int j = 0; j < 6; ++j) {
        ma.put("f", "a" + std::to_string((k + j) % 8),
               nosql::encode_double(1.0 + j));
        mb.put("f", "b" + std::to_string((k * 3 + j) % 8),
               nosql::encode_double(2.0));
      }
      wa.add_mutation(std::move(ma));
      wb.add_mutation(std::move(mb));
    }
    wa.close();
    wb.close();
  }
  db.flush("A");
  db.flush("B");
  core::TableMultOptions options;
  options.num_workers = 2;
  const auto stats = core::table_mult(db, "A", "B", "C", options);
  std::printf("smoke TableMult: %zu rows joined, %zu partial products\n",
              stats.rows_joined, stats.partial_products);
  // Masked fused-reduce leg: rerun the same multiply gated by C's own
  // cells restricted to one output column, so both the kept and the
  // pruned paths fire and the tablemult.partial_products_pruned.total
  // metric is non-zero in the smoke snapshot.
  core::TableMultOptions masked = options;
  masked.mask_table = "C";
  masked.mask_filter = [](const std::string&, const std::string& qualifier) {
    return qualifier == "b3";
  };
  const auto reduced = core::table_mult_reduce(db, "A", "B", masked);
  std::printf(
      "smoke masked TableMult reduce: total %.1f, %zu kept, %zu pruned\n",
      reduced.total, reduced.stats.partial_products,
      reduced.stats.partial_products_pruned);
  std::remove(wal_path.c_str());
}

// ---- leveled vs flat compaction sweep (BENCH_compaction.json) -----------

/// One sustained-ingest run: overwrite-heavy cells (about four versions
/// per column) pushed through threshold flushes and inline compactions,
/// then the amplification shape plus a cache-warm full scan.
struct CompactionPoint {
  double ingest_rate = 0.0;
  double warm_scan_rate = 0.0;
  double write_amp = 0.0;  ///< cells written into files / cells ingested
  double space_amp = 0.0;  ///< file-resident cells / live columns
  std::size_t file_count = 0;
  std::size_t l0_files = 0;
  std::size_t sorted_levels = 0;      ///< non-empty levels above L0
  std::size_t worst_point_files = 0;  ///< files a point read can consult
  std::size_t flushes = 0;
  std::size_t compactions = 0;
};

CompactionPoint run_compaction_point(bool leveled, std::size_t cells,
                                     std::size_t level_base_bytes) {
  auto& reg = obs::MetricsRegistry::global();
  const auto written_cells = [&reg] {
    return reg.counter("tablet.flush.cells.total").value() +
           reg.counter("tablet.compaction.cells.total").value();
  };
  const std::uint64_t written0 = written_cells();

  nosql::Instance db(1);
  nosql::TableConfig cfg;
  cfg.flush_entries = std::max<std::size_t>(64, cells / 80);  // ~80 flushes
  cfg.compaction.leveled = leveled;
  cfg.compaction.level0_trigger = 4;
  cfg.compaction.level_base_bytes = level_base_bytes;
  cfg.compaction.level_multiplier = 8;
  cfg.rfile.cache_bytes = 64 * 1024 * 1024;  // warm scan stays resident
  db.create_table("t", cfg);

  // Each column is rewritten ~4 times so compactions have versions to
  // discard; key order cycles so every flush covers a keyspace slice.
  const std::size_t live = std::max<std::size_t>(1, cells / 4);
  util::Timer t;
  {
    nosql::BatchWriter writer(db, "t");
    for (std::size_t i = 0; i < cells; ++i) {
      const std::size_t k = i % live;
      nosql::Mutation m(util::zero_pad(k % 1000, 4));
      m.put("f", util::zero_pad(k / 1000, 6),
            nosql::encode_double(static_cast<double>(i)));
      writer.add_mutation(std::move(m));
    }
    writer.flush();
  }
  CompactionPoint p;
  p.ingest_rate = static_cast<double>(cells) / t.seconds();
  p.write_amp =
      static_cast<double>(written_cells() - written0) / static_cast<double>(cells);

  std::size_t file_cells = 0;
  for (auto& [tablet, sid] : db.tablets_for_range("t", nosql::Range::all())) {
    const auto s = tablet->stats();
    p.file_count += s.file_count;
    file_cells += s.file_entries;
    p.flushes += s.minor_compactions;
    p.compactions += s.major_compactions;
    if (!s.level_files.empty()) p.l0_files += s.level_files[0];
    for (std::size_t l = 1; l < s.level_files.size(); ++l) {
      if (s.level_files[l] > 0) ++p.sorted_levels;
    }
  }
  // A point read consults every L0 file but at most one file per sorted
  // level (flat mode: everything lives in L0, so this is file_count).
  p.worst_point_files = p.l0_files + p.sorted_levels;
  p.space_amp = static_cast<double>(file_cells) / static_cast<double>(live);

  for (int rep = 0; rep < 2; ++rep) {  // second pass is cache-warm
    nosql::Scanner scanner(db, "t");
    scanner.set_batch_size(1024);
    std::size_t seen = 0;
    util::Timer st;
    scanner.for_each(
        [&seen](const nosql::Key&, const nosql::Value&) { ++seen; });
    p.warm_scan_rate = static_cast<double>(seen) / st.seconds();
  }
  return p;
}

/// Leveled vs flat under sustained overwrite ingest: cells x L1 byte
/// budgets. Writes BENCH_compaction.json; the headline number is the
/// warm-scan throughput ratio at the largest cell count.
void run_compaction_sweep(bool smoke) {
  const std::vector<std::size_t> cell_counts =
      smoke ? std::vector<std::size_t>{6000}
            : std::vector<std::size_t>{40000, 120000};
  const std::vector<std::size_t> budgets{32 * 1024, 128 * 1024};
  util::TablePrinter table({"layout", "cells", "l1_budget", "ingest",
                            "warm_scan", "write_amp", "space_amp", "files",
                            "l0", "levels", "worst_point"});
  std::string json = "{\"bench\": \"compaction_sweep\", \"results\": [";
  bool first = true;
  double flat_warm = 0.0, leveled_warm = 0.0;
  for (const std::size_t cells : cell_counts) {
    struct Run {
      const char* layout;
      bool leveled;
      std::size_t budget;
    };
    std::vector<Run> runs{{"flat", false, budgets.front()}};
    for (const std::size_t b : budgets) runs.push_back({"leveled", true, b});
    for (const Run& r : runs) {
      const auto p = run_compaction_point(r.leveled, cells, r.budget);
      if (cells == cell_counts.back()) {
        if (!r.leveled) flat_warm = p.warm_scan_rate;
        if (r.leveled) leveled_warm = std::max(leveled_warm, p.warm_scan_rate);
      }
      table.add_row({r.layout, std::to_string(cells),
                     r.leveled ? util::human_bytes(static_cast<double>(r.budget))
                               : "-",
                     util::human_rate(p.ingest_rate),
                     util::human_rate(p.warm_scan_rate),
                     util::TablePrinter::fmt(p.write_amp, 2),
                     util::TablePrinter::fmt(p.space_amp, 2),
                     std::to_string(p.file_count), std::to_string(p.l0_files),
                     std::to_string(p.sorted_levels),
                     std::to_string(p.worst_point_files)});
      if (!first) json += ", ";
      first = false;
      json += std::string("{\"layout\": \"") + r.layout +
              "\", \"cells\": " + std::to_string(cells) +
              ", \"level_base_bytes\": " +
              std::to_string(r.leveled ? r.budget : 0) +
              ", \"ingest_cells_per_s\": " + std::to_string(p.ingest_rate) +
              ", \"warm_scan_cells_per_s\": " +
              std::to_string(p.warm_scan_rate) +
              ", \"write_amp\": " + util::TablePrinter::fmt(p.write_amp, 3) +
              ", \"space_amp\": " + util::TablePrinter::fmt(p.space_amp, 3) +
              ", \"file_count\": " + std::to_string(p.file_count) +
              ", \"l0_files\": " + std::to_string(p.l0_files) +
              ", \"sorted_levels\": " + std::to_string(p.sorted_levels) +
              ", \"worst_point_files\": " +
              std::to_string(p.worst_point_files) +
              ", \"flushes\": " + std::to_string(p.flushes) +
              ", \"compactions\": " + std::to_string(p.compactions) + "}";
    }
  }
  const double ratio = flat_warm > 0 ? leveled_warm / flat_warm : 0.0;
  json += "], \"leveled_vs_flat_warm_scan\": " +
          util::TablePrinter::fmt(ratio, 2) + "}\n";
  table.print(
      "Leveled vs flat compaction under sustained overwrite ingest "
      "(worst_point = L0 files + sorted levels)");
  std::printf("leveled vs flat warm scan: %.2fx\n", ratio);
  std::ofstream("BENCH_compaction.json") << json;
  std::printf("wrote BENCH_compaction.json\n\n");
}

// ---- mixed read/write sweep (BENCH_mixed.json) --------------------------

/// One mixed-workload run: writer threads sustain overwrite ingest while
/// reader threads issue full snapshot scans and one TableMult leg runs
/// through pinned input snapshots — all against a single admission mode.
struct MixedPoint {
  double scan_p50_us = 0.0;  ///< completed-scan latency percentiles
  double scan_p99_us = 0.0;
  std::size_t scans_completed = 0;
  std::size_t scans_shed = 0;     ///< OverloadedError from admission
  std::size_t deadline_hits = 0;  ///< DeadlineExceeded mid-scan
  double writes_per_s = 0.0;
  double mult_seconds = 0.0;
  std::size_t mult_partials = 0;
};

MixedPoint run_mixed_point(const nosql::AdmissionConfig& admission,
                           std::size_t preload, std::size_t writes_per_writer,
                           int writers, int readers) {
  nosql::Instance db(2);
  nosql::TableConfig cfg;
  cfg.flush_entries = std::max<std::size_t>(500, preload / 8);
  cfg.admission = admission;
  db.create_table("t", cfg);
  {
    nosql::BatchWriter writer(db, "t");
    for (std::size_t i = 0; i < preload; ++i) {
      nosql::Mutation m(util::zero_pad(i % 1000, 4));
      m.put("f", util::zero_pad(i / 1000, 6), nosql::encode_double(1.0));
      writer.add_mutation(std::move(m));
    }
    writer.flush();
  }
  // Small inputs for the TableMult leg (default admission: the leg
  // measures MVCC snapshot reads under load, not its own shedding).
  for (const char* name : {"MA", "MB"}) {
    db.create_table(name, nosql::TableConfig{});
    nosql::BatchWriter w(db, name);
    for (int k = 0; k < 48; ++k) {
      nosql::Mutation m(util::zero_pad(static_cast<std::uint64_t>(k), 4));
      for (int j = 0; j < 4; ++j) {
        m.put("f", "c" + std::to_string((k + j) % 12),
              nosql::encode_double(1.0));
      }
      w.add_mutation(std::move(m));
    }
    w.close();
  }

  MixedPoint p;
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> written{0}, completed{0}, shed{0}, deadline{0};
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(readers));

  std::vector<std::thread> threads;
  util::Timer wall;
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      nosql::BatchWriter writer(db, "t");
      for (std::size_t i = 0; i < writes_per_writer; ++i) {
        const std::size_t n =
            static_cast<std::size_t>(w) * writes_per_writer + i;
        nosql::Mutation m(util::zero_pad(n % 1000, 4));
        m.put("f", util::zero_pad(n % 200, 6), nosql::encode_double(2.0));
        writer.add_mutation(std::move(m));
      }
      writer.close();
      written.fetch_add(writes_per_writer);
    });
  }
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      auto& lat = latencies[static_cast<std::size_t>(r)];
      while (!stop.load()) {
        util::Timer t;
        try {
          nosql::Scanner scan(db, "t");
          scan.set_snapshot(db.open_snapshot("t"));
          scan.set_timeout(std::chrono::milliseconds(500));
          std::size_t seen = 0;
          scan.for_each(
              [&seen](const nosql::Key&, const nosql::Value&) { ++seen; });
          lat.push_back(t.seconds() * 1e6);
          completed.fetch_add(1);
        } catch (const nosql::OverloadedError&) {
          shed.fetch_add(1);
        } catch (const nosql::DeadlineExceeded&) {
          deadline.fetch_add(1);
        }
      }
    });
  }
  {  // TableMult leg: snapshot-isolated multiply amid the storm
    util::Timer mt;
    core::TableMultOptions options;
    options.num_workers = 2;
    const auto stats = core::table_mult(db, "MA", "MB", "MC", options);
    p.mult_seconds = mt.seconds();
    p.mult_partials = stats.partial_products;
  }
  for (int w = 0; w < writers; ++w) threads[static_cast<std::size_t>(w)].join();
  const double write_elapsed = wall.seconds();
  stop.store(true);
  for (std::size_t i = static_cast<std::size_t>(writers); i < threads.size();
       ++i) {
    threads[i].join();
  }

  p.writes_per_s = static_cast<double>(written.load()) / write_elapsed;
  p.scans_completed = completed.load();
  p.scans_shed = shed.load();
  p.deadline_hits = deadline.load();
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  if (!all.empty()) {
    const auto summary = util::summarize(all);
    p.scan_p50_us = summary.p50;
    p.scan_p99_us = summary.p99;
  }
  return p;
}

/// Admission sweep under mixed read/write traffic: none vs queue vs shed
/// with more reader threads than scan slots. Writes BENCH_mixed.json;
/// the headline is shed-mode p99 staying bounded (completed scans keep
/// their unloaded latency, excess load becomes typed sheds) instead of
/// every scan's tail collapsing together.
void run_mixed_sweep(bool smoke) {
  const std::size_t preload = smoke ? 4000 : 40000;
  const std::size_t writes_per_writer = smoke ? 2000 : 20000;
  const int writers = smoke ? 2 : 4;
  const int readers = 6;

  struct Mode {
    const char* name;
    nosql::AdmissionConfig admission;
  };
  std::vector<Mode> modes;
  modes.push_back({"none", {}});
  {
    nosql::AdmissionConfig a;
    a.max_inflight_scans = 2;
    a.policy = nosql::AdmissionPolicy::kQueue;
    a.max_queue_wait = std::chrono::milliseconds(200);
    modes.push_back({"queue", a});
    a.policy = nosql::AdmissionPolicy::kShed;
    modes.push_back({"shed", a});
  }

  util::TablePrinter table({"mode", "writes", "scans", "shed", "deadline",
                            "p50_us", "p99_us", "mult_s"});
  std::string json = "{\"bench\": \"mixed_sweep\", \"readers\": " +
                     std::to_string(readers) +
                     ", \"writers\": " + std::to_string(writers) +
                     ", \"results\": [";
  double none_p99 = 0.0, shed_p99 = 0.0;
  bool first = true;
  for (const Mode& m : modes) {
    const auto p = run_mixed_point(m.admission, preload, writes_per_writer,
                                   writers, readers);
    if (std::string(m.name) == "none") none_p99 = p.scan_p99_us;
    if (std::string(m.name) == "shed") shed_p99 = p.scan_p99_us;
    table.add_row({m.name, util::human_rate(p.writes_per_s),
                   std::to_string(p.scans_completed),
                   std::to_string(p.scans_shed),
                   std::to_string(p.deadline_hits),
                   util::TablePrinter::fmt(p.scan_p50_us, 1),
                   util::TablePrinter::fmt(p.scan_p99_us, 1),
                   util::TablePrinter::fmt(p.mult_seconds, 3)});
    if (!first) json += ", ";
    first = false;
    json += std::string("{\"mode\": \"") + m.name +
            "\", \"writes_per_s\": " + std::to_string(p.writes_per_s) +
            ", \"scans_completed\": " + std::to_string(p.scans_completed) +
            ", \"scans_shed\": " + std::to_string(p.scans_shed) +
            ", \"deadline_hits\": " + std::to_string(p.deadline_hits) +
            ", \"scan_p50_us\": " + util::TablePrinter::fmt(p.scan_p50_us, 2) +
            ", \"scan_p99_us\": " + util::TablePrinter::fmt(p.scan_p99_us, 2) +
            ", \"tablemult_seconds\": " +
            util::TablePrinter::fmt(p.mult_seconds, 4) +
            ", \"tablemult_partial_products\": " +
            std::to_string(p.mult_partials) + "}";
  }
  const double ratio = none_p99 > 0 ? shed_p99 / none_p99 : 0.0;
  json += "], \"shed_p99_vs_none\": " + util::TablePrinter::fmt(ratio, 3) +
          "}\n";
  table.print(
      "Mixed read/write traffic: admission mode x 6 snapshot readers "
      "(2 scan slots in queue/shed modes)");
  std::printf("shed-mode scan p99 vs unlimited: %.3fx\n", ratio);
  std::ofstream("BENCH_mixed.json") << json;
  std::printf("wrote BENCH_mixed.json\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  // --legs ingest,scan,compaction,mixed,tablemult restricts the run to
  // the named legs. A skipped leg does NOT touch its BENCH_*.json — the
  // prior run's artifact is preserved instead of being overwritten with
  // an empty section, so CI assertions on the other files keep working.
  std::set<std::string> legs;
  bool legs_given = false;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--legs") {
      legs_given = true;
      std::istringstream in(argv[i + 1]);
      std::string leg;
      while (std::getline(in, leg, ',')) {
        if (!leg.empty()) legs.insert(leg);
      }
    }
  }
  const auto runs_leg = [&](const char* leg) {
    if (!legs_given || legs.count(leg) != 0) return true;
    std::printf("skipping %s leg (prior BENCH artifact preserved)\n\n", leg);
    return false;
  };
  // --smoke always leaves a metrics dump behind (CI reads it);
  // full runs opt in with --metrics-json <path>.
  graphulo::bench::MetricsDump metrics_dump(argc, argv,
                                            smoke ? "BENCH_metrics.json" : "");
  if (smoke) {
    // Tiny sweep for sanitizer CI: every sync mode, background
    // compactions, and a cache small enough to evict.
    if (runs_leg("ingest")) run_ingest_sweep(1600, 16 * 1024);
    // Small-scale scan artifact so sanitizer jobs exercise the packed
    // (RFL3) read path end to end and CI can assert on the JSON.
    if (runs_leg("scan")) {
      write_scan_json(run_scan_block_sweep(8000),
                      run_encoding_sweep(/*smoke=*/true));
    }
    // Small leveled-vs-flat sustained-ingest artifact for CI assertions.
    if (runs_leg("compaction")) run_compaction_sweep(/*smoke=*/true);
    // Admission-mode sweep under mixed read/write traffic (MVCC snapshot
    // readers vs sustained writers); CI asserts on BENCH_mixed.json.
    if (runs_leg("mixed")) run_mixed_sweep(/*smoke=*/true);
    if (runs_leg("tablemult")) run_smoke_tablemult();
    return 0;
  }

  const std::size_t kCells = 200000;

  // Cache sized to hold the working set: a sequential re-scan against a
  // smaller-than-data LRU evicts every block before its re-read (the
  // classic scan-thrash pattern, visible in --smoke's tiny cache).
  if (runs_leg("ingest")) run_ingest_sweep(16000, 8 * 1024 * 1024);

  {
    util::TablePrinter table({"servers", "splits", "ingest", "scan"});
    for (int servers : {1, 2, 4}) {
      for (int splits : {1, servers}) {
        nosql::TableConfig cfg;
        cfg.flush_entries = 50000;
        const auto [ingest, scan] = run_workload(servers, splits, kCells, cfg);
        table.add_row({std::to_string(servers), std::to_string(splits),
                       util::human_rate(ingest), util::human_rate(scan)});
      }
    }
    table.print("Ingest/scan rate vs tablet servers and pre-splits (" +
                std::to_string(kCells) + " cells)");
  }

  {
    util::TablePrinter table({"flush_entries", "fanin", "ingest", "scan",
                              "minor_compactions"});
    for (std::size_t flush : {5000, 20000, 100000}) {
      for (std::size_t fanin : {4, 16}) {
        nosql::TableConfig cfg;
        cfg.flush_entries = flush;
        cfg.compaction_fanin = fanin;
        nosql::Instance db(1);
        db.create_table("t", cfg);
        util::Timer t;
        {
          nosql::BatchWriter writer(db, "t");
          for (std::size_t i = 0; i < kCells; ++i) {
            nosql::Mutation m(util::zero_pad(i % 997, 4));
            m.put("f", util::zero_pad(i / 997, 6), nosql::encode_double(1.0));
            writer.add_mutation(std::move(m));
          }
          writer.flush();
        }
        const double ingest = static_cast<double>(kCells) / t.seconds();
        t.reset();
        nosql::Scanner scanner(db, "t");
        std::size_t seen = 0;
        scanner.for_each(
            [&seen](const nosql::Key&, const nosql::Value&) { ++seen; });
        const double scan = static_cast<double>(seen) / t.seconds();
        std::size_t mincs = 0;
        for (auto& [tablet, sid] :
             db.tablets_for_range("t", nosql::Range::all())) {
          mincs += tablet->stats().minor_compactions;
        }
        table.add_row({std::to_string(flush), std::to_string(fanin),
                       util::human_rate(ingest), util::human_rate(scan),
                       std::to_string(mincs)});
      }
    }
    table.print("LSM tuning: flush threshold and compaction fan-in");
  }

  // Scan artifact: block-size sweep over the legacy path plus the RFL3
  // prefix-encoding sweep (cells-per-cached-byte on R-MAT adjacency and
  // the tweet term table).
  if (runs_leg("scan")) {
    write_scan_json(run_scan_block_sweep(2 * kCells),
                    run_encoding_sweep(/*smoke=*/false));
  }

  // Leveled vs flat amplification under sustained overwrite ingest.
  if (runs_leg("compaction")) run_compaction_sweep(/*smoke=*/false);

  // Admission-mode sweep under mixed read/write traffic.
  if (runs_leg("mixed")) run_mixed_sweep(/*smoke=*/false);

  // WAL overhead: journaled vs unjournaled ingest of the same workload.
  {
    util::TablePrinter table({"wal", "ingest", "overhead"});
    double base_rate = 0.0;
    for (const bool journaled : {false, true}) {
      nosql::Instance db(1);
      const std::string wal_path = "/tmp/graphulo_bench_dbops.wal";
      std::remove(wal_path.c_str());
      if (journaled) {
        db.attach_wal(std::make_shared<nosql::WriteAheadLog>(wal_path));
      }
      db.create_table("t");
      util::Timer t;
      {
        nosql::BatchWriter writer(db, "t");
        for (std::size_t i = 0; i < kCells; ++i) {
          nosql::Mutation m(util::zero_pad(i % 1000, 4));
          m.put("f", util::zero_pad(i / 1000, 6), nosql::encode_double(1.0));
          writer.add_mutation(std::move(m));
        }
        writer.flush();
      }
      db.sync_wal();
      const double rate = static_cast<double>(kCells) / t.seconds();
      if (!journaled) base_rate = rate;
      table.add_row({journaled ? "on" : "off", util::human_rate(rate),
                     journaled && base_rate > 0
                         ? util::TablePrinter::fmt(base_rate / rate, 2) + "x"
                         : "-"});
      std::remove(wal_path.c_str());
    }
    table.print("Write-ahead-log durability cost");
  }
  return 0;
}
