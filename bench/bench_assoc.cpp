// Associative array algebra (Section II): the cost of the string-keyed
// layer relative to raw sparse matrices. Union-add, correlation-
// multiply, element-wise intersection, transpose and sub-referencing on
// growing key spaces, with the D4M explode thrown in. Expected shape:
// the assoc layer pays dictionary alignment (sorted string unions) on
// top of the kernel cost — the price of carrying global row/column
// labels, which is exactly what the paper says distinguishes associative
// arrays from sparse matrices.

#include <cstdio>

#include "assoc/assoc_array.hpp"
#include "assoc/schemas.hpp"
#include "la/la.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

#include "bench_metrics.hpp"

using namespace graphulo;

namespace {

/// Random string-keyed array: keys "u|XXXX" x "w|XXXX".
assoc::AssocArray random_assoc(std::size_t entries, std::size_t key_space,
                               std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<assoc::Entry> out;
  out.reserve(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    out.push_back({"u|" + util::zero_pad(rng.uniform_int(key_space), 5),
                   "w|" + util::zero_pad(rng.uniform_int(key_space), 5),
                   rng.uniform(0.5, 2.0)});
  }
  return assoc::AssocArray::from_entries(std::move(out));
}

}  // namespace

int main(int argc, char** argv) {
  graphulo::bench::MetricsDump metrics_dump(argc, argv);
  util::TablePrinter table({"entries", "keys", "op", "result_nnz", "time_ms"});
  for (std::size_t entries : {5000, 20000, 80000}) {
    const std::size_t key_space = entries / 4;
    const auto a = random_assoc(entries, key_space, 1);
    const auto b = random_assoc(entries, key_space, 2);
    const auto n = std::to_string(entries);
    const auto k = std::to_string(key_space);
    util::Timer t;

    t.reset();
    const auto sum = a.add(b);
    table.add_row({n, k, "add (union)", std::to_string(sum.nnz()),
                   util::TablePrinter::fmt(t.millis(), 1)});

    t.reset();
    const auto prod = a.multiply(b.transposed());
    table.add_row({n, k, "multiply (correlate)", std::to_string(prod.nnz()),
                   util::TablePrinter::fmt(t.millis(), 1)});

    t.reset();
    const auto had = a.ewise_mult(b);
    table.add_row({n, k, "ewise (intersect)", std::to_string(had.nnz()),
                   util::TablePrinter::fmt(t.millis(), 1)});

    t.reset();
    const auto tr = a.transposed();
    table.add_row({n, k, "transpose", std::to_string(tr.nnz()),
                   util::TablePrinter::fmt(t.millis(), 1)});

    t.reset();
    const auto sub = a.select_row_prefix("u|000");
    table.add_row({n, k, "select prefix u|000", std::to_string(sub.nnz()),
                   util::TablePrinter::fmt(t.millis(), 1)});
  }
  table.print("AssocArray algebra (string keys, dictionary alignment)");

  // D4M explode throughput.
  {
    util::TablePrinter d4m_table({"records", "fields", "explode_ms",
                                  "tedge_nnz"});
    util::Xoshiro256 rng(3);
    for (std::size_t records : {1000, 10000}) {
      std::vector<std::pair<std::string, assoc::Record>> data;
      data.reserve(records);
      for (std::size_t r = 0; r < records; ++r) {
        assoc::Record record;
        for (int f = 0; f < 6; ++f) {
          record["field" + std::to_string(f)] =
              "val" + std::to_string(rng.uniform_int(50));
        }
        data.emplace_back("rec|" + util::zero_pad(r, 6), std::move(record));
      }
      util::Timer t;
      const auto d4m = assoc::d4m_explode(data);
      d4m_table.add_row({std::to_string(records), "6",
                         util::TablePrinter::fmt(t.millis(), 1),
                         std::to_string(d4m.tedge.nnz())});
    }
    d4m_table.print("D4M schema explode");
  }
  return 0;
}
