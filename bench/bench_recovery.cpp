// Crash-recovery time vs write history: the experiment behind the
// checkpoint subsystem (DESIGN.md §8). A WAL-only recovery replays the
// ENTIRE write history, so its cost grows with every mutation ever
// applied; a checkpointed recovery loads the live data snapshot and
// replays only the post-checkpoint tail, so its cost tracks live data
// and stays flat as history grows.
//
// The workload makes the distinction visible: N mutations cycle over a
// fixed keyspace of K rows (overwrites), and a compaction before the
// checkpoint collapses the dead versions — live data stays ~K cells no
// matter how large N gets.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "nosql/nosql.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

#include "bench_metrics.hpp"

using namespace graphulo;

namespace {

constexpr std::size_t kKeySpace = 2000;   // distinct rows (live data bound)
constexpr std::size_t kTailMutations = 500;  // post-checkpoint writes

std::string bench_path(const char* name) {
  return std::string("/tmp/graphulo_bench_recovery_") + name;
}

void ingest(nosql::Instance& db, std::size_t lo, std::size_t hi) {
  nosql::BatchWriter writer(db, "t");
  for (std::size_t i = lo; i < hi; ++i) {
    nosql::Mutation m(util::zero_pad(i % kKeySpace, 6));
    m.put("f", "q", nosql::encode_double(static_cast<double>(i)));
    writer.add_mutation(std::move(m));
  }
  writer.close();
  db.sync_wal();
}

struct Sample {
  double wal_only_ms = 0.0;
  std::size_t wal_only_records = 0;
  double checkpointed_ms = 0.0;
  std::size_t checkpointed_records = 0;
  std::size_t live_cells = 0;
  double checkpoint_write_ms = 0.0;
};

Sample run(std::size_t history) {
  const auto wal_path = bench_path("wal");
  const auto ckpt_path = bench_path("ckpt");
  std::remove(wal_path.c_str());
  std::remove(ckpt_path.c_str());
  Sample s;

  // Build the history (plus tail) with a WAL attached, then measure
  // WAL-only recovery of the full log.
  {
    nosql::Instance db(2);
    db.attach_wal(std::make_shared<nosql::WriteAheadLog>(wal_path));
    db.create_table("t");
    ingest(db, 0, history + kTailMutations);
  }
  {
    util::Timer t;
    nosql::Instance rec(2);
    s.wal_only_records = nosql::recover_from_wal(rec, wal_path);
    s.wal_only_ms = t.seconds() * 1e3;
  }

  // Same history, but checkpointed after `history` mutations (with a
  // compaction first so dead versions do not inflate the snapshot),
  // then the same tail. Recovery = checkpoint + tail replay.
  std::remove(wal_path.c_str());
  {
    nosql::Instance db(2);
    db.attach_wal(std::make_shared<nosql::WriteAheadLog>(wal_path));
    db.create_table("t");
    ingest(db, 0, history);
    db.compact("t");
    util::Timer t;
    const auto ck = nosql::write_checkpoint(db, ckpt_path);
    s.checkpoint_write_ms = t.seconds() * 1e3;
    s.live_cells = ck.cells;
    ingest(db, history, history + kTailMutations);
  }
  {
    util::Timer t;
    nosql::Instance rec(2);
    const auto r = nosql::recover_instance(rec, ckpt_path, wal_path);
    s.checkpointed_ms = t.seconds() * 1e3;
    s.checkpointed_records = r.records_replayed;
  }

  std::remove(wal_path.c_str());
  std::remove(ckpt_path.c_str());
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  graphulo::bench::MetricsDump metrics_dump(argc, argv);
  util::TablePrinter table({"history", "live cells", "wal-only ms",
                            "replayed", "ckpt ms", "replayed ",
                            "ckpt-write ms", "speedup"});
  for (const std::size_t history : {10000u, 40000u, 160000u}) {
    const auto s = run(history);
    table.add_row({std::to_string(history), std::to_string(s.live_cells),
                   util::TablePrinter::fmt(s.wal_only_ms, 1),
                   std::to_string(s.wal_only_records),
                   util::TablePrinter::fmt(s.checkpointed_ms, 1),
                   std::to_string(s.checkpointed_records),
                   util::TablePrinter::fmt(s.checkpoint_write_ms, 1),
                   util::TablePrinter::fmt(s.wal_only_ms / s.checkpointed_ms, 1)});
  }
  table.print("Recovery time vs write history (keyspace = " +
              std::to_string(kKeySpace) + " rows, tail = " +
              std::to_string(kTailMutations) + " records)");
  std::puts("\nWAL-only replay grows linearly with history; checkpointed");
  std::puts("recovery is bounded by live data + tail and stays flat.");
  return 0;
}
