// The Graphulo premise (Sections I-A, IV): execute GraphBLAS kernels
// inside the database. Compares server-side TableMult (row-aligned
// merge join + combiner-summed writes, never materializing the result
// client-side) against the client-side round trip (scan A and B out,
// SpGEMM locally, write C back), across matrix sizes and tablet counts;
// sweeps the partitioned pipeline's worker count; ablates the
// structural mask (unmasked multiply vs masked multiply vs fused
// masked reduce, DESIGN.md §13); and measures the in-database graph
// algorithms (BFS / Jaccard / k-truss on tables). Expected shape: both
// multiply paths produce identical tables, the masked paths prune
// partial products before they cost a mutation, and the fused reduce
// returns the same scalar without a result table. Emits
// BENCH_tablemult.json; --smoke shrinks every sweep for CI.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "assoc/table_io.hpp"
#include "core/table_algos.hpp"
#include "core/tablemult.hpp"
#include "gen/rmat.hpp"
#include "la/la.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

#include "bench_metrics.hpp"

using namespace graphulo;

namespace {

la::SpMat<double> make_rmat(int scale) {
  gen::RmatParams p;
  p.scale = scale;
  p.edge_factor = 6;
  return gen::rmat_simple_adjacency(p);
}

void load_adjacency(nosql::Instance& db, const std::string& table,
                    const la::SpMat<double>& a, int tablets) {
  assoc::write_matrix(db, table, a);
  if (tablets > 1) {
    std::vector<std::string> splits;
    for (int s = 1; s < tablets; ++s) {
      splits.push_back(assoc::vertex_key(a.rows() * s / tablets));
    }
    db.add_splits(table, splits);
  }
}

std::string run_server_vs_client(bool smoke) {
  util::TablePrinter table({"n", "nnz(A)", "tablets", "server_ms",
                            "client_ms", "partials", "nnz(C)", "agree"});
  std::string json = "[";
  bool first = true;
  for (int scale : smoke ? std::vector<int>{6, 7} : std::vector<int>{7, 8, 9}) {
    const auto a = make_rmat(scale);
    for (int tablets : {1, 4}) {
      nosql::Instance db(tablets);
      load_adjacency(db, "A", a, tablets);
      util::Timer t;
      const auto server =
          core::table_mult(db, "A", "A", "Cs", {.compact_result = true});
      const double server_ms = t.millis();
      t.reset();
      core::client_side_mult(db, "A", "A", "Cc", a.rows(), a.cols(), a.cols());
      const double client_ms = t.millis();
      const auto cs = assoc::read_matrix(db, "Cs", a.cols(), a.cols());
      const auto cc = assoc::read_matrix(db, "Cc", a.cols(), a.cols());
      const bool agree = cs == cc;
      table.add_row({std::to_string(a.rows()), std::to_string(a.nnz()),
                     std::to_string(tablets),
                     util::TablePrinter::fmt(server_ms, 1),
                     util::TablePrinter::fmt(client_ms, 1),
                     std::to_string(server.partial_products),
                     std::to_string(cs.nnz()), agree ? "yes" : "NO"});
      if (!first) json += ", ";
      first = false;
      json += "{\"n\": " + std::to_string(a.rows()) +
              ", \"nnz\": " + std::to_string(a.nnz()) +
              ", \"tablets\": " + std::to_string(tablets) +
              ", \"server_ms\": " + util::TablePrinter::fmt(server_ms, 3) +
              ", \"client_ms\": " + util::TablePrinter::fmt(client_ms, 3) +
              ", \"partials\": " + std::to_string(server.partial_products) +
              ", \"agree\": " + (agree ? "true" : "false") + "}";
    }
  }
  json += "]";
  table.print("TableMult: server-side vs client-side C = A'A");
  return json;
}

// Worker scaling of the partitioned pipeline: same multiply, same
// input, num_workers swept. Throughput is partial products per second
// — the number the Graphulo follow-up papers benchmark. Single-worker
// runs take the serial path (one all-rows partition, no pool), so the
// speedup column is measured against the seed-equivalent baseline.
std::string run_worker_sweep(bool smoke) {
  util::TablePrinter table({"workers", "partitions", "rows_joined",
                            "partials", "ms", "partials/s", "speedup",
                            "agree"});
  const auto a = make_rmat(smoke ? 7 : 9);
  constexpr int kTablets = 4;
  nosql::Instance db(kTablets);
  load_adjacency(db, "A", a, kTablets);
  double serial_seconds = 0;
  la::SpMat<double> serial_result;
  std::string json = "[";
  bool first = true;
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    const std::string result = "Cw" + std::to_string(workers);
    const auto stats = core::table_mult(
        db, "A", "A", result, {.compact_result = true, .num_workers = workers});
    const auto c = assoc::read_matrix(db, result, a.cols(), a.cols());
    if (workers == 1) {
      serial_seconds = stats.seconds;
      serial_result = c;
    }
    const double throughput =
        stats.seconds > 0
            ? static_cast<double>(stats.partial_products) / stats.seconds
            : 0.0;
    const bool agree = c == serial_result;
    table.add_row({std::to_string(workers),
                   std::to_string(stats.partitions.size()),
                   std::to_string(stats.rows_joined),
                   std::to_string(stats.partial_products),
                   util::TablePrinter::fmt(stats.seconds * 1e3, 1),
                   util::TablePrinter::fmt(throughput / 1e6, 2) + "M",
                   util::TablePrinter::fmt(serial_seconds / stats.seconds, 2),
                   agree ? "yes" : "NO"});
    if (!first) json += ", ";
    first = false;
    json += "{\"workers\": " + std::to_string(workers) +
            ", \"partitions\": " + std::to_string(stats.partitions.size()) +
            ", \"partials\": " + std::to_string(stats.partial_products) +
            ", \"ms\": " + util::TablePrinter::fmt(stats.seconds * 1e3, 3) +
            ", \"partials_per_s\": " + std::to_string(throughput) +
            ", \"agree\": " + (agree ? "true" : "false") + "}";
  }
  json += "]";
  table.print("TableMult worker scaling (4 tablets)");

  // Per-partition breakdown of one 4-worker run: where each worker's
  // time went, and how balanced the tablet-derived partitions are.
  util::TablePrinter parts({"partition", "rows_joined", "partials", "seeks",
                            "scan_ms", "emit_ms", "flush_ms", "total_ms"});
  const auto stats =
      core::table_mult(db, "A", "A", "Cparts", {.num_workers = 4});
  for (std::size_t i = 0; i < stats.partitions.size(); ++i) {
    const auto& part = stats.partitions[i];
    const std::string lo = part.start_row.empty() ? "-inf" : part.start_row;
    const std::string hi = part.end_row.empty() ? "+inf" : part.end_row;
    parts.add_row({"[" + lo + ", " + hi + ")",
                   std::to_string(part.rows_joined),
                   std::to_string(part.partial_products),
                   std::to_string(part.seeks),
                   util::TablePrinter::fmt(part.scan_seconds * 1e3, 1),
                   util::TablePrinter::fmt(part.emit_seconds * 1e3, 1),
                   util::TablePrinter::fmt(part.flush_seconds * 1e3, 1),
                   util::TablePrinter::fmt(part.seconds * 1e3, 1)});
  }
  parts.print("TableMult per-partition counters (4 workers)");
  return json;
}

// Structural-mask ablation (DESIGN.md §13): the same C = A'A with the
// adjacency as its own mask. Unmasked writes every partial product;
// masked drops the ones landing outside A's pattern before the
// BatchWriter; the fused reduce additionally never creates C. The
// oracle is the unmasked table intersected with A's pattern client-side
// (hadamard with the 0/1 adjacency).
std::string run_masked_ablation(bool smoke) {
  util::TablePrinter table({"mode", "partials", "pruned", "nnz(C)", "ms",
                            "agree"});
  const auto a = make_rmat(smoke ? 7 : 9);
  constexpr int kTablets = 4;
  nosql::Instance db(kTablets);
  load_adjacency(db, "A", a, kTablets);

  util::Timer t;
  const auto unmasked =
      core::table_mult(db, "A", "A", "Cu", {.compact_result = true});
  const double unmasked_ms = t.millis();
  const auto cu = assoc::read_matrix(db, "Cu", a.cols(), a.cols());

  core::TableMultOptions mopts;
  mopts.compact_result = true;
  mopts.mask_table = "A";
  t.reset();
  const auto masked = core::table_mult(db, "A", "A", "Cm", mopts);
  const double masked_ms = t.millis();
  const auto cm = assoc::read_matrix(db, "Cm", a.cols(), a.cols());
  const auto oracle = la::hadamard(cu, a);  // A is 0/1: pure pattern mask
  const bool masked_agree = cm == oracle;

  t.reset();
  const auto reduced = core::table_mult_reduce(db, "A", "A", mopts);
  const double reduce_ms = t.millis();
  const double oracle_sum =
      la::reduce_all(oracle, [](double x, double y) { return x + y; });
  const bool reduce_agree = reduced.total == oracle_sum;

  table.add_row({"unmasked", std::to_string(unmasked.partial_products),
                 std::to_string(unmasked.partial_products_pruned),
                 std::to_string(cu.nnz()),
                 util::TablePrinter::fmt(unmasked_ms, 1), "yes"});
  table.add_row({"masked C<A>", std::to_string(masked.partial_products),
                 std::to_string(masked.partial_products_pruned),
                 std::to_string(cm.nnz()),
                 util::TablePrinter::fmt(masked_ms, 1),
                 masked_agree ? "yes" : "NO"});
  table.add_row({"fused reduce", std::to_string(reduced.stats.partial_products),
                 std::to_string(reduced.stats.partial_products_pruned), "0",
                 util::TablePrinter::fmt(reduce_ms, 1),
                 reduce_agree ? "yes" : "NO"});
  table.print("Masked TableMult ablation: C = A'A with mask A");

  std::string json = "[";
  json += "{\"mode\": \"unmasked\", \"partials\": " +
          std::to_string(unmasked.partial_products) +
          ", \"pruned\": " + std::to_string(unmasked.partial_products_pruned) +
          ", \"ms\": " + util::TablePrinter::fmt(unmasked_ms, 3) +
          ", \"agree\": true}";
  json += ", {\"mode\": \"masked\", \"partials\": " +
          std::to_string(masked.partial_products) +
          ", \"pruned\": " + std::to_string(masked.partial_products_pruned) +
          ", \"ms\": " + util::TablePrinter::fmt(masked_ms, 3) +
          ", \"agree\": " + (masked_agree ? "true" : "false") + "}";
  json += ", {\"mode\": \"fused_reduce\", \"partials\": " +
          std::to_string(reduced.stats.partial_products) +
          ", \"pruned\": " +
          std::to_string(reduced.stats.partial_products_pruned) +
          ", \"ms\": " + util::TablePrinter::fmt(reduce_ms, 3) +
          ", \"agree\": " + (reduce_agree ? "true" : "false") + "}";
  json += "]";
  return json;
}

// In-database graph algorithms (the Graphulo library trio).
void run_graph_algos(bool smoke) {
  util::TablePrinter table({"algorithm", "n", "result", "time_ms"});
  gen::RmatParams p;
  p.scale = smoke ? 6 : 8;
  p.edge_factor = 8;
  const auto a = gen::rmat_simple_adjacency(p);
  nosql::Instance db(2);
  assoc::write_matrix(db, "G", a);

  util::Timer t;
  const auto levels = core::adj_bfs(db, "G", {assoc::vertex_key(0)}, 3);
  table.add_row({"AdjBFS (3 hops)", std::to_string(a.rows()),
                 std::to_string(levels.size()) + " reached",
                 util::TablePrinter::fmt(t.millis(), 1)});

  t.reset();
  const auto pairs = core::table_jaccard(db, "G", "Gjac");
  table.add_row({"Jaccard", std::to_string(a.rows()),
                 std::to_string(pairs) + " pairs",
                 util::TablePrinter::fmt(t.millis(), 1)});

  t.reset();
  const auto truss_cells = core::table_ktruss(db, "G", 4, "Gtruss");
  table.add_row({"kTruss (k=4)", std::to_string(a.rows()),
                 std::to_string(truss_cells / 2) + " edges",
                 util::TablePrinter::fmt(t.millis(), 1)});

  t.reset();
  const auto pr = core::table_pagerank(db, "G", 0.15, 15);
  double top = 0;
  for (const auto& [key, s] : pr) top = std::max(top, s);
  table.add_row({"PageRank (15 sweeps)", std::to_string(a.rows()),
                 "top score " + util::TablePrinter::fmt(top, 4),
                 util::TablePrinter::fmt(t.millis(), 1)});
  table.print("Graph algorithms executed inside the database");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  graphulo::bench::MetricsDump metrics_dump(argc, argv);
  const auto server_vs_client = run_server_vs_client(smoke);
  const auto worker_sweep = run_worker_sweep(smoke);
  const auto masked = run_masked_ablation(smoke);
  run_graph_algos(smoke);
  std::ofstream("BENCH_tablemult.json")
      << "{\"bench\": \"tablemult\", \"smoke\": " << (smoke ? "true" : "false")
      << ", \"server_vs_client\": " << server_vs_client
      << ", \"worker_sweep\": " << worker_sweep
      << ", \"masked_vs_unmasked\": " << masked << "}\n";
  std::printf("wrote BENCH_tablemult.json\n");
  return 0;
}
