// The Graphulo premise (Sections I-A, IV): execute GraphBLAS kernels
// inside the database. Compares server-side TableMult (row-aligned
// merge join + combiner-summed writes, never materializing the result
// client-side) against the client-side round trip (scan A and B out,
// SpGEMM locally, write C back), across matrix sizes and tablet counts;
// also measures the in-database graph algorithms (BFS / Jaccard /
// k-truss on tables). Expected shape: both paths produce identical
// tables; the server-side path scales with tablets and skips the
// client-side result transfer.

#include <cstdio>

#include "assoc/table_io.hpp"
#include "core/table_algos.hpp"
#include "core/tablemult.hpp"
#include "gen/rmat.hpp"
#include "la/la.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

using namespace graphulo;

int main() {
  {
    util::TablePrinter table({"n", "nnz(A)", "tablets", "server_ms",
                              "client_ms", "partials", "nnz(C)", "agree"});
    for (int scale : {7, 8, 9}) {
      gen::RmatParams p;
      p.scale = scale;
      p.edge_factor = 6;
      const auto a = gen::rmat_simple_adjacency(p);
      for (int tablets : {1, 4}) {
        nosql::Instance db(tablets);
        assoc::write_matrix(db, "A", a);
        if (tablets > 1) {
          std::vector<std::string> splits;
          for (int s = 1; s < tablets; ++s) {
            splits.push_back(assoc::vertex_key(a.rows() * s / tablets));
          }
          db.add_splits("A", splits);
        }
        util::Timer t;
        const auto server =
            core::table_mult(db, "A", "A", "Cs", {.compact_result = true});
        const double server_ms = t.millis();
        t.reset();
        core::client_side_mult(db, "A", "A", "Cc", a.rows(), a.cols(),
                               a.cols());
        const double client_ms = t.millis();
        const auto cs = assoc::read_matrix(db, "Cs", a.cols(), a.cols());
        const auto cc = assoc::read_matrix(db, "Cc", a.cols(), a.cols());
        table.add_row({std::to_string(a.rows()), std::to_string(a.nnz()),
                       std::to_string(tablets),
                       util::TablePrinter::fmt(server_ms, 1),
                       util::TablePrinter::fmt(client_ms, 1),
                       std::to_string(server.partial_products),
                       std::to_string(cs.nnz()), cs == cc ? "yes" : "NO"});
      }
    }
    table.print("TableMult: server-side vs client-side C = A'A");
  }

  // In-database graph algorithms (the Graphulo library trio).
  {
    util::TablePrinter table({"algorithm", "n", "result", "time_ms"});
    gen::RmatParams p;
    p.scale = 8;
    p.edge_factor = 8;
    const auto a = gen::rmat_simple_adjacency(p);
    nosql::Instance db(2);
    assoc::write_matrix(db, "G", a);

    util::Timer t;
    const auto levels = core::adj_bfs(db, "G", {assoc::vertex_key(0)}, 3);
    table.add_row({"AdjBFS (3 hops)", std::to_string(a.rows()),
                   std::to_string(levels.size()) + " reached",
                   util::TablePrinter::fmt(t.millis(), 1)});

    t.reset();
    const auto pairs = core::table_jaccard(db, "G", "Gjac");
    table.add_row({"Jaccard", std::to_string(a.rows()),
                   std::to_string(pairs) + " pairs",
                   util::TablePrinter::fmt(t.millis(), 1)});

    t.reset();
    const auto truss_cells = core::table_ktruss(db, "G", 4, "Gtruss");
    table.add_row({"kTruss (k=4)", std::to_string(a.rows()),
                   std::to_string(truss_cells / 2) + " edges",
                   util::TablePrinter::fmt(t.millis(), 1)});

    t.reset();
    const auto pr = core::table_pagerank(db, "G", 0.15, 15);
    double top = 0;
    for (const auto& [key, s] : pr) top = std::max(top, s);
    table.add_row({"PageRank (15 sweeps)", std::to_string(a.rows()),
                   "top score " + util::TablePrinter::fmt(top, 4),
                   util::TablePrinter::fmt(t.millis(), 1)});
    table.print("Graph algorithms executed inside the database");
  }
  return 0;
}
