// The Graphulo premise (Sections I-A, IV): execute GraphBLAS kernels
// inside the database. Compares server-side TableMult (row-aligned
// merge join + combiner-summed writes, never materializing the result
// client-side) against the client-side round trip (scan A and B out,
// SpGEMM locally, write C back), across matrix sizes and tablet counts;
// also measures the in-database graph algorithms (BFS / Jaccard /
// k-truss on tables). Expected shape: both paths produce identical
// tables; the server-side path scales with tablets and skips the
// client-side result transfer.

#include <cstdio>

#include "assoc/table_io.hpp"
#include "core/table_algos.hpp"
#include "core/tablemult.hpp"
#include "gen/rmat.hpp"
#include "la/la.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

#include "bench_metrics.hpp"

using namespace graphulo;

int main(int argc, char** argv) {
  graphulo::bench::MetricsDump metrics_dump(argc, argv);
  {
    util::TablePrinter table({"n", "nnz(A)", "tablets", "server_ms",
                              "client_ms", "partials", "nnz(C)", "agree"});
    for (int scale : {7, 8, 9}) {
      gen::RmatParams p;
      p.scale = scale;
      p.edge_factor = 6;
      const auto a = gen::rmat_simple_adjacency(p);
      for (int tablets : {1, 4}) {
        nosql::Instance db(tablets);
        assoc::write_matrix(db, "A", a);
        if (tablets > 1) {
          std::vector<std::string> splits;
          for (int s = 1; s < tablets; ++s) {
            splits.push_back(assoc::vertex_key(a.rows() * s / tablets));
          }
          db.add_splits("A", splits);
        }
        util::Timer t;
        const auto server =
            core::table_mult(db, "A", "A", "Cs", {.compact_result = true});
        const double server_ms = t.millis();
        t.reset();
        core::client_side_mult(db, "A", "A", "Cc", a.rows(), a.cols(),
                               a.cols());
        const double client_ms = t.millis();
        const auto cs = assoc::read_matrix(db, "Cs", a.cols(), a.cols());
        const auto cc = assoc::read_matrix(db, "Cc", a.cols(), a.cols());
        table.add_row({std::to_string(a.rows()), std::to_string(a.nnz()),
                       std::to_string(tablets),
                       util::TablePrinter::fmt(server_ms, 1),
                       util::TablePrinter::fmt(client_ms, 1),
                       std::to_string(server.partial_products),
                       std::to_string(cs.nnz()), cs == cc ? "yes" : "NO"});
      }
    }
    table.print("TableMult: server-side vs client-side C = A'A");
  }

  // Worker scaling of the partitioned pipeline: same multiply, same
  // input, num_workers swept. Throughput is partial products per second
  // — the number the Graphulo follow-up papers benchmark. Single-worker
  // runs take the serial path (one all-rows partition, no pool), so the
  // speedup column is measured against the seed-equivalent baseline.
  {
    util::TablePrinter table({"workers", "partitions", "rows_joined",
                              "partials", "ms", "partials/s", "speedup",
                              "agree"});
    gen::RmatParams p;
    p.scale = 9;
    p.edge_factor = 6;
    const auto a = gen::rmat_simple_adjacency(p);
    constexpr int kTablets = 4;
    nosql::Instance db(kTablets);
    assoc::write_matrix(db, "A", a);
    std::vector<std::string> splits;
    for (int s = 1; s < kTablets; ++s) {
      splits.push_back(assoc::vertex_key(a.rows() * s / kTablets));
    }
    db.add_splits("A", splits);
    double serial_seconds = 0;
    la::SpMat<double> serial_result;
    for (std::size_t workers : {1u, 2u, 4u, 8u}) {
      const std::string result = "Cw" + std::to_string(workers);
      const auto stats = core::table_mult(
          db, "A", "A", result,
          {.compact_result = true, .num_workers = workers});
      const auto c = assoc::read_matrix(db, result, a.cols(), a.cols());
      if (workers == 1) {
        serial_seconds = stats.seconds;
        serial_result = c;
      }
      const double throughput =
          stats.seconds > 0
              ? static_cast<double>(stats.partial_products) / stats.seconds
              : 0.0;
      table.add_row({std::to_string(workers),
                     std::to_string(stats.partitions.size()),
                     std::to_string(stats.rows_joined),
                     std::to_string(stats.partial_products),
                     util::TablePrinter::fmt(stats.seconds * 1e3, 1),
                     util::TablePrinter::fmt(throughput / 1e6, 2) + "M",
                     util::TablePrinter::fmt(serial_seconds / stats.seconds, 2),
                     c == serial_result ? "yes" : "NO"});
    }
    table.print("TableMult worker scaling (RMAT scale 9, 4 tablets)");

    // Per-partition breakdown of one 4-worker run: where each worker's
    // time went, and how balanced the tablet-derived partitions are.
    util::TablePrinter parts({"partition", "rows_joined", "partials",
                              "seeks", "scan_ms", "emit_ms", "flush_ms",
                              "total_ms"});
    const auto stats = core::table_mult(db, "A", "A", "Cparts",
                                        {.num_workers = 4});
    for (std::size_t i = 0; i < stats.partitions.size(); ++i) {
      const auto& part = stats.partitions[i];
      const std::string lo = part.start_row.empty() ? "-inf" : part.start_row;
      const std::string hi = part.end_row.empty() ? "+inf" : part.end_row;
      parts.add_row({"[" + lo + ", " + hi + ")",
                     std::to_string(part.rows_joined),
                     std::to_string(part.partial_products),
                     std::to_string(part.seeks),
                     util::TablePrinter::fmt(part.scan_seconds * 1e3, 1),
                     util::TablePrinter::fmt(part.emit_seconds * 1e3, 1),
                     util::TablePrinter::fmt(part.flush_seconds * 1e3, 1),
                     util::TablePrinter::fmt(part.seconds * 1e3, 1)});
    }
    parts.print("TableMult per-partition counters (4 workers)");
  }

  // In-database graph algorithms (the Graphulo library trio).
  {
    util::TablePrinter table({"algorithm", "n", "result", "time_ms"});
    gen::RmatParams p;
    p.scale = 8;
    p.edge_factor = 8;
    const auto a = gen::rmat_simple_adjacency(p);
    nosql::Instance db(2);
    assoc::write_matrix(db, "G", a);

    util::Timer t;
    const auto levels = core::adj_bfs(db, "G", {assoc::vertex_key(0)}, 3);
    table.add_row({"AdjBFS (3 hops)", std::to_string(a.rows()),
                   std::to_string(levels.size()) + " reached",
                   util::TablePrinter::fmt(t.millis(), 1)});

    t.reset();
    const auto pairs = core::table_jaccard(db, "G", "Gjac");
    table.add_row({"Jaccard", std::to_string(a.rows()),
                   std::to_string(pairs) + " pairs",
                   util::TablePrinter::fmt(t.millis(), 1)});

    t.reset();
    const auto truss_cells = core::table_ktruss(db, "G", 4, "Gtruss");
    table.add_row({"kTruss (k=4)", std::to_string(a.rows()),
                   std::to_string(truss_cells / 2) + " edges",
                   util::TablePrinter::fmt(t.millis(), 1)});

    t.reset();
    const auto pr = core::table_pagerank(db, "G", 0.15, 15);
    double top = 0;
    for (const auto& [key, s] : pr) top = std::max(top, s);
    table.add_row({"PageRank (15 sweeps)", std::to_string(a.rows()),
                   "top score " + util::TablePrinter::fmt(top, 4),
                   util::TablePrinter::fmt(t.millis(), 1)});
    table.print("Graph algorithms executed inside the database");
  }
  return 0;
}
