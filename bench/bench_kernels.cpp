// GraphBLAS kernel microbenchmarks (google-benchmark): SpGEMM (dense vs
// hash SPA ablation, semiring variants), SpMV / SpMSpV, SpEWiseX,
// Reduce, Apply, SpRef, transpose — over R-MAT and Erdos-Renyi inputs.

#include <benchmark/benchmark.h>

#include "gen/erdos.hpp"
#include "gen/rmat.hpp"
#include "la/la.hpp"
#include "util/rng.hpp"

using namespace graphulo;
using la::SpMat;

namespace {

SpMat<double> rmat(int scale, double edge_factor = 8) {
  gen::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  return gen::rmat_simple_adjacency(p);
}

void BM_SpGEMM_DenseSpa(benchmark::State& state) {
  const auto a = rmat(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto c = la::spgemm<la::PlusTimes<double>>(a, a, la::SpaKind::kDense);
    benchmark::DoNotOptimize(c.nnz());
  }
  state.counters["nnz"] = static_cast<double>(a.nnz());
}
BENCHMARK(BM_SpGEMM_DenseSpa)->Arg(8)->Arg(10)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_SpGEMM_HashSpa(benchmark::State& state) {
  const auto a = rmat(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto c = la::spgemm<la::PlusTimes<double>>(a, a, la::SpaKind::kHash);
    benchmark::DoNotOptimize(c.nnz());
  }
}
BENCHMARK(BM_SpGEMM_HashSpa)->Arg(8)->Arg(10)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_SpGEMM_Tropical(benchmark::State& state) {
  const auto a = rmat(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto c = la::spgemm<la::MinPlus<double>>(a, a);
    benchmark::DoNotOptimize(c.nnz());
  }
}
BENCHMARK(BM_SpGEMM_Tropical)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_SpGEMM_PlusAnd(benchmark::State& state) {
  // The Section IV (+, AND) overlap-count pairing used by k-truss.
  const auto a = rmat(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto c = la::spgemm<la::PlusAnd<double>>(a, a);
    benchmark::DoNotOptimize(c.nnz());
  }
}
BENCHMARK(BM_SpGEMM_PlusAnd)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_SpGEMM_Masked(benchmark::State& state) {
  // C<A> = A*A — the edge-support pattern; compare against the
  // unmasked SpGEMM arms above to see what the mask saves.
  const auto a = rmat(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto c = la::spgemm_masked<la::PlusTimes<double>>(a, a, a);
    benchmark::DoNotOptimize(c.nnz());
  }
}
BENCHMARK(BM_SpGEMM_Masked)->Arg(8)->Arg(10)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_SpMV(benchmark::State& state) {
  const auto a = rmat(static_cast<int>(state.range(0)));
  std::vector<double> x(static_cast<std::size_t>(a.cols()), 1.0);
  for (auto _ : state) {
    auto y = la::spmv<la::PlusTimes<double>>(a, x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SpMV)->Arg(10)->Arg(12)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_SpMSpV_Frontier(benchmark::State& state) {
  // Sparse frontier of ~1% of vertices: the BFS inner step.
  const auto a = rmat(static_cast<int>(state.range(0)));
  la::SpVec<double> frontier(a.rows());
  for (la::Index v = 0; v < a.rows(); v += 100) frontier.push_back(v, 1.0);
  for (auto _ : state) {
    auto y = la::spmspv<la::PlusTimes<double>>(frontier, a);
    benchmark::DoNotOptimize(y.nnz());
  }
}
BENCHMARK(BM_SpMSpV_Frontier)->Arg(10)->Arg(12)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_EWiseMult(benchmark::State& state) {
  const auto a = rmat(static_cast<int>(state.range(0)), 8);
  const auto b = rmat(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    auto c = la::hadamard(a, b);
    benchmark::DoNotOptimize(c.nnz());
  }
}
BENCHMARK(BM_EWiseMult)->Arg(10)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_EWiseAdd(benchmark::State& state) {
  const auto a = rmat(static_cast<int>(state.range(0)), 8);
  const auto b = rmat(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    auto c = la::add(a, b);
    benchmark::DoNotOptimize(c.nnz());
  }
}
BENCHMARK(BM_EWiseAdd)->Arg(10)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_Reduce(benchmark::State& state) {
  const auto a = rmat(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto sums = la::row_sums(a);
    benchmark::DoNotOptimize(sums.data());
  }
}
BENCHMARK(BM_Reduce)->Arg(10)->Arg(12)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_Apply(benchmark::State& state) {
  const auto a = rmat(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto c = la::apply(a, [](double v) { return v * 2.0; });
    benchmark::DoNotOptimize(c.nnz());
  }
}
BENCHMARK(BM_Apply)->Arg(10)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_SpRef_RandomRows(benchmark::State& state) {
  const auto a = rmat(static_cast<int>(state.range(0)));
  util::Xoshiro256 rng(5);
  std::vector<la::Index> rows;
  for (la::Index i = 0; i < a.rows() / 2; ++i) {
    rows.push_back(static_cast<la::Index>(
        rng.uniform_int(static_cast<std::uint64_t>(a.rows()))));
  }
  for (auto _ : state) {
    auto c = la::spref_rows(a, rows);
    benchmark::DoNotOptimize(c.nnz());
  }
}
BENCHMARK(BM_SpRef_RandomRows)->Arg(10)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_Transpose(benchmark::State& state) {
  const auto a = rmat(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto t = la::transpose(a);
    benchmark::DoNotOptimize(t.nnz());
  }
}
BENCHMARK(BM_Transpose)->Arg(10)->Arg(12)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_Triu(benchmark::State& state) {
  const auto a = rmat(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto u = la::triu(a);
    benchmark::DoNotOptimize(u.nnz());
  }
}
BENCHMARK(BM_Triu)->Arg(10)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace
