// Exploration/traversal and shortest-path classes of Table I as a
// performance study: BFS (SpMSpV form vs classical queue), single-source
// shortest paths (tropical-semiring Bellman-Ford vs Dijkstra), and
// connected components (min-label propagation vs union-find), across
// graph scales. Expected shape: classical forms win on a single core
// (no memory traffic to hide); the LA forms match them exactly and are
// the ones that map onto database scans.

#include <cstdio>
#include <limits>

#include "algo/components.hpp"
#include "algo/sssp.hpp"
#include "algo/traversal.hpp"
#include "gen/rmat.hpp"
#include "la/la.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

#include "bench_metrics.hpp"

using namespace graphulo;

int main(int argc, char** argv) {
  graphulo::bench::MetricsDump metrics_dump(argc, argv);
  util::TablePrinter table({"n", "edges", "algorithm", "la_ms", "classic_ms",
                            "agree"});
  for (int scale : {10, 12, 14}) {
    gen::RmatParams p;
    p.scale = scale;
    p.edge_factor = 8;
    const auto a = gen::rmat_simple_adjacency(p);
    const auto n = std::to_string(a.rows());
    const auto m = std::to_string(a.nnz() / 2);
    util::Timer t;

    // BFS.
    t.reset();
    const auto bfs_la = algo::bfs_linalg(a, 0);
    const double bfs_la_ms = t.millis();
    t.reset();
    const auto bfs_cl = algo::bfs_classic(a, 0);
    const double bfs_cl_ms = t.millis();
    table.add_row({n, m, "BFS (SpMSpV vs queue)",
                   util::TablePrinter::fmt(bfs_la_ms, 2),
                   util::TablePrinter::fmt(bfs_cl_ms, 2),
                   bfs_la.level == bfs_cl.level ? "yes" : "NO"});

    // SSSP with random positive weights.
    util::Xoshiro256 rng(scale);
    std::vector<la::Triple<double>> wt;
    for (const auto& e : a.to_triples()) {
      wt.push_back({e.row, e.col, 1.0 + static_cast<double>(rng.uniform_int(9))});
    }
    const auto w = la::SpMat<double>::from_triples(a.rows(), a.cols(), wt);
    t.reset();
    const auto bf = algo::bellman_ford(w, 0);
    const double bf_ms = t.millis();
    t.reset();
    const auto dj = algo::dijkstra(w, 0);
    const double dj_ms = t.millis();
    bool sssp_agree = true;
    for (std::size_t v = 0; v < bf.size(); ++v) {
      if (bf[v] != dj[v]) sssp_agree = false;
    }
    table.add_row({n, m, "SSSP (Bellman-Ford vs Dijkstra)",
                   util::TablePrinter::fmt(bf_ms, 2),
                   util::TablePrinter::fmt(dj_ms, 2),
                   sssp_agree ? "yes" : "NO"});

    // Connected components.
    t.reset();
    const auto cc_la = algo::connected_components_linalg(a);
    const double cc_la_ms = t.millis();
    t.reset();
    const auto cc_uf = algo::connected_components_baseline(a);
    const double cc_uf_ms = t.millis();
    table.add_row({n, m, "components (label-prop vs union-find)",
                   util::TablePrinter::fmt(cc_la_ms, 2),
                   util::TablePrinter::fmt(cc_uf_ms, 2),
                   cc_la == cc_uf ? "yes" : "NO"});
  }
  table.print("Traversal & shortest-path classes: LA vs classical");
  return 0;
}
