// Table I reproduction: one representative algorithm per class of the
// paper's taxonomy, run on a reference R-MAT graph, reporting the
// GraphBLAS kernels each formulation uses, a result digest, and the
// runtime. This is the paper's coverage claim made executable: every
// class is expressible with the kernel set.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <numeric>
#include <string>

#include "algo/algo.hpp"
#include "gen/rmat.hpp"
#include "la/la.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

#include "bench_metrics.hpp"

using namespace graphulo;

namespace {

std::string fmt(double v, int precision = 1) {
  return util::TablePrinter::fmt(v, precision);
}

}  // namespace

int main(int argc, char** argv) {
  graphulo::bench::MetricsDump metrics_dump(argc, argv);
  gen::RmatParams params;
  params.scale = 11;  // 2048 vertices
  params.edge_factor = 8;
  const auto a = gen::rmat_simple_adjacency(params);
  std::printf(
      "Reference graph: R-MAT scale %d (%d vertices, %lld edges, "
      "undirected)\n\n",
      params.scale, a.rows(), static_cast<long long>(a.nnz()));

  util::TablePrinter table(
      {"class", "algorithm", "kernels used", "result digest", "time_ms"});
  util::Timer timer;

  // 1. Exploration & Traversal: BFS.
  timer.reset();
  const auto bfs = algo::bfs_linalg(a, 0);
  int reached = 0;
  for (int l : bfs.level) {
    if (l >= 0) ++reached;
  }
  table.add_row({"Exploration & Traversal", "BFS",
                 "SpMSpV, Apply",
                 std::to_string(reached) + " reached, depth " +
                     std::to_string(bfs.max_level),
                 fmt(timer.millis())});

  // 2. Subgraph Detection & Vertex Nomination: k-truss (Algorithm 1).
  timer.reset();
  algo::KTrussStats kstats;
  const auto truss = algo::ktruss_adjacency(a, 4, &kstats);
  table.add_row({"Subgraph Detection", "k-truss (Alg. 1)",
                 "SpGEMM, SpMV, Apply, SpRef, Reduce",
                 std::to_string(truss.nnz() / 2) + " edges in 4-truss, " +
                     std::to_string(kstats.rounds) + " rounds",
                 fmt(timer.millis())});

  // ... and vertex nomination from 3 cue vertices.
  timer.reset();
  const auto noms = algo::vertex_nomination(a, {0, 1, 2}, 5);
  table.add_row({"Vertex Nomination", "cue-set ranking",
                 "SpMV, Reduce",
                 "top vertex " +
                     (noms.empty() ? std::string("-")
                                   : std::to_string(noms.front().vertex)),
                 fmt(timer.millis())});

  // 3. Centrality: PageRank.
  timer.reset();
  const auto pr = algo::pagerank(a);
  const auto top =
      std::max_element(pr.scores.begin(), pr.scores.end()) - pr.scores.begin();
  table.add_row({"Centrality", "PageRank",
                 "SpMV, Scale, Reduce",
                 "top vertex " + std::to_string(top) + ", " +
                     std::to_string(pr.iterations) + " iters",
                 fmt(timer.millis())});

  // ... and closeness centrality (the Section III-A future-work metric).
  timer.reset();
  const auto close = algo::closeness_centrality(a);
  const auto top_close =
      std::max_element(close.begin(), close.end()) - close.begin();
  table.add_row({"Centrality", "closeness (extension)",
                 "SpMSpV (boolean), Reduce",
                 "top vertex " + std::to_string(top_close),
                 fmt(timer.millis())});

  // 4. Similarity: Jaccard (Algorithm 2).
  timer.reset();
  const auto jac = algo::jaccard_linalg(a);
  table.add_row({"Similarity", "Jaccard (Alg. 2)",
                 "SpGEMM, SpEWiseX, Apply, Reduce",
                 std::to_string(jac.nnz() / 2) + " similar pairs",
                 fmt(timer.millis())});

  // ... and Adamic-Adar (Similarity/Prediction, weighted common
  // neighbors).
  timer.reset();
  const auto aa = algo::adamic_adar(a);
  table.add_row({"Similarity", "Adamic-Adar",
                 "SpGEMM, Scale, Apply",
                 std::to_string(aa.nnz() / 2) + " scored pairs",
                 fmt(timer.millis())});

  // 5. Community Detection: NMF (Algorithm 5) on the adjacency matrix.
  timer.reset();
  algo::NmfOptions nmf_opts;
  nmf_opts.rank = 4;
  nmf_opts.max_iterations = 15;
  const auto nmf = algo::nmf_als_newton(a, nmf_opts);
  table.add_row({"Community Detection", "NMF (Alg. 5 + Alg. 4)",
                 "SpGEMM, SpRef/SpAsgn, Scale, SpEWiseX, Reduce",
                 "residual " + fmt(nmf.residual_history.back(), 1) + " after " +
                     std::to_string(nmf.iterations) + " iters",
                 fmt(timer.millis())});

  // ... spectral bisection (the eigen-analysis route to communities)...
  timer.reset();
  const auto spec = algo::spectral_bisection(a);
  int side1 = 0;
  for (int s : spec.side) side1 += s;
  table.add_row({"Community Detection", "spectral bisection (Fiedler)",
                 "SpMV, Reduce, Scale",
                 "cut " + std::to_string(side1) + "/" +
                     std::to_string(a.rows() - side1) + ", lambda2 " +
                     fmt(spec.lambda2, 3),
                 fmt(timer.millis())});

  // ... and truncated SVD (Table I lists PCA/SVD under this class).
  timer.reset();
  const auto svd = algo::svd_truncated(a, {.rank = 4});
  table.add_row({"Community Detection", "truncated SVD (power iteration)",
                 "SpMV, Reduce, Scale",
                 "sigma_1 " + fmt(svd.empty() ? 0.0 : svd[0].sigma, 1),
                 fmt(timer.millis())});

  // 6. Prediction: Jaccard link prediction.
  timer.reset();
  const auto links = algo::predict_links(a, 10);
  table.add_row({"Prediction", "Jaccard link prediction",
                 "SpGEMM, SpEWiseX, Apply",
                 std::to_string(links.size()) + " candidate links",
                 fmt(timer.millis())});

  // 7. Shortest Path: Bellman-Ford over (min, +).
  timer.reset();
  const auto dist = algo::bellman_ford(a, 0);
  double reachable = 0, total = 0;
  for (double d : dist) {
    if (d < std::numeric_limits<double>::infinity()) {
      ++reachable;
      total += d;
    }
  }
  table.add_row({"Shortest Path", "Bellman-Ford (min.+ semiring)",
                 "SpMV (tropical), SpEWiseX",
                 "mean distance " + fmt(total / reachable, 2),
                 fmt(timer.millis())});

  table.print("Table I: graph algorithm classes as GraphBLAS kernels");
  return 0;
}
