// Fig. 2 / Algorithm 2 reproduction: (a) replays the worked Jaccard
// example with the exact intermediate matrices (U, U^2, UU', U'U, J and
// the final coefficients 1/5, 1/2, 1/4, 1/3, 2/3); (b) sweeps the
// triangular-exploit algorithm against the naive full-A^2 form and a
// hash-intersection baseline. Expected shape: identical outputs; the
// triangular form does roughly half the SpGEMM work of the naive form
// (it never touches sub-diagonal products).

#include <cstdio>

#include "algo/jaccard.hpp"
#include "gen/erdos.hpp"
#include "gen/rmat.hpp"
#include "la/la.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

#include "bench_metrics.hpp"

using namespace graphulo;

namespace {

la::SpMat<double> paper_adjacency() {
  const std::vector<double> dense = {
      0, 1, 1, 1, 0,  //
      1, 0, 1, 0, 1,  //
      1, 1, 0, 1, 0,  //
      1, 0, 1, 0, 0,  //
      0, 1, 0, 0, 0};
  return la::SpMat<double>::from_dense(5, 5, dense);
}

void worked_example() {
  std::printf("--- Worked example (paper Fig. 2) ---\n");
  const auto a = paper_adjacency();
  const auto u = la::triu(a);
  std::printf("U = triu(A):\n%s\n", la::to_pretty_string(u).c_str());
  const auto u2 = la::spgemm<la::PlusTimes<double>>(u, u);
  std::printf("U^2:\n%s\n", la::to_pretty_string(u2).c_str());
  const auto uut = la::spgemm<la::PlusTimes<double>>(u, la::transpose(u));
  std::printf("U U':\n%s\n", la::to_pretty_string(uut).c_str());
  const auto utu = la::spgemm<la::PlusTimes<double>>(la::transpose(u), u);
  std::printf("U' U:\n%s\n", la::to_pretty_string(utu).c_str());
  const auto counts = la::remove_diag(
      la::add(u2, la::add(la::triu(uut), la::triu(utu))));
  std::printf("J (common-neighbor counts) = U^2 + triu(UU') + triu(U'U):\n%s\n",
              la::to_pretty_string(counts).c_str());
  std::printf("Final coefficients J_ij / (d_i + d_j - J_ij):\n%s\n",
              la::to_pretty_string(algo::jaccard_linalg(a)).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  graphulo::bench::MetricsDump metrics_dump(argc, argv);
  worked_example();

  std::printf("--- Jaccard sweep: Algorithm 2 vs naive A^2 vs brute force ---\n");
  util::TablePrinter table({"graph", "n", "edges", "pairs", "alg2_ms",
                            "naive_ms", "fused_ms", "brute_ms",
                            "fused_speedup", "agree"});
  struct Workload {
    const char* name;
    la::SpMat<double> a;
  };
  std::vector<Workload> workloads;
  for (int scale : {8, 9, 10, 11}) {
    gen::RmatParams p;
    p.scale = scale;
    p.edge_factor = 8;
    workloads.push_back({"rmat", gen::rmat_simple_adjacency(p)});
  }
  for (double density : {0.005, 0.02}) {
    workloads.push_back({"er", gen::erdos_renyi_gnp(1024, density, 5, true)});
  }

  for (const auto& w : workloads) {
    util::Timer t;
    const auto fast = algo::jaccard_linalg(w.a);
    const double fast_ms = t.millis();
    t.reset();
    const auto naive = algo::jaccard_naive(w.a);
    const double naive_ms = t.millis();
    t.reset();
    const auto fused = algo::jaccard_fused(w.a);
    const double fused_ms = t.millis();
    t.reset();
    const auto brute = algo::jaccard_baseline(w.a);
    const double brute_ms = t.millis();
    const bool agree =
        fast.nnz() == naive.nnz() && fast.nnz() == brute.nnz() &&
        fast.nnz() == fused.nnz() && la::fro_diff(fast, naive) < 1e-9 &&
        la::fro_diff(fast, brute) < 1e-9 && la::fro_diff(fast, fused) < 1e-9;
    table.add_row({w.name, std::to_string(w.a.rows()),
                   std::to_string(w.a.nnz() / 2),
                   std::to_string(fast.nnz() / 2),
                   util::TablePrinter::fmt(fast_ms, 1),
                   util::TablePrinter::fmt(naive_ms, 1),
                   util::TablePrinter::fmt(fused_ms, 1),
                   util::TablePrinter::fmt(brute_ms, 1),
                   util::TablePrinter::fmt(fast_ms / fused_ms, 2),
                   agree ? "yes" : "NO"});
  }
  table.print("Fig. 2 / Algorithm 2: Jaccard coefficients");
  return 0;
}
