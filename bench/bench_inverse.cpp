// Algorithm 4 study: Newton-Schulz matrix inversion. Section IV warns
// that inverse-based least squares "can result in dense matrix
// operations"; this bench measures (a) iterations/time vs matrix size,
// (b) iterations vs condition number (the scaling start makes the first
// steps linear, then quadratic convergence kicks in), and (c) accuracy
// and cost vs a Gauss-Jordan baseline.

#include <cmath>
#include <cstdio>

#include "algo/inverse.hpp"
#include "la/la.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

#include "bench_metrics.hpp"

using namespace graphulo;

namespace {

/// Random diagonally dominant matrix (safely invertible, condition
/// controlled by `dominance`: larger = better conditioned).
la::Dense<double> random_dd(la::Index n, double dominance, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  la::Dense<double> a(n, n);
  for (la::Index i = 0; i < n; ++i) {
    double off = 0;
    for (la::Index j = 0; j < n; ++j) {
      if (i != j) {
        a(i, j) = rng.uniform(-1.0, 1.0);
        off += std::abs(a(i, j));
      }
    }
    a(i, i) = dominance * off + 1.0;
  }
  return a;
}

double inverse_error(const la::Dense<double>& a, const la::Dense<double>& x) {
  return la::fro_diff(la::matmul(a, x), la::Dense<double>::eye(a.rows()));
}

}  // namespace

int main(int argc, char** argv) {
  graphulo::bench::MetricsDump metrics_dump(argc, argv);
  // (a) size sweep at fixed conditioning.
  {
    util::TablePrinter table({"n", "newton_iters", "newton_ms", "gj_ms",
                              "newton_err", "gj_err"});
    for (la::Index n : {4, 8, 16, 32, 64, 128}) {
      const auto a = random_dd(n, 1.5, 42 + static_cast<std::uint64_t>(n));
      util::Timer t;
      const auto newton = algo::newton_inverse(a, 1e-12, 500);
      const double newton_ms = t.millis();
      t.reset();
      const auto gj = algo::gauss_jordan_inverse(a);
      const double gj_ms = t.millis();
      table.add_row({std::to_string(n), std::to_string(newton.iterations),
                     util::TablePrinter::fmt(newton_ms, 2),
                     util::TablePrinter::fmt(gj_ms, 2),
                     util::TablePrinter::fmt(inverse_error(a, newton.inverse), 12),
                     util::TablePrinter::fmt(inverse_error(a, gj), 12)});
    }
    table.print("Algorithm 4: Newton-Schulz vs Gauss-Jordan, size sweep");
  }

  // (b) conditioning sweep at fixed size: iterations grow with kappa.
  {
    util::TablePrinter table({"condition_knob(eps)", "approx_kappa",
                              "newton_iters", "converged"});
    for (double eps : {0.5, 0.1, 0.01, 0.001}) {
      auto a = la::Dense<double>::eye(16);
      a(15, 15) = eps;  // kappa ~ 1/eps
      const auto result = algo::newton_inverse(a, 1e-12, 2000);
      table.add_row({util::TablePrinter::fmt(eps, 3),
                     util::TablePrinter::fmt(1.0 / eps, 0),
                     std::to_string(result.iterations),
                     result.converged ? "yes" : "NO"});
    }
    table.print("Algorithm 4: iterations vs condition number");
  }

  // (c) the NMF use case: k x k Gram matrices are tiny, so the inverse
  // is cheap regardless — the Section IV density concern applies to
  // inverting large sparse systems, not the Gram solves.
  {
    util::TablePrinter table({"gram_k", "newton_iters", "newton_us"});
    for (la::Index k : {2, 5, 10, 25, 50}) {
      const auto a = random_dd(k, 2.0, 7 + static_cast<std::uint64_t>(k));
      util::Timer t;
      const auto result = algo::newton_inverse(a, 1e-12, 500);
      table.add_row({std::to_string(k), std::to_string(result.iterations),
                     util::TablePrinter::fmt(t.micros(), 1)});
    }
    table.print("Algorithm 4 in the Algorithm 5 loop: Gram-matrix solves");
  }
  return 0;
}
