// Fig. 1 / Algorithm 1 reproduction: (a) replays the paper's worked
// 5-vertex k-truss example, printing the exact intermediate matrices
// (E, A, R, s, x) the paper prints; (b) sweeps k-truss over random
// graphs comparing the linear-algebraic algorithm (with and without the
// paper's incremental R update) against the Wang-Cheng edge-peeling
// baseline. Expected shape: all three agree exactly; the incremental
// update beats recomputation whenever few edges are removed per round.

#include <cstdio>

#include "algo/ktruss.hpp"
#include "gen/erdos.hpp"
#include "gen/rmat.hpp"
#include "la/la.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

#include "bench_metrics.hpp"

using namespace graphulo;

namespace {

la::SpMat<double> paper_incidence() {
  const std::vector<double> dense = {
      1, 1, 0, 0, 0,  //
      0, 1, 1, 0, 0,  //
      1, 0, 0, 1, 0,  //
      0, 0, 1, 1, 0,  //
      1, 0, 1, 0, 0,  //
      0, 1, 0, 0, 1};
  return la::SpMat<double>::from_dense(6, 5, dense);
}

void worked_example() {
  std::printf("--- Worked example (paper Section III-B, Fig. 1 graph) ---\n");
  const auto e = paper_incidence();
  std::printf("Incidence matrix E (6 edges x 5 vertices):\n%s\n",
              la::to_pretty_string(e).c_str());
  const auto d = la::col_sums(e);
  std::printf("d = sum(E) = %s\n\n", la::to_pretty_string(d, 0).c_str());
  const auto a =
      la::subtract(la::spgemm<la::PlusTimes<double>>(la::transpose(e), e),
                   la::diag_matrix(d));
  std::printf("A = E'E - diag(d):\n%s\n", la::to_pretty_string(a).c_str());
  const auto r = la::spgemm<la::PlusTimes<double>>(e, a);
  std::printf("R = E A:\n%s\n", la::to_pretty_string(r).c_str());
  const auto s = la::row_sums(la::equals_indicator(r, 2.0));
  std::printf("s = (R == 2) 1 = %s\n", la::to_pretty_string(s, 0).c_str());
  std::printf("k = 3: x = find(s < 1) = {edge 6}  ->  remove edge v2-v5\n\n");
  algo::KTrussStats stats;
  const auto e3 = algo::ktruss_incidence(e, 3, &stats);
  std::printf("3-truss incidence matrix (after %d round(s)):\n%s\n",
              stats.rounds, la::to_pretty_string(e3).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  graphulo::bench::MetricsDump metrics_dump(argc, argv);
  worked_example();

  std::printf("--- k-truss sweep: LA (incremental) vs LA (recompute) vs "
              "edge-peeling ---\n");
  util::TablePrinter table({"graph", "n", "edges", "k", "truss_edges",
                            "rounds", "la_incr_ms", "la_recomp_ms",
                            "fused_ms", "peel_ms", "agree"});
  struct Workload {
    const char* name;
    la::SpMat<double> a;
  };
  std::vector<Workload> workloads;
  for (int scale : {8, 9, 10}) {
    gen::RmatParams p;
    p.scale = scale;
    p.edge_factor = 8;
    workloads.push_back({"rmat", gen::rmat_simple_adjacency(p)});
  }
  workloads.push_back({"er", gen::erdos_renyi_gnp(1024, 0.01, 3, true)});

  for (const auto& w : workloads) {
    for (int k : {3, 4, 5}) {
      util::Timer t;
      algo::KTrussStats stats;
      const auto e = algo::incidence_from_adjacency(w.a);
      t.reset();
      const auto incr = algo::ktruss_incidence(e, k, &stats, true);
      const double incr_ms = t.millis();
      t.reset();
      const auto recomp = algo::ktruss_incidence(e, k, nullptr, false);
      const double recomp_ms = t.millis();
      t.reset();
      const auto fused = algo::ktruss_adjacency_fused(w.a, k);
      const double fused_ms = t.millis();
      t.reset();
      const auto peel = algo::ktruss_peeling_baseline(w.a, k);
      const double peel_ms = t.millis();
      const bool agree =
          incr == recomp &&
          algo::adjacency_from_incidence(incr, w.a.cols()) == peel &&
          fused == peel;
      table.add_row({w.name, std::to_string(w.a.rows()),
                     std::to_string(w.a.nnz() / 2), std::to_string(k),
                     std::to_string(incr.rows()), std::to_string(stats.rounds),
                     util::TablePrinter::fmt(incr_ms, 1),
                     util::TablePrinter::fmt(recomp_ms, 1),
                     util::TablePrinter::fmt(fused_ms, 1),
                     util::TablePrinter::fmt(peel_ms, 1),
                     agree ? "yes" : "NO"});
    }
  }
  table.print("Fig. 1 / Algorithm 1: k-truss");
  return 0;
}
