// Quickstart: build a small graph, run GraphBLAS-style kernels and a few
// of the paper's algorithms on it.
//
//   $ ./quickstart
//
// Walks through: adjacency construction, degree/PageRank centrality,
// BFS, triangle counting, k-truss and Jaccard similarity — the same
// pipeline Section III of the paper describes, on the Fig. 1 example
// graph plus a larger random graph.

#include <cstdio>
#include <iostream>

#include "algo/algo.hpp"
#include "gen/rmat.hpp"
#include "la/la.hpp"

using namespace graphulo;

int main() {
  // --- The paper's Fig. 1 graph: 5 vertices, 6 edges. ---------------------
  // Edges: v1-v2, v2-v3, v1-v4, v3-v4, v1-v3, v2-v5 (0-indexed below).
  std::vector<la::Triple<double>> edges;
  const std::pair<int, int> undirected[] = {{0, 1}, {1, 2}, {0, 3},
                                            {2, 3}, {0, 2}, {1, 4}};
  for (auto [u, v] : undirected) {
    edges.push_back({u, v, 1.0});
    edges.push_back({v, u, 1.0});
  }
  const auto a = la::SpMat<double>::from_triples(5, 5, edges);

  std::cout << "Adjacency matrix of the paper's Fig. 1 graph:\n"
            << la::to_pretty_string(a) << "\n";

  // Degree centrality = one Reduce kernel.
  std::cout << "Degrees: " << la::to_pretty_string(algo::out_degree_centrality(a))
            << "\n\n";

  // BFS from v1 (vertex 0) — iterated SpMSpV.
  const auto bfs = algo::bfs_linalg(a, 0);
  std::cout << "BFS levels from v1: ";
  for (int l : bfs.level) std::cout << l << ' ';
  std::cout << "\n\n";

  // Triangles, k-truss, Jaccard: the Section III-B/III-C algorithms.
  std::cout << "Triangles: " << algo::triangle_count_masked(a) << "\n";
  const auto truss = algo::ktruss_adjacency(a, 3);
  std::cout << "3-truss keeps " << truss.nnz() / 2 << " of "
            << a.nnz() / 2 << " edges (drops the dangling v2-v5 edge):\n"
            << la::to_pretty_string(truss) << "\n";
  std::cout << "Jaccard coefficients (Fig. 2 of the paper):\n"
            << la::to_pretty_string(algo::jaccard_linalg(a)) << "\n";

  // --- Scale up: power-law R-MAT graph, PageRank. --------------------------
  gen::RmatParams params;
  params.scale = 10;  // 1024 vertices
  params.edge_factor = 8;
  const auto big = gen::rmat_simple_adjacency(params);
  const auto pr = algo::pagerank(big);
  double best = 0;
  la::Index best_v = 0;
  for (std::size_t v = 0; v < pr.scores.size(); ++v) {
    if (pr.scores[v] > best) {
      best = pr.scores[v];
      best_v = static_cast<la::Index>(v);
    }
  }
  std::printf(
      "R-MAT graph: %d vertices, %lld edges. PageRank converged in %d "
      "iterations;\n  top vertex %d with score %.5f (%.1fx the mean).\n",
      big.rows(), static_cast<long long>(big.nnz()), pr.iterations, best_v,
      best, best * static_cast<double>(big.rows()));
  return 0;
}
