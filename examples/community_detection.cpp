// Community detection three ways — the paper's Section III-D class on
// one workload: a planted-partition graph analyzed with (1) spectral
// bisection (Fiedler vector), (2) NMF on the adjacency matrix
// (Algorithm 5), and (3) connected components as the degenerate
// baseline, all scored with Newman modularity and ground-truth accuracy.
// Also shows Matrix Market export so results can move to other tools.
//
//   $ ./community_detection [n=400]

#include <algorithm>
#include <cstdio>

#include "algo/algo.hpp"
#include "gen/planted.hpp"
#include "la/la.hpp"
#include "util/table_printer.hpp"
#include "util/timer.hpp"

using namespace graphulo;

namespace {

double label_accuracy(const std::vector<int>& predicted,
                      const std::vector<int>& truth) {
  // Two-community case: score up to label swap.
  std::size_t agree = 0;
  for (std::size_t v = 0; v < truth.size(); ++v) {
    if (predicted[v] == truth[v]) ++agree;
  }
  return std::max(agree, truth.size() - agree) /
         static_cast<double>(truth.size());
}

}  // namespace

int main(int argc, char** argv) {
  const la::Index n = argc > 1 ? std::atoi(argv[1]) : 400;
  const auto g = gen::planted_partition(n, 2, 0.12, 0.01, 7);
  const auto truth = gen::partition_labels(n, 2);
  std::printf("Planted 2-partition: %d vertices, %lld edges (p_in=0.12, "
              "p_out=0.01)\n",
              n, static_cast<long long>(g.adjacency.nnz() / 2));

  util::TablePrinter table({"method", "modularity", "accuracy", "time_ms"});
  util::Timer t;

  // 1. Spectral bisection.
  t.reset();
  const auto spectral = algo::spectral_bisection(g.adjacency);
  table.add_row({"spectral (Fiedler sign)",
                 util::TablePrinter::fmt(
                     algo::modularity(g.adjacency, spectral.side), 3),
                 util::TablePrinter::fmt(label_accuracy(spectral.side, truth), 3),
                 util::TablePrinter::fmt(t.millis(), 1)});

  // 2. NMF with k = 2 on the adjacency matrix (Algorithm 5): cluster =
  // argmax factor column.
  t.reset();
  algo::NmfOptions opts;
  opts.rank = 2;
  opts.max_iterations = 50;
  const auto nmf = algo::nmf_als_newton(g.adjacency, opts);
  const auto nmf_labels = algo::assign_topics(nmf.w);
  table.add_row({"NMF (Alg. 5, k=2)",
                 util::TablePrinter::fmt(
                     algo::modularity(g.adjacency, nmf_labels), 3),
                 util::TablePrinter::fmt(label_accuracy(nmf_labels, truth), 3),
                 util::TablePrinter::fmt(t.millis(), 1)});

  // 3. Connected components (degenerate baseline: one big component).
  t.reset();
  const auto cc = algo::connected_components_linalg(g.adjacency);
  std::vector<int> cc_labels(cc.begin(), cc.end());
  table.add_row({"components (baseline)",
                 util::TablePrinter::fmt(
                     algo::modularity(g.adjacency, cc_labels), 3),
                 util::TablePrinter::fmt(label_accuracy(cc_labels, truth), 3),
                 util::TablePrinter::fmt(t.millis(), 1)});

  table.print("Community detection on the planted partition");

  // Export for external tooling.
  const std::string path = "/tmp/graphulo_communities.mtx";
  if (la::write_matrix_market(g.adjacency, path)) {
    std::printf("Adjacency exported to %s (MatrixMarket)\n", path.c_str());
  }
  std::printf("Algebraic connectivity lambda2 = %.4f (low = clean cut)\n",
              spectral.lambda2);
  return 0;
}
