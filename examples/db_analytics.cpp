// Server-side analytics on the NoSQL store: demonstrates the iterator
// machinery the Graphulo design rests on — D4M-schema ingest, attached
// combiners, one-shot compaction transforms, server-side TableMult, and
// scan-time filters — without pulling the data to the client.
//
//   $ ./db_analytics

#include <cstdio>
#include <set>
#include <iostream>

#include "assoc/schemas.hpp"
#include "assoc/table_io.hpp"
#include "core/table_ops.hpp"
#include "core/tablemult.hpp"
#include "nosql/nosql.hpp"

using namespace graphulo;

int main() {
  nosql::Instance db(2);

  // --- D4M-schema ingest of semi-structured records. ------------------------
  const std::vector<std::pair<std::string, assoc::Record>> records = {
      {"log|0001", {{"user", "alice"}, {"action", "login"}, {"host", "web01"}}},
      {"log|0002", {{"user", "bob"}, {"action", "login"}, {"host", "web02"}}},
      {"log|0003", {{"user", "alice"}, {"action", "query"}, {"host", "web01"}}},
      {"log|0004", {{"user", "carol"}, {"action", "login"}, {"host", "web01"}}},
      {"log|0005", {{"user", "alice"}, {"action", "logout"}, {"host", "web01"}}},
  };
  const auto d4m = assoc::d4m_explode(records);
  assoc::write_assoc(db, "Tedge", d4m.tedge);
  assoc::write_assoc(db, "TedgeT", d4m.tedge_t);
  assoc::write_assoc(db, "Tdeg", d4m.tdeg);
  std::printf("Ingested %zu records into the D4M schema (%lld exploded cells)\n",
              records.size(), static_cast<long long>(d4m.tedge.nnz()));

  // --- Record correlation = TableMult(TedgeT used as A): -------------------
  // C = Tedge^T-stored-as-rows ... TableMult computes C += A^T B over the
  // shared row dimension, so multiplying Tedge by itself correlates the
  // exploded columns; multiplying TedgeT by TedgeT correlates records.
  core::table_mult(db, "TedgeT", "TedgeT", "record_correlation",
                   {.compact_result = true});
  std::printf("Record-record correlation (shared field|value pairs):\n");
  nosql::Scanner corr(db, "record_correlation");
  corr.for_each([](const nosql::Key& k, const nosql::Value& v) {
    if (k.row < k.qualifier) {
      std::printf("  %s ~ %s : %s shared\n", k.row.c_str(),
                  k.qualifier.c_str(), v.c_str());
    }
  });

  // --- Server-side scan with a grep iterator: who touched web01? ----------
  nosql::Scanner scan(db, "Tedge");
  scan.add_scan_iterator([](nosql::IterPtr src) {
    return nosql::make_grep_iterator(std::move(src), "host|web01");
  });
  std::printf("Cells matching host|web01 (server-side grep):\n");
  scan.for_each([](const nosql::Key& k, const nosql::Value&) {
    std::printf("  %s -> %s\n", k.row.c_str(), k.qualifier.c_str());
  });

  // --- In-place server-side transform: square all degree counts. ----------
  core::table_apply(db, "Tdeg", [](double v) { return v * v; });
  std::printf("Degrees after in-place squaring (compaction-scope Apply):\n");
  nosql::Scanner deg(db, "Tdeg");
  deg.for_each([](const nosql::Key& k, const nosql::Value& v) {
    std::printf("  %s = %s\n", k.row.c_str(), v.c_str());
  });

  // --- Reduce: total cell mass, computed per-tablet then folded. -----------
  std::printf("Sum over Tedge values (per-tablet partial reduce): %.0f\n",
              core::table_sum(db, "Tedge"));

  // --- Attached combiner: a live event counter table. -----------------------
  core::create_sum_table(db, "event_counts");
  for (const auto& [id, rec] : records) {
    nosql::Mutation m("count|" + rec.at("action"));
    m.put("", "total", nosql::encode_double(1.0));
    db.apply("event_counts", m);
  }
  std::printf("Event counts (summing combiner folds duplicate puts):\n");
  nosql::Scanner counts(db, "event_counts");
  counts.for_each([](const nosql::Key& k, const nosql::Value& v) {
    std::printf("  %s = %s\n", k.row.c_str(), v.c_str());
  });

  // --- Cell-level security: visibility expressions + authorizations. -------
  db.create_table("audit");
  auto put_secure = [&](const char* row, const char* vis, const char* value) {
    nosql::Mutation m(row);
    m.put("f", "note", vis, 1, value);
    db.apply("audit", m);
  };
  put_secure("event|1", "", "routine login");
  put_secure("event|2", "security", "failed sudo");
  put_secure("event|3", "security&legal", "subpoena access");
  for (const auto& auths :
       std::vector<std::set<std::string>>{{}, {"security"},
                                          {"security", "legal"}}) {
    nosql::Scanner audit_scan(db, "audit");
    audit_scan.set_authorizations(auths);
    std::printf("Audit rows visible with %zu authorization(s): %zu\n",
                auths.size(), audit_scan.read_all().size());
  }

  // --- Durability: journal to a WAL, "crash", recover. ---------------------
  const std::string wal_path = "/tmp/graphulo_example.wal";
  std::remove(wal_path.c_str());
  {
    nosql::Instance journaled(1);
    journaled.attach_wal(std::make_shared<nosql::WriteAheadLog>(wal_path));
    journaled.create_table("ledger");
    for (int i = 0; i < 100; ++i) {
      nosql::Mutation m("txn|" + std::to_string(1000 + i));
      m.put("", "amount", nosql::encode_double(i * 1.5));
      journaled.apply("ledger", m);
    }
    journaled.sync_wal();
  }  // instance destroyed without any graceful shutdown
  nosql::Instance recovered(1);
  const auto replayed = nosql::recover_from_wal(recovered, wal_path);
  nosql::Scanner ledger(recovered, "ledger");
  std::printf("Crash recovery: replayed %zu WAL records, ledger has %zu rows\n",
              replayed, ledger.read_all().size());
  std::remove(wal_path.c_str());
  return 0;
}
