// Topic modeling on a tweet corpus — the Fig. 3 scenario of the paper:
// explode tweets into a term-document incidence associative array
// (D4M schema), factor it with NMF (Algorithm 5, Newton-Schulz inverse
// per Algorithm 4), and print the top words per topic plus a purity
// score against the generator's ground-truth labels.
//
//   $ ./topic_modeling [num_tweets=5000]

#include <cstdio>
#include <iostream>
#include <string>

#include "algo/nmf.hpp"
#include "assoc/schemas.hpp"
#include "gen/tweets.hpp"
#include "util/timer.hpp"

using namespace graphulo;

int main(int argc, char** argv) {
  gen::TweetParams params;
  params.num_tweets = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1]))
                               : 5000;
  const auto corpus = gen::generate_tweets(params);
  std::printf("Generated %zu tweets over %d latent topics\n",
              corpus.tweets.size(), gen::tweet_topic_count());

  // D4M-style term incidence: rows = tweets, cols = "word|<token>".
  const auto incidence = assoc::tweets_to_incidence(corpus);
  std::printf("Term-document array: %zu x %zu, %lld entries\n",
              incidence.row_count(), incidence.col_count(),
              static_cast<long long>(incidence.nnz()));

  // Algorithm 5: ALS-NMF with Newton-Schulz inverses, k = 5 topics.
  algo::NmfOptions opts;
  opts.rank = 5;
  opts.max_iterations = 60;
  util::Timer timer;
  const auto result = algo::nmf_als_newton(incidence.matrix(), opts);
  std::printf("NMF: %d iterations, residual %.2f -> %.2f (%.2f s)\n",
              result.iterations, result.residual_history.front(),
              result.residual_history.back(), timer.seconds());

  // The Fig. 3 artifact: top words per topic.
  const auto& cols = incidence.col_keys();
  for (int topic = 0; topic < opts.rank; ++topic) {
    std::printf("Topic %d:", topic + 1);
    for (la::Index term : algo::top_terms(result.h, topic, 8)) {
      // Strip the "word|" schema prefix for display.
      const auto& key = cols[static_cast<std::size_t>(term)];
      std::printf(" %s", key.substr(key.find('|') + 1).c_str());
    }
    std::printf("\n");
  }

  // Quantitative check the paper could not do: purity vs ground truth.
  std::vector<int> truth;
  truth.reserve(corpus.tweets.size());
  for (const auto& t : corpus.tweets) truth.push_back(t.true_topic);
  const double purity =
      algo::topic_purity(algo::assign_topics(result.w), truth);
  std::printf("Topic purity vs ground truth: %.3f (chance = %.3f)\n", purity,
              1.0 / gen::tweet_topic_count());
  return 0;
}
