// Social network analysis end-to-end: generate a power-law "follower"
// graph, ingest it into the NoSQL store under the adjacency schema,
// then run the paper's analytics both in-database (BFS, k-truss,
// Jaccard via server-side TableMult) and in-memory (community cores,
// link prediction).
//
//   $ ./social_network [scale=9]

#include <cstdio>
#include <iostream>
#include <string>

#include "algo/algo.hpp"
#include "assoc/table_io.hpp"
#include "core/table_algos.hpp"
#include "core/table_ops.hpp"
#include "gen/rmat.hpp"
#include "nosql/nosql.hpp"
#include "util/timer.hpp"

using namespace graphulo;

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 9;
  gen::RmatParams params;
  params.scale = scale;
  params.edge_factor = 8;
  const auto graph = gen::rmat_simple_adjacency(params);
  std::printf("Follower graph: %d users, %lld follow edges\n", graph.rows(),
              static_cast<long long>(graph.nnz()));

  // --- Ingest into the database (2 tablet servers, pre-split). -------------
  nosql::Instance db(2);
  util::Timer timer;
  assoc::write_matrix(db, "followers", graph);
  db.add_splits("followers",
                {assoc::vertex_key(graph.rows() / 2)});
  std::printf("Ingested in %.2f ms across %d tablet servers\n",
              timer.millis(), db.tablet_server_count());

  // --- Who is reachable from the most-followed user? (in-database BFS) ----
  const auto degrees = algo::in_degree_centrality(graph);
  la::Index celebrity = 0;
  for (std::size_t v = 0; v < degrees.size(); ++v) {
    if (degrees[v] > degrees[static_cast<std::size_t>(celebrity)]) {
      celebrity = static_cast<la::Index>(v);
    }
  }
  const auto reach =
      core::adj_bfs(db, "followers", {assoc::vertex_key(celebrity)}, 2);
  std::printf("User %d has %.0f followers; %zu users within 2 hops\n",
              celebrity, degrees[static_cast<std::size_t>(celebrity)],
              reach.size());

  // --- Community cores via k-truss, computed inside the database. ----------
  timer.reset();
  const auto core_edges = core::table_ktruss(db, "followers", 4, "cores");
  std::printf("4-truss community core: %zu directed edges (%.2f ms, in-db)\n",
              core_edges, timer.millis());

  // --- Friend suggestions: Jaccard link prediction (in-memory). ------------
  const auto suggestions = algo::predict_links(graph, 5);
  std::cout << "Top friend suggestions (non-adjacent pairs by Jaccard):\n";
  for (const auto& link : suggestions) {
    std::printf("  user %d <-> user %d  (similarity %.3f)\n", link.u, link.v,
                link.score);
  }

  // --- Influence ranking: PageRank vs simple degree. ------------------------
  const auto pr = algo::pagerank(graph);
  la::Index top_pr = 0;
  for (std::size_t v = 0; v < pr.scores.size(); ++v) {
    if (pr.scores[v] > pr.scores[static_cast<std::size_t>(top_pr)]) {
      top_pr = static_cast<la::Index>(v);
    }
  }
  std::printf("PageRank top user: %d (degree-top was %d)\n", top_pr, celebrity);
  return 0;
}
